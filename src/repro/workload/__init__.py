"""Client workload: synthetic trace + open-loop Poisson request streams."""

from .client import CONNECT_TIMEOUT, REQUEST_TIMEOUT, ClientMachine, Workload
from .trace import (
    DEFAULT_FILE_BYTES,
    DEFAULT_N_FILES,
    DEFAULT_ZIPF_S,
    FileSet,
)
from .tracefile import (
    TraceEntry,
    TraceReplayer,
    load_trace,
    save_trace,
    synthesize_trace,
)

__all__ = [
    "FileSet",
    "ClientMachine",
    "Workload",
    "CONNECT_TIMEOUT",
    "REQUEST_TIMEOUT",
    "DEFAULT_N_FILES",
    "DEFAULT_FILE_BYTES",
    "DEFAULT_ZIPF_S",
    "TraceEntry",
    "TraceReplayer",
    "load_trace",
    "save_trace",
    "synthesize_trace",
]
