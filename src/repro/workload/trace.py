"""Synthetic web trace: file population and request sampling.

The paper drove PRESS with a Rutgers trace, *modified so all files have
the same size* (the average of the original set) to keep delivered
throughput stable.  That modification means the only trace properties the
experiments depend on are (a) the working-set size relative to the
cluster cache and (b) a skewed popularity distribution.  We synthesize
exactly that: ``n_files`` files of uniform ``file_bytes``, requested with
Zipf(``zipf_s``) popularity under a deterministic seeded stream.
"""

from __future__ import annotations

import random
from typing import List

import numpy as np

#: Defaults sized against the testbed: 128 MB cache/node, 4 nodes hold
#: ~51k files.  The paper chose the trace with the *largest working set*,
#: so ours (60k files, ~600 MB) slightly exceeds the cooperative cache —
#: the steady state has a continuous replacement stream (pin/unpin
#: traffic for VIA-PRESS-5) — and dwarfs a single node's cache, so a
#: splintered singleton pays disk for the tail.
DEFAULT_N_FILES = 60_000
DEFAULT_FILE_BYTES = 10_240
DEFAULT_ZIPF_S = 0.8


class FileSet:
    """The published file population, replicated on every node's disk."""

    def __init__(
        self,
        n_files: int = DEFAULT_N_FILES,
        file_bytes: int = DEFAULT_FILE_BYTES,
        zipf_s: float = DEFAULT_ZIPF_S,
    ):
        if n_files < 1:
            raise ValueError("need at least one file")
        if file_bytes < 1:
            raise ValueError("files must have positive size")
        self.n_files = n_files
        self.file_bytes = file_bytes
        self.zipf_s = zipf_s
        ranks = np.arange(1, n_files + 1, dtype=np.float64)
        weights = ranks ** (-zipf_s)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def size(self, file_id: str) -> int:
        """Every file has the trace's uniform size (see module docstring)."""
        return self.file_bytes

    def file_name(self, index: int) -> str:
        return f"f{index:06d}"

    def sample(self, rng: random.Random) -> str:
        """Draw a file id from the Zipf popularity distribution."""
        u = rng.random()
        index = int(np.searchsorted(self._cdf, u))
        return self.file_name(min(index, self.n_files - 1))

    def sample_many(self, rng: random.Random, count: int) -> List[str]:
        return [self.sample(rng) for _ in range(count)]

    @property
    def total_bytes(self) -> int:
        return self.n_files * self.file_bytes

    def expected_hit_files(self, cache_bytes: int) -> int:
        """How many distinct files fit in ``cache_bytes``."""
        return min(self.n_files, cache_bytes // self.file_bytes)

    def coverage_hit_ratio(self, n_cached_files: int) -> float:
        """Request-weighted hit ratio if the ``n`` most popular files are
        cached — the analytic counterpart of a warmed LRU cache under
        Zipf traffic (used by capacity estimation and tests)."""
        n = min(max(n_cached_files, 0), self.n_files)
        if n == 0:
            return 0.0
        return float(self._cdf[n - 1])
