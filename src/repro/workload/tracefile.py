"""Trace files: persist and replay request streams.

The paper drove PRESS with a recorded Rutgers trace.  This module gives
the reproduction the same workflow: record a synthetic (or hand-built)
request stream to a simple text format, and replay it through the
cluster instead of the Poisson generator.

Format — one request per line, ``#`` comments allowed::

    # time_offset_s  file_id
    0.0132 f004211
    0.0197 f000002

Offsets are from the start of the replay; ``TraceReplayer`` rescales
them to hit a requested average rate, which is how the paper adjusted
offered load while keeping the trace's reference pattern.
"""

from __future__ import annotations

import io
import random
from dataclasses import dataclass
from typing import Iterable, List, TextIO, Tuple, Union

from ..net.fabric import Fabric
from ..net.packet import Frame
from ..sim.engine import Engine
from ..sim.monitor import ThroughputMonitor
from .client import ClientMachine
from .trace import FileSet


@dataclass(frozen=True)
class TraceEntry:
    offset: float
    file_id: str


def synthesize_trace(
    fileset: FileSet,
    n_requests: int,
    rate: float,
    rng: random.Random,
) -> List[TraceEntry]:
    """Generate a Poisson/Zipf trace with ``n_requests`` entries."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    entries = []
    t = 0.0
    for _ in range(n_requests):
        t += rng.expovariate(rate)
        entries.append(TraceEntry(offset=t, file_id=fileset.sample(rng)))
    return entries


def save_trace(entries: Iterable[TraceEntry], fp: TextIO) -> int:
    """Write entries to ``fp``; returns the number written."""
    count = 0
    fp.write("# time_offset_s file_id\n")
    for entry in entries:
        fp.write(f"{entry.offset:.6f} {entry.file_id}\n")
        count += 1
    return count


def load_trace(fp: Union[TextIO, str]) -> List[TraceEntry]:
    """Parse a trace file (path or file object)."""
    if isinstance(fp, str):
        with open(fp) as handle:
            return load_trace(handle)
    entries: List[TraceEntry] = []
    last = -1.0
    for lineno, raw in enumerate(fp, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"trace line {lineno}: expected 'offset file_id'")
        offset = float(parts[0])
        if offset < last:
            raise ValueError(f"trace line {lineno}: offsets must be sorted")
        last = offset
        entries.append(TraceEntry(offset=offset, file_id=parts[1]))
    return entries


class TraceReplayer:
    """Replays a recorded trace through a client machine.

    The trace's inter-arrival pattern is preserved; ``rate`` rescales
    the offsets so the replay delivers the requested average requests/s
    (None keeps the recorded pacing).  Requests round-robin over the
    server nodes like the Poisson clients.
    """

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        client_id: str,
        server_ids: List[str],
        entries: List[TraceEntry],
        monitor: ThroughputMonitor,
        rate: float = None,
        request_timeout: float = 6.0,
        loop: bool = False,
    ):
        if not entries:
            raise ValueError("cannot replay an empty trace")
        from ..press.http import HttpRequest

        self._HttpRequest = HttpRequest
        self.engine = engine
        self.client_id = client_id
        self.server_ids = list(server_ids)
        self.entries = entries
        self.monitor = monitor
        self.request_timeout = request_timeout
        self.loop = loop
        recorded_rate = len(entries) / max(entries[-1].offset, 1e-9)
        self.time_scale = 1.0 if rate is None else recorded_rate / rate
        self.nic = fabric.attach(client_id, reports_errors=False)
        self.nic.register("http-resp", self._on_response)
        self.nic.register("http-reject", self._on_reject)
        self._pending = {}
        self._rr = 0
        self._running = False
        self.replayed = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._running = True
        self._schedule(0, self.engine.now)

    def stop(self) -> None:
        self._running = False

    def _schedule(self, index: int, epoch: float) -> None:
        if not self._running:
            return
        if index >= len(self.entries):
            if not self.loop:
                return
            epoch = epoch + self.entries[-1].offset * self.time_scale
            index = 0
        entry = self.entries[index]
        at = epoch + entry.offset * self.time_scale
        self.engine.call_at(
            max(at, self.engine.now), self._fire, index, epoch
        )

    def _fire(self, index: int, epoch: float) -> None:
        if not self._running:
            return
        entry = self.entries[index]
        target = self.server_ids[self._rr % len(self.server_ids)]
        self._rr += 1
        req = self._HttpRequest.fresh(self.client_id, entry.file_id, self.engine.now)
        timer = self.engine.call_after(
            self.request_timeout, self._on_timeout, req.req_id
        )
        self._pending[req.req_id] = timer
        self.nic.send(
            Frame(src=self.client_id, dst=target, size=300, kind="http-req",
                  payload=req)
        )
        self.replayed += 1
        self._schedule(index + 1, epoch)

    # ------------------------------------------------------------------
    def _on_response(self, frame: Frame) -> None:
        timer = self._pending.pop(frame.payload, None)
        if timer is not None:
            timer.cancel()
            self.monitor.success()

    def _on_reject(self, frame: Frame) -> None:
        timer = self._pending.pop(frame.payload, None)
        if timer is not None:
            timer.cancel()
            self.monitor.failure()

    def _on_timeout(self, req_id: int) -> None:
        if self._pending.pop(req_id, None) is not None:
            self.monitor.failure()
