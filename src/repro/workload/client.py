"""Open-loop Poisson clients with the paper's timeout discipline.

Each client machine issues requests as a Poisson process, spreads them
round-robin over the server nodes (round-robin DNS), and gives up on a
request after ``request_timeout`` seconds (the paper: 2 s to connect,
6 s to complete; we account a single end-to-end deadline and a fast
failure when the server refuses the connection outright).

Successes and failures land in the shared :class:`ThroughputMonitor` —
the raw material of every timeline figure and of availability.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..net.fabric import Fabric
from ..net.nic import Nic
from ..net.packet import Frame
from ..obs.events import WORKLOAD_REQUEST_DONE
from ..obs.metrics import Histogram
from ..sim.engine import Engine, Timer
from ..sim.monitor import ThroughputMonitor
from .trace import FileSet

CONNECT_TIMEOUT = 2.0
REQUEST_TIMEOUT = 6.0


class ClientMachine:
    """One client host: issues requests, tracks outcomes and latencies."""

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        client_id: str,
        server_ids: List[str],
        fileset: FileSet,
        monitor: ThroughputMonitor,
        rng: random.Random,
        rate: float,
        request_timeout: float = REQUEST_TIMEOUT,
    ):
        from ..press.http import HttpRequest  # local import to avoid cycle

        self._HttpRequest = HttpRequest
        self.engine = engine
        self.client_id = client_id
        self.server_ids = list(server_ids)
        self.fileset = fileset
        self.monitor = monitor
        self.rng = rng
        self.rate = rate
        self.request_timeout = request_timeout
        self.nic: Nic = fabric.attach(client_id, reports_errors=False)
        self.nic.register("http-resp", self._on_response)
        self.nic.register("http-reject", self._on_reject)
        self._pending: Dict[int, "tuple[Timer, float]"] = {}
        self._rr = 0
        self._running = False
        registry = getattr(engine, "metrics", None)
        if registry is not None:
            self.latency = registry.histogram(
                "workload.client.latency", client=client_id
            )
        else:
            self.latency = Histogram("workload.client.latency", client=client_id)
        self.completed = 0

    @property
    def latencies_sum(self) -> float:
        return self.latency.sum

    # ------------------------------------------------------------------
    # Arrival process
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._running = True
        # Anchor the arrival chain on this client's logical process (when
        # the engine is sharded): _fire re-schedules itself, so the whole
        # open-loop process inherits the LP of this first schedule.
        lp = self.nic.link._lp
        if lp is not None:
            prev = self.engine.pin(lp)
            self._schedule_next()
            self.engine.pin(prev)
        else:
            self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def set_rate(self, rate: float) -> None:
        self.rate = rate

    def _schedule_next(self) -> None:
        if not self._running or self.rate <= 0:
            return
        gap = self.rng.expovariate(self.rate)
        self.engine.call_after(gap, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self._issue_one()
        self._schedule_next()

    def _issue_one(self) -> None:
        target = self.server_ids[self._rr % len(self.server_ids)]
        self._rr += 1
        file_id = self.fileset.sample(self.rng)
        req = self._HttpRequest.fresh(self.client_id, file_id, self.engine.now)
        timer = self.engine.call_after(
            self.request_timeout, self._on_timeout, req.req_id
        )
        self._pending[req.req_id] = (timer, self.engine.now)
        spans = self.engine.spans
        if spans is not None:
            spans.start(
                req.req_id,
                "request",
                self.engine.now,
                node=self.client_id,
                key=("req", req.req_id),
                file=req.file_id,
                target=target,
            )
        self.nic.send(
            Frame(
                src=self.client_id,
                dst=target,
                size=300,
                kind="http-req",
                payload=req,
                trace_id=req.req_id,
            )
        )

    # ------------------------------------------------------------------
    # Outcomes
    # ------------------------------------------------------------------
    def _on_response(self, frame: Frame) -> None:
        req_id: int = frame.payload
        entry = self._pending.pop(req_id, None)
        if entry is None:
            return  # already timed out; the late response is wasted work
        timer, issued_at = entry
        timer.cancel()
        self.latency.observe(self.engine.now - issued_at)
        self.monitor.success()
        self.completed += 1
        self._done(req_id, "ok", self.engine.now - issued_at)

    def _on_reject(self, frame: Frame) -> None:
        req_id: int = frame.payload
        entry = self._pending.pop(req_id, None)
        if entry is None:
            return
        entry[0].cancel()
        self.monitor.failure()
        self._done(req_id, "reject", self.engine.now - entry[1])

    def _on_timeout(self, req_id: int) -> None:
        if self._pending.pop(req_id, None) is not None:
            self.monitor.failure()
            self._done(req_id, "timeout", self.request_timeout)

    def _done(self, req_id: int, outcome: str, latency: float) -> None:
        """A request reached its final outcome: close the trace, tell
        the probes (latency sketches, unavailability attribution)."""
        spans = self.engine.spans
        if spans is not None:
            spans.end_key(("req", req_id), self.engine.now, outcome)
        bus = self.engine.bus
        if bus is not None:
            bus.publish(
                WORKLOAD_REQUEST_DONE,
                req_id=req_id,
                client=self.client_id,
                outcome=outcome,
                latency=latency,
            )

    @property
    def outstanding(self) -> int:
        return len(self._pending)


class Workload:
    """A fleet of client machines sharing one offered load."""

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        server_ids: List[str],
        fileset: FileSet,
        monitor: ThroughputMonitor,
        rng: random.Random,
        total_rate: float,
        n_clients: int = 2,
        request_timeout: float = REQUEST_TIMEOUT,
    ):
        self.engine = engine
        self.total_rate = total_rate
        self.clients = [
            ClientMachine(
                engine,
                fabric,
                f"client{i}",
                server_ids,
                fileset,
                monitor,
                random.Random(rng.random()),
                total_rate / n_clients,
                request_timeout=request_timeout,
            )
            for i in range(n_clients)
        ]

    def start(self) -> None:
        for c in self.clients:
            c.start()

    def stop(self) -> None:
        for c in self.clients:
            c.stop()

    def set_total_rate(self, rate: float) -> None:
        self.total_rate = rate
        per = rate / len(self.clients)
        for c in self.clients:
            c.set_rate(per)
