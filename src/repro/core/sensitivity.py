"""Sensitivity analysis: rate sweeps and crossover hunting.

The paper's §6.3 varies the fault rates charged to the VIA versions
(packet drops, extra software bugs, system bugs) and asks at what rates
the performability of VIA and TCP systems equalize — concluding the
crossover sits at roughly **4×** the TCP fault rate.  These helpers
implement the sweep and a bisection solver for the crossover multiplier.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Tuple

from .faultload import FaultLoad
from .metric import performability_of
from .model import ProfileSet, evaluate


def sweep_app_fault_rate(
    profiles_by_version: Mapping[str, ProfileSet],
    mttfs: Iterable[float],
    make_load: Callable[[float], FaultLoad],
) -> Dict[str, List[Tuple[float, float, float]]]:
    """Evaluate every version across a range of application-fault MTTFs.

    Returns ``{version: [(mttf, availability, performability), ...]}`` —
    the data behind Figure 6.
    """
    out: Dict[str, List[Tuple[float, float, float]]] = {}
    for version, profiles in profiles_by_version.items():
        rows = []
        for mttf in mttfs:
            result = evaluate(profiles, make_load(mttf))
            rows.append(
                (mttf, result.availability, performability_of(result))
            )
        out[version] = rows
    return out


def crossover_multiplier(
    tcp_profiles: ProfileSet,
    via_profiles: ProfileSet,
    base_load: FaultLoad,
    via_load_at: Callable[[float], FaultLoad],
    lo: float = 1.0,
    hi: float = 64.0,
    tol: float = 1e-3,
    max_iter: int = 80,
) -> float:
    """Fault-rate multiplier at which VIA and TCP performability equalize.

    ``via_load_at(m)`` builds the VIA fault environment when its fault
    rates are ``m``× the baseline; TCP is evaluated at the baseline.
    Returns the bisected multiplier (the paper's answer: ≈ 4).

    Raises ValueError when no crossover exists in ``[lo, hi]`` — e.g.
    when TCP already wins at parity.
    """
    p_tcp = performability_of(evaluate(tcp_profiles, base_load))

    def gap(multiplier: float) -> float:
        p_via = performability_of(evaluate(via_profiles, via_load_at(multiplier)))
        return p_via - p_tcp

    g_lo = gap(lo)
    if g_lo < 0:
        raise ValueError(
            f"VIA already loses at {lo}x (gap={g_lo:.1f}); no crossover"
        )
    g_hi = gap(hi)
    if g_hi > 0:
        raise ValueError(
            f"VIA still wins at {hi}x (gap={g_hi:.1f}); no crossover in range"
        )
    for _ in range(max_iter):
        mid = (lo + hi) / 2
        if hi - lo < tol * mid:
            return mid
        if gap(mid) > 0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2
