"""Fault loads: MTTF/MTTR per component (Table 3) and their scaling.

The paper's base load (Table 3):

======================================  ========  =========
Fault                                   MTTF      MTTR
======================================  ========  =========
Link down                               6 months  3 minutes
Switch down                             1 year    1 hour
Node crash                              2 weeks   3 minutes
Node freeze                             2 weeks   3 minutes
Memory pinning failure                  61 days   3 minutes
Memory allocation failure               61 days   3 minutes
Process crash / hang / bad parameters   variable  3 minutes
======================================  ========  =========

Application-level faults share one overall rate (studied from once per
day to once per month) split per the field-failure distribution of
[Chillarege et al. 1995]: crash 40%, hang 40%, null pointer 8%,
off-by-N data pointer 9%, off-by-N size 2%.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Mapping, Optional

from ..faults.spec import FaultKind

# -- time helpers (seconds) -------------------------------------------------
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY
MONTH = 30 * DAY
YEAR = 365 * DAY

#: The application-fault split observed in field data [11].
APPLICATION_FAULT_SPLIT: Dict[FaultKind, float] = {
    FaultKind.APP_CRASH: 0.40,
    FaultKind.APP_HANG: 0.40,
    FaultKind.BAD_PARAM_NULL: 0.08,
    FaultKind.BAD_PARAM_OFFSET: 0.09,
    FaultKind.BAD_PARAM_SIZE: 0.02,
}

APPLICATION_FAULTS = tuple(APPLICATION_FAULT_SPLIT)

NON_APPLICATION_FAULTS = (
    FaultKind.LINK_DOWN,
    FaultKind.SWITCH_DOWN,
    FaultKind.NODE_CRASH,
    FaultKind.NODE_FREEZE,
    FaultKind.MEMORY_PINNING,
    FaultKind.KERNEL_MEMORY,
)


@dataclass(frozen=True)
class ComponentFault:
    """One row of the fault load: a fault source with its rates."""

    kind: FaultKind
    mttf: float  # seconds between occurrences
    mttr: float  # seconds to repair the faulty component
    #: Which measured profile to use; defaults to the fault's own kind.
    #: Sensitivity scenarios remap (e.g. "packet drops behave like
    #: process crashes on VIA").
    profile_key: Optional[str] = None
    label: Optional[str] = None

    @property
    def rate(self) -> float:
        return 1.0 / self.mttf

    @property
    def key(self) -> str:
        return self.profile_key if self.profile_key else self.kind.value

    @property
    def name(self) -> str:
        return self.label if self.label else self.kind.value


@dataclass(frozen=True)
class FaultLoad:
    """A complete fault environment: a set of component fault sources."""

    components: tuple

    def __iter__(self):
        return iter(self.components)

    def __len__(self) -> int:
        return len(self.components)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def table3(
        cls,
        app_fault_mttf: float = DAY,
        n_nodes: int = 4,
    ) -> "FaultLoad":
        """The paper's base load (Table 3) for a cluster of ``n_nodes``.

        Per-node fault sources (crashes, freezes, memory, application)
        occur independently on each node, so the *cluster-level* MTTF of
        each such source is the per-node MTTF divided by ``n_nodes``.
        ``app_fault_mttf`` is the per-node rate of all application-level
        faults combined, split per :data:`APPLICATION_FAULT_SPLIT`.
        """
        per_node = [
            ComponentFault(FaultKind.NODE_CRASH, 2 * WEEK, 3 * MINUTE),
            ComponentFault(FaultKind.NODE_FREEZE, 2 * WEEK, 3 * MINUTE),
            ComponentFault(FaultKind.MEMORY_PINNING, 61 * DAY, 3 * MINUTE),
            ComponentFault(FaultKind.KERNEL_MEMORY, 61 * DAY, 3 * MINUTE),
            ComponentFault(FaultKind.LINK_DOWN, 6 * MONTH, 3 * MINUTE),
        ]
        components = [
            replace(c, mttf=c.mttf / n_nodes) for c in per_node
        ]
        components.append(
            ComponentFault(FaultKind.SWITCH_DOWN, YEAR, HOUR)
        )
        for kind, share in APPLICATION_FAULT_SPLIT.items():
            components.append(
                ComponentFault(
                    kind,
                    mttf=app_fault_mttf / share / n_nodes,
                    mttr=3 * MINUTE,
                )
            )
        return cls(components=tuple(components))

    # ------------------------------------------------------------------
    # Transformations (sensitivity scenarios)
    # ------------------------------------------------------------------
    def with_extra(self, *extra: ComponentFault) -> "FaultLoad":
        return FaultLoad(components=self.components + tuple(extra))

    def scaled(self, factor: float, kinds: Optional[Iterable[FaultKind]] = None
               ) -> "FaultLoad":
        """Multiply fault *rates* by ``factor`` (divide MTTFs).

        ``kinds`` restricts the scaling to a subset of fault kinds.
        """
        if factor <= 0:
            raise ValueError("rate factor must be positive")
        selected = set(kinds) if kinds is not None else None
        out = []
        for c in self.components:
            if selected is None or c.kind in selected:
                out.append(replace(c, mttf=c.mttf / factor))
            else:
                out.append(c)
        return FaultLoad(components=tuple(out))

    def total_rate(self) -> float:
        return sum(c.rate for c in self.components)


def packet_drop_component(mttf: float, n_nodes: int = 4) -> ComponentFault:
    """Figure 7's extra VIA fault: a transient packet drop.

    The VIA specification says drops are extremely rare; when one
    happens, the error is reported and the process terminates itself —
    so the *profile* is the application-crash profile, at the drop rate.
    """
    return ComponentFault(
        FaultKind.APP_CRASH,
        mttf=mttf / n_nodes,
        mttr=3 * MINUTE,
        profile_key=FaultKind.APP_CRASH.value,
        label="packet-drop",
    )


def software_bug_component(mttf: float, n_nodes: int = 4) -> ComponentFault:
    """Figure 8's extra VIA fault: additional application bugs from the
    more complex programming model (behaves like an app crash)."""
    return ComponentFault(
        FaultKind.APP_CRASH,
        mttf=mttf / n_nodes,
        mttr=3 * MINUTE,
        profile_key=FaultKind.APP_CRASH.value,
        label="extra-software-bug",
    )


def system_bug_component(mttf: float) -> ComponentFault:
    """Figure 9's extra VIA fault: hardware/firmware bugs in the young
    networking subsystem, modeled as switch crashes."""
    return ComponentFault(
        FaultKind.SWITCH_DOWN,
        mttf=mttf,
        mttr=HOUR,
        profile_key=FaultKind.SWITCH_DOWN.value,
        label="system-bug",
    )
