"""Phase 1 → phase 2 bridge: fit a measured timeline to the 7-stage model.

The simulation annotates the exact instants of injection, detection,
reconfiguration, component recovery, rejoin, and operator reset, so the
stage boundaries come from ground truth rather than curve fitting; the
per-stage *throughputs* are bucket means of the measured timeline.

Durations mix measurement and environment exactly as the methodology
prescribes:

* A (fault→detection), B/D/G (transients), F (reset) — **measured**;
* C (stable degraded until repair) — duration = component **MTTR** minus
  what detection/reconfiguration already consumed (environmental);
* E (stable sub-normal regime awaiting the operator) — duration =
  **operator response time** (environmental), present only when the
  service could not restore itself (PRESS's unmerged partitions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.monitor import Timeline
from .stages import SevenStageProfile, Stage


@dataclass(frozen=True)
class Environment:
    """Evaluator-supplied assumptions (everything phase 1 cannot measure)."""

    #: How long a sub-normal stable regime persists before an operator
    #: notices and intervenes.  A splintered PRESS keeps *serving* (at a
    #: degraded level), so nothing pages anybody — 30 minutes to notice
    #: and reset is the charitable end for 2003-era operations.  Figure
    #: 6's VIA-vs-TCP-HB availability ordering is sensitive to this
    #: assumption (see EXPERIMENTS.md).
    operator_response: float = 1800.0
    #: Width of the warming-transient windows (stages B, D, G).
    transient_window: float = 10.0
    #: Width of the tail window used to judge full recovery.
    steady_window: float = 20.0
    #: T_E within this fraction of Tn counts as fully recovered (E=0).
    recovered_threshold: float = 0.97
    #: Minimum observed degradation for the fault to count at all
    #: (bucket noise at the default load sits around +-4%).
    impact_threshold: float = 0.05
    #: Stage D extends until throughput sustains this fraction of Tn.
    recovery_threshold: float = 0.90


DEFAULT_ENVIRONMENT = Environment()


@dataclass(frozen=True)
class ExperimentRecord:
    """Everything a phase-1 run hands to the extractor."""

    version: str
    fault: str
    timeline: Timeline
    normal_throughput: float
    injected_at: float
    cleared_at: float
    end_time: float
    reset_at: Optional[float] = None
    recovered_fully: bool = True
    detection_at: Optional[float] = None
    rejoined_at: Optional[float] = None


def sustained_recovery(
    tl: Timeline, start: float, end: float, target: float, width: float
) -> float:
    """Earliest time in [start, end) after which throughput stays at or
    above ``target`` for a full window of ``width`` (else ``end``)."""
    step = tl.bucket_width
    t = start
    while t + width <= end:
        if tl.mean_rate(t, t + width) >= target:
            return t
        t += step
    return end


def recovery_transient_end(
    record: ExperimentRecord, env: Environment = DEFAULT_ENVIRONMENT
) -> float:
    """When stage D (the post-recovery transient) ends for ``record``.

    D runs from component recovery until throughput sustainably comes
    back (which captures e.g. TCP's retransmission-backoff lag after a
    link repair) or, for rejoining nodes, through the rejoin warm-up.
    When throughput never sustains — the service is stuck in a
    sub-normal regime — D is just the brief post-repair transient and
    everything after it belongs to stage E.  Shared by the profile fit
    below and the divergence scorer in :mod:`repro.core.divergence`.
    """
    tl = record.timeline
    t_clr = max(record.cleared_at, record.injected_at)
    horizon = record.reset_at if record.reset_at is not None else record.end_time
    recovered_at = sustained_recovery(
        tl,
        t_clr,
        horizon,
        record.normal_throughput * env.recovery_threshold,
        env.transient_window,
    )
    if recovered_at < horizon:
        d_end = min(recovered_at + env.transient_window, horizon)
        if record.rejoined_at is not None and record.rejoined_at > t_clr:
            d_end = max(
                d_end, min(record.rejoined_at + env.transient_window, horizon)
            )
    else:
        # Never sustainably recovered: the post-repair warm-up toward
        # the sub-normal plateau is stage D; the *last* steady window
        # before the horizon characterizes the plateau itself (stage E).
        d_end = max(
            min(t_clr + env.transient_window, horizon),
            horizon - env.steady_window,
        )
    return min(d_end, record.end_time)


def extract_profile(
    record: ExperimentRecord,
    mttr: float,
    env: Environment = DEFAULT_ENVIRONMENT,
) -> SevenStageProfile:
    """Fit ``record`` to the seven-stage model."""
    tl = record.timeline
    tn = record.normal_throughput
    t_inj = record.injected_at
    t_clr = max(record.cleared_at, t_inj)
    profile = SevenStageProfile(
        fault=record.fault, version=record.version, normal_throughput=tn
    )

    def rate(a: float, b: float) -> float:
        """Mean rate over [a, b), clamped at Tn (bucket noise)."""
        return min(tl.mean_rate(a, b), tn)

    # -- does the fault register at all? --------------------------------
    observe_end = min(record.end_time, t_clr + env.transient_window)
    during = rate(t_inj, max(observe_end, t_inj + 1.0))
    tail = rate(record.end_time - env.steady_window, record.end_time)
    if (
        during >= tn * (1 - env.impact_threshold)
        and tail >= tn * (1 - env.impact_threshold)
        and record.recovered_fully
        and record.detection_at is None
    ):
        return SevenStageProfile.no_impact(record.fault, record.version, tn)

    t_det = record.detection_at

    # -- stage A: fault -> detection -------------------------------------
    if t_det is not None:
        d_a = max(t_det - t_inj, 0.0)
        if d_a > 0:
            profile = profile.with_stage(Stage.A, d_a, rate(t_inj, t_inj + d_a))
    else:
        # Never detected: the degraded regime lasts until the component
        # is repaired — the full MTTR, at the throughput observed while
        # the fault was active.
        d_a = max(mttr, t_clr - t_inj)
        observed = rate(t_inj, max(t_clr, t_inj + 1.0))
        profile = profile.with_stage(Stage.A, d_a, observed)

    # -- stage B: reconfiguration transient ------------------------------
    b_start = t_inj + min(d_a, max(t_clr - t_inj, 0.0))
    d_b = 0.0
    if t_det is not None:
        d_b = min(env.transient_window, max(0.0, t_clr - b_start))
        if d_b > 0:
            profile = profile.with_stage(
                Stage.B, d_b, rate(b_start, b_start + d_b)
            )

    # -- stage C: stable degraded until the component is repaired --------
    if t_det is not None:
        c_start = b_start + d_b
        d_c = max(0.0, mttr - d_a - d_b)
        if d_c > 0:
            if t_clr > c_start:
                t_c = rate(c_start, t_clr)
            else:
                # Detection landed essentially at recovery; reuse the
                # transient level as the degraded plateau.
                t_c = rate(b_start, max(t_clr, b_start + 1.0))
            profile = profile.with_stage(Stage.C, d_c, t_c)

    # -- stage D: post-recovery transient ---------------------------------
    d_end = recovery_transient_end(record, env)
    d_d = max(0.0, d_end - t_clr)
    if d_d > 0:
        profile = profile.with_stage(Stage.D, d_d, rate(t_clr, d_end))

    # -- stages E/F/G: sub-normal regime + operator reset ------------------
    if record.recovered_fully and record.reset_at is None:
        return profile

    e_start = d_end
    if record.reset_at is not None:
        # The run simulated the reset: F/G are measured.
        t_e = rate(e_start, max(record.reset_at, e_start + 1.0))
        profile = profile.with_stage(Stage.E, env.operator_response, t_e)
        f_end = min(record.reset_at + env.transient_window, record.end_time)
        # Reset = restarting the stray processes; measure until rejoin.
        profile = profile.with_stage(
            Stage.F,
            f_end - record.reset_at,
            rate(record.reset_at, f_end),
        )
        g_end = min(f_end + env.transient_window, record.end_time)
        if g_end > f_end:
            profile = profile.with_stage(
                Stage.G, g_end - f_end, rate(f_end, g_end)
            )
    else:
        # Not fully recovered and no reset simulated: assume the tail
        # regime persists until the operator steps in.
        t_e = rate(record.end_time - env.steady_window, record.end_time)
        profile = profile.with_stage(Stage.E, env.operator_response, t_e)
    return profile
