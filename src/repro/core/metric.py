"""The performability metric (§2.3).

.. math::

    P = T_n \\times \\frac{\\log(A_I)}{\\log(AA)}

where :math:`T_n` is the normal-operation throughput, :math:`A_I` an
ideal availability (five nines by default), and :math:`AA` the modeled
average availability.  The metric scales linearly with performance and
inversely with unavailability: doubling throughput doubles P, and
halving unavailability roughly doubles P (because
:math:`\\log(1-u) \\approx -u` for small :math:`u`).
"""

from __future__ import annotations

import math

from .model import PerformabilityResult

#: The paper's ideal availability: five nines.
IDEAL_AVAILABILITY = 0.99999

#: Availability is clamped into this open interval so the metric is
#: defined at the edges (a perfect system would otherwise divide by
#: log(1) = 0).
_EPS = 1e-12


def performability(
    normal_throughput: float,
    availability: float,
    ideal: float = IDEAL_AVAILABILITY,
) -> float:
    """Compute :math:`P` from throughput and availability."""
    if normal_throughput < 0:
        raise ValueError("throughput must be >= 0")
    if not 0 < ideal < 1:
        raise ValueError("ideal availability must be in (0, 1)")
    if not 0 <= availability <= 1:
        raise ValueError("availability must be in [0, 1]")
    aa = min(max(availability, _EPS), 1.0 - _EPS)
    return normal_throughput * math.log(ideal) / math.log(aa)


def performability_of(result: PerformabilityResult,
                      ideal: float = IDEAL_AVAILABILITY) -> float:
    """Performability of a phase-2 model result."""
    return performability(result.normal_throughput, result.availability, ideal)
