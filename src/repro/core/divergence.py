"""Score the online stage detector against the ground-truth fit.

The detector in :mod:`repro.obs.observatory` classifies a run from
operator-observable signals; :func:`repro.core.extract.extract_profile`
fits the same run from ground-truth annotations with full hindsight.
This module quantifies their disagreement per run:

* **boundary errors** — signed online-minus-reference error for each
  boundary both sides observed (detection, component repair, the end of
  the post-recovery transient, operator reset);
* **misclassified duration** — total time the two stage labelings
  disagree, from a sweep over both interval sets.

The reference intervals are the *observable windows* implied by the
ground-truth fit (the fit additionally stretches stages C and E to
environmental durations — MTTR, operator response — which no detector
watching the run could see; those stretches are a modeling step, not an
observation, so they are excluded from the comparison).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .extract import (
    DEFAULT_ENVIRONMENT,
    Environment,
    ExperimentRecord,
    recovery_transient_end,
)

Interval = list  # [stage, start, end]


def _matches_no_impact(record: ExperimentRecord, env: Environment) -> bool:
    """Mirror of the no-impact early-out in ``extract_profile``."""
    tl = record.timeline
    tn = record.normal_throughput
    t_inj = record.injected_at
    t_clr = max(record.cleared_at, t_inj)
    observe_end = min(record.end_time, t_clr + env.transient_window)
    during = min(tl.mean_rate(t_inj, max(observe_end, t_inj + 1.0)), tn)
    tail = min(
        tl.mean_rate(record.end_time - env.steady_window, record.end_time), tn
    )
    return (
        during >= tn * (1 - env.impact_threshold)
        and tail >= tn * (1 - env.impact_threshold)
        and record.recovered_fully
        and record.detection_at is None
    )


def reference_intervals(
    record: ExperimentRecord, env: Environment = DEFAULT_ENVIRONMENT
) -> List[Interval]:
    """``[stage, start, end]`` spans the ground-truth fit implies for the
    observed run window (same boundary formulas as ``extract_profile``)."""
    end = record.end_time
    t_inj = record.injected_at
    t_clr = max(record.cleared_at, t_inj)
    if _matches_no_impact(record, env):
        return [["normal", 0.0, end]]

    W = env.transient_window
    out: List[Interval] = []

    def add(stage: str, lo: float, hi: float) -> None:
        lo, hi = max(0.0, lo), min(hi, end)
        if hi > lo:
            out.append([stage, lo, hi])

    add("normal", 0.0, t_inj)
    t_det = record.detection_at
    if t_det is not None:
        add("A", t_inj, t_det)
        b_start = t_inj + min(t_det - t_inj, max(t_clr - t_inj, 0.0))
        d_b = min(W, max(0.0, t_clr - b_start))
        add("B", b_start, b_start + d_b)
        add("C", b_start + d_b, t_clr)
    else:
        add("A", t_inj, t_clr)

    # Detection can land *after* the component repair (a node-crash
    # heartbeat timeout firing once the reboot is already underway); A
    # runs through detection, so D starts no earlier than A ends.
    d_start = t_clr if t_det is None or t_det <= t_clr else t_det
    d_end = recovery_transient_end(record, env)
    add("D", d_start, d_end)

    if record.reset_at is not None:
        add("E", d_end, record.reset_at)
        f_end = min(record.reset_at + W, end)
        add("F", record.reset_at, f_end)
        g_end = min(f_end + W, end)
        add("G", f_end, g_end)
        add("normal", g_end, end)
    elif record.recovered_fully:
        add("normal", d_end, end)
    else:
        add("E", d_end, end)
    return out


def _label_at(intervals: List[Interval], t: float) -> Optional[str]:
    for stage, lo, hi in intervals:
        if lo <= t < hi:
            return stage
    return None


def misclassified_duration(
    online: List[Interval], reference: List[Interval]
) -> float:
    """Total time the two labelings disagree (uncovered time counts)."""
    cuts = sorted(
        {edge for span in online + reference for edge in (span[1], span[2])}
    )
    wrong = 0.0
    for lo, hi in zip(cuts, cuts[1:]):
        mid = (lo + hi) / 2
        if _label_at(online, mid) != _label_at(reference, mid):
            wrong += hi - lo
    return wrong


def _stage_end(intervals: List[Interval], stage: str) -> Optional[float]:
    for s, _, hi in intervals:
        if s == stage:
            return hi
    return None


def divergence_report(
    online: dict,
    record: ExperimentRecord,
    env: Environment = DEFAULT_ENVIRONMENT,
) -> dict:
    """Compare a ``StageDetector.summary()`` against the ground truth.

    ``online`` is the detector's JSON digest (``intervals`` plus the
    boundary attributes); the result is JSON-ready for per-cell
    telemetry and the dashboard.
    """
    reference = reference_intervals(record, env)
    online_intervals = [list(span) for span in online.get("intervals", [])]
    t_clr = max(record.cleared_at, record.injected_at)

    boundaries: Dict[str, dict] = {}

    def compare(label: str, on: Optional[float], ref: Optional[float]) -> None:
        if on is None and ref is None:
            return
        entry: dict = {"online": on, "reference": ref}
        if on is not None and ref is not None:
            entry["error"] = on - ref
        boundaries[label] = entry

    compare("injection", online.get("injected_at"), record.injected_at)
    compare("detection", online.get("detected_at"), record.detection_at)
    compare(
        "repair",
        online.get("repaired_at"),
        t_clr if t_clr > record.injected_at else None,
    )
    compare(
        "transient_end",
        _stage_end(online_intervals, "D"),
        _stage_end(reference, "D"),
    )
    compare("reset", online.get("reset_at"), record.reset_at)

    errors = [
        abs(entry["error"])
        for entry in boundaries.values()
        if "error" in entry
    ]
    wrong = misclassified_duration(online_intervals, reference)
    span = record.end_time if record.end_time > 0 else 1.0
    online_stages = {s for s, _, _ in online_intervals}
    reference_stages = {s for s, _, _ in reference}
    return {
        "boundaries": boundaries,
        "max_boundary_error": max(errors) if errors else 0.0,
        "misclassified_s": wrong,
        "misclassified_frac": wrong / span,
        "online_missing": sorted(reference_stages - online_stages),
        "online_extra": sorted(online_stages - reference_stages),
    }
