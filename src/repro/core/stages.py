"""The seven-stage piecewise-linear model of a service's fault response.

Figure 1 of the paper: after a fault, a server passes through up to seven
stages, each approximated by an (average throughput, duration) pair:

====  ==============================================================
A     degraded throughput from fault occurrence until detection
B     transient while the system reconfigures (warming effects)
C     stable degraded regime until the component recovers/is repaired
D     transient right after the component recovers
E     stable regime after recovery — below normal when the service
      cannot fully recover by itself (e.g. PRESS never re-merges
      partitions)
F     throughput while the operator resets the service
G     transient right after the reset
====  ==============================================================

Stages that do not occur get zero duration.  Durations are either
measured in phase 1 or supplied as environmental assumptions (component
MTTR, operator response time); throughputs are measured.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Tuple


class Stage(enum.Enum):
    A = "A"  # fault -> detection
    B = "B"  # reconfiguration transient
    C = "C"  # stable degraded (component still faulty)
    D = "D"  # recovery transient
    E = "E"  # stable post-recovery (possibly below normal)
    F = "F"  # operator reset
    G = "G"  # post-reset transient


STAGES: Tuple[Stage, ...] = tuple(Stage)


@dataclass(frozen=True)
class StagePoint:
    """One stage's (duration, average throughput)."""

    duration: float
    throughput: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"stage duration must be >= 0, got {self.duration}")
        if self.throughput < 0:
            raise ValueError(
                f"stage throughput must be >= 0, got {self.throughput}"
            )


ZERO = StagePoint(0.0, 0.0)


@dataclass(frozen=True)
class SevenStageProfile:
    """A server's complete measured response to one fault type.

    ``normal_throughput`` is Tn; ``stages`` maps each stage to its
    measured/assumed point.  Profiles are the phase-1 output and the
    phase-2 input.
    """

    fault: str
    version: str
    normal_throughput: float
    stages: Dict[Stage, StagePoint] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.normal_throughput <= 0:
            raise ValueError("normal throughput must be positive")
        complete = {s: self.stages.get(s, ZERO) for s in STAGES}
        object.__setattr__(self, "stages", complete)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def duration(self, stage: Stage) -> float:
        return self.stages[stage].duration

    def throughput(self, stage: Stage) -> float:
        return self.stages[stage].throughput

    @property
    def total_duration(self) -> float:
        """Total time the system spends off its normal regime per fault."""
        return sum(p.duration for p in self.stages.values())

    @property
    def lost_work(self) -> float:
        """Requests lost per fault occurrence vs. normal operation."""
        return sum(
            p.duration * (self.normal_throughput - p.throughput)
            for p in self.stages.values()
        )

    def degradation(self, stage: Stage) -> float:
        """1 - T_s/Tn for the stage (0 = no impact, 1 = total outage)."""
        return 1.0 - self.throughput(stage) / self.normal_throughput

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def with_stage(
        self, stage: Stage, duration: float, throughput: float
    ) -> "SevenStageProfile":
        stages = dict(self.stages)
        stages[stage] = StagePoint(duration, throughput)
        return replace(self, stages=stages)

    @classmethod
    def no_impact(cls, fault: str, version: str, tn: float) -> "SevenStageProfile":
        """A fault this version simply shrugs off (all stages zero)."""
        return cls(fault=fault, version=version, normal_throughput=tn)

    @classmethod
    def from_pairs(
        cls,
        fault: str,
        version: str,
        tn: float,
        pairs: Iterable[Tuple[Stage, float, float]],
    ) -> "SevenStageProfile":
        stages = {s: StagePoint(d, t) for s, d, t in pairs}
        return cls(fault=fault, version=version, normal_throughput=tn, stages=stages)

    # ------------------------------------------------------------------
    # Serialization (the campaign result store persists fitted profiles)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready representation; exact float round-trip via repr."""
        return {
            "fault": self.fault,
            "version": self.version,
            "normal_throughput": self.normal_throughput,
            "stages": {
                s.value: [p.duration, p.throughput]
                for s, p in self.stages.items()
                if p.duration > 0 or p.throughput > 0
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SevenStageProfile":
        stages = {
            Stage(name): StagePoint(float(d), float(t))
            for name, (d, t) in data["stages"].items()
        }
        return cls(
            fault=data["fault"],
            version=data["version"],
            normal_throughput=float(data["normal_throughput"]),
            stages=stages,
        )

    def describe(self) -> str:
        """Human-readable one-liner per stage (for reports)."""
        parts = []
        for stage in STAGES:
            p = self.stages[stage]
            if p.duration > 0:
                parts.append(
                    f"{stage.value}:{p.duration:.1f}s@{p.throughput:.0f}"
                )
        inner = " ".join(parts) if parts else "no impact"
        return f"{self.version}/{self.fault}: {inner}"


def average_profiles(profiles) -> SevenStageProfile:
    """Average replicated measurements of the same (version, fault).

    Stage durations are averaged arithmetically; stage throughputs are
    averaged weighted by each replication's stage duration (a stage a
    replication did not exhibit contributes no throughput evidence).
    """
    profiles = list(profiles)
    if not profiles:
        raise ValueError("need at least one profile to average")
    first = profiles[0]
    if any(
        p.fault != first.fault or p.version != first.version for p in profiles
    ):
        raise ValueError("can only average replications of one experiment")
    n = len(profiles)
    tn = sum(p.normal_throughput for p in profiles) / n
    stages = {}
    for stage in STAGES:
        total_duration = sum(p.duration(stage) for p in profiles)
        if total_duration > 0:
            throughput = (
                sum(p.duration(stage) * p.throughput(stage) for p in profiles)
                / total_duration
            )
            stages[stage] = StagePoint(total_duration / n, min(throughput, tn))
    return SevenStageProfile(
        fault=first.fault,
        version=first.version,
        normal_throughput=tn,
        stages=stages,
    )
