"""Phase 2: the analytic availability/performance model.

Given (a) a :class:`SevenStageProfile` per fault type (phase-1 output)
and (b) a :class:`FaultLoad` (MTTF/MTTR per component), compute the
expected average throughput and availability:

.. math::

    AT = (1 - \\sum_c W_c) T_n
         + \\sum_c \\sum_{s=A}^{G} \\frac{D_c^s}{MTTF_c} T_c^s,
    \\qquad
    AA = \\frac{AT}{T_n},
    \\qquad
    W_c = \\frac{\\sum_s D_c^s}{MTTF_c}

Assumptions inherited from the paper: faults are uncorrelated, arrivals
are exponential, and faults queue so only one is in effect at a time —
which is what lets the degraded-time fractions simply add.  (The
denominator of :math:`W_c` being MTTF rather than MTTF+MTTR is correct
because the stage durations within the profile already account for the
repair interval; see the paper's footnote 1 and [26].)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from .faultload import ComponentFault, FaultLoad
from .stages import STAGES, SevenStageProfile


class MissingProfile(KeyError):
    """The fault load references a fault with no measured profile."""


@dataclass(frozen=True)
class FaultContribution:
    """One component's share of the damage."""

    name: str
    profile_key: str
    weight: float  # W_c: fraction of time in this fault's degraded modes
    throughput_loss: float  # req/s of AT lost to this fault
    unavailability: float  # contribution to 1 - AA


@dataclass(frozen=True)
class PerformabilityResult:
    """The model's full output for one (version, fault load) pair."""

    version: str
    normal_throughput: float
    average_throughput: float
    availability: float
    contributions: List[FaultContribution] = field(default_factory=list)

    @property
    def unavailability(self) -> float:
        return 1.0 - self.availability

    def contribution_by(self, name: str) -> float:
        return sum(c.unavailability for c in self.contributions if c.name == name)

    def grouped_unavailability(
        self, grouping: Mapping[str, str]
    ) -> Dict[str, float]:
        """Aggregate contributions by ``grouping[name] -> group label``
        (Figure 6(a)'s stacked bars)."""
        out: Dict[str, float] = {}
        for c in self.contributions:
            group = grouping.get(c.name, c.name)
            out[group] = out.get(group, 0.0) + c.unavailability
        return out


class ProfileSet:
    """The phase-1 measurements for one PRESS version: profiles by key."""

    def __init__(self, version: str, normal_throughput: float):
        if normal_throughput <= 0:
            raise ValueError("normal throughput must be positive")
        self.version = version
        self.normal_throughput = normal_throughput
        self._profiles: Dict[str, SevenStageProfile] = {}

    def add(self, profile: SevenStageProfile) -> None:
        self._profiles[profile.fault] = profile

    def get(self, key: str) -> SevenStageProfile:
        try:
            return self._profiles[key]
        except KeyError:
            raise MissingProfile(
                f"{self.version}: no measured profile for fault {key!r}"
            ) from None

    def __contains__(self, key: str) -> bool:
        return key in self._profiles

    def keys(self):
        return self._profiles.keys()

    def __len__(self) -> int:
        return len(self._profiles)

    # ------------------------------------------------------------------
    # Serialization (store round-trips and cross-process merging)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "normal_throughput": self.normal_throughput,
            "profiles": {
                key: self._profiles[key].to_dict()
                for key in sorted(self._profiles)
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileSet":
        out = cls(data["version"], float(data["normal_throughput"]))
        for payload in data["profiles"].values():
            out.add(SevenStageProfile.from_dict(payload))
        return out

    def isclose(self, other: "ProfileSet", rel_tol: float = 1e-9) -> bool:
        """Numeric equality within ``rel_tol`` (float-tolerant comparison
        between e.g. a serial and a parallel campaign of the same seed)."""
        import math

        if self.version != other.version:
            return False
        if not math.isclose(
            self.normal_throughput, other.normal_throughput, rel_tol=rel_tol
        ):
            return False
        if set(self.keys()) != set(other.keys()):
            return False
        for key in self.keys():
            a, b = self.get(key), other.get(key)
            for stage in STAGES:
                if not math.isclose(
                    a.duration(stage), b.duration(stage),
                    rel_tol=rel_tol, abs_tol=1e-12,
                ):
                    return False
                if not math.isclose(
                    a.throughput(stage), b.throughput(stage),
                    rel_tol=rel_tol, abs_tol=1e-12,
                ):
                    return False
        return True


def evaluate(
    profiles: ProfileSet, load: FaultLoad
) -> PerformabilityResult:
    """Run the phase-2 model: combine profiles with a fault load."""
    tn = profiles.normal_throughput
    normal_fraction = 1.0
    degraded_throughput = 0.0
    contributions: List[FaultContribution] = []

    for component in load:
        profile = profiles.get(component.key)
        weight = profile.total_duration / component.mttf
        if weight > 1.0:
            raise ValueError(
                f"fault {component.name}: degraded time exceeds MTTF"
                f" (w={weight:.3f}); the single-fault queueing assumption"
                " is violated"
            )
        normal_fraction -= weight
        stage_throughput = sum(
            profile.duration(s) / component.mttf * profile.throughput(s)
            for s in STAGES
        )
        degraded_throughput += stage_throughput
        loss = weight * tn - stage_throughput
        contributions.append(
            FaultContribution(
                name=component.name,
                profile_key=component.key,
                weight=weight,
                throughput_loss=loss,
                unavailability=loss / tn,
            )
        )

    if normal_fraction < 0:
        raise ValueError(
            "combined fault load leaves no normal-operation time; "
            "the additive model does not apply"
        )
    at = min(normal_fraction * tn + degraded_throughput, tn)  # FP guard
    return PerformabilityResult(
        version=profiles.version,
        normal_throughput=tn,
        average_throughput=at,
        availability=at / tn,
        contributions=contributions,
    )
