"""The paper's methodology: 7-stage model, fault loads, performability."""

from .extract import DEFAULT_ENVIRONMENT, Environment, ExperimentRecord, extract_profile
from .faultload import (
    APPLICATION_FAULT_SPLIT,
    APPLICATION_FAULTS,
    DAY,
    HOUR,
    MINUTE,
    MONTH,
    NON_APPLICATION_FAULTS,
    WEEK,
    YEAR,
    ComponentFault,
    FaultLoad,
    packet_drop_component,
    software_bug_component,
    system_bug_component,
)
from .metric import IDEAL_AVAILABILITY, performability, performability_of
from .model import (
    FaultContribution,
    MissingProfile,
    PerformabilityResult,
    ProfileSet,
    evaluate,
)
from .sensitivity import crossover_multiplier, sweep_app_fault_rate
from .stages import STAGES, SevenStageProfile, Stage, StagePoint

__all__ = [
    "Stage",
    "STAGES",
    "StagePoint",
    "SevenStageProfile",
    "FaultLoad",
    "ComponentFault",
    "APPLICATION_FAULT_SPLIT",
    "APPLICATION_FAULTS",
    "NON_APPLICATION_FAULTS",
    "packet_drop_component",
    "software_bug_component",
    "system_bug_component",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "MONTH",
    "YEAR",
    "ProfileSet",
    "evaluate",
    "PerformabilityResult",
    "FaultContribution",
    "MissingProfile",
    "performability",
    "performability_of",
    "IDEAL_AVAILABILITY",
    "Environment",
    "DEFAULT_ENVIRONMENT",
    "ExperimentRecord",
    "extract_profile",
    "crossover_multiplier",
    "sweep_app_fault_rate",
]
