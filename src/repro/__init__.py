"""repro — reproduction of "Evaluating the Impact of Communication
Architecture on the Performability of Cluster-Based Services" (HPCA 2003).

The package is organized bottom-up:

* :mod:`repro.sim` — discrete-event engine, processes, resources, monitors.
* :mod:`repro.net` — the cLAN-style fabric: links, switch, NICs.
* :mod:`repro.osim` — OS model: kernel memory, pinning, processes, nodes.
* :mod:`repro.transports` — TCP and VIA intra-cluster substrates.
* :mod:`repro.faults` — the Mendosus-like fault injector (Table 2).
* :mod:`repro.press` — the PRESS server and its five versions (Table 1).
* :mod:`repro.workload` — trace synthesis and open-loop clients.
* :mod:`repro.core` — the paper's methodology: 7-stage model, fault
  loads (Table 3), the AT/AA model, and the performability metric.
* :mod:`repro.experiments` — one entry point per table/figure.

Quickstart::

    from repro.press import PressCluster, TCP_PRESS
    from repro.faults import FaultKind, FaultSpec

    cluster = PressCluster(TCP_PRESS, seed=1)
    cluster.start()
    cluster.mendosus.schedule(
        FaultSpec(FaultKind.LINK_DOWN, target="node2", at=60, duration=60)
    )
    cluster.run_until(200)
    print(cluster.monitor.availability())
"""

from . import (
    analysis,
    core,
    experiments,
    faults,
    net,
    osim,
    press,
    sim,
    transports,
    workload,
)

__version__ = "1.0.0"

__all__ = [
    "sim",
    "net",
    "osim",
    "transports",
    "faults",
    "press",
    "workload",
    "core",
    "experiments",
    "analysis",
    "__version__",
]
