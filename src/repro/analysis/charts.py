"""Terminal-friendly charts: sparklines, bar charts, timeline plots.

Everything renders to plain strings so reports work over SSH, in CI
logs, and in the paper-regeneration benchmarks.  The ``svg_*`` helpers
emit inline SVG fragments for the self-contained campaign dashboard —
same zero-dependency rule, just a different sink.
"""

from __future__ import annotations

from html import escape
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

_SPARK = "▁▂▃▄▅▆▇█"
_BAR = "█"


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """A one-line unicode sparkline of ``values``."""
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _SPARK[0] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK) - 1))
        out.append(_SPARK[max(0, min(idx, len(_SPARK) - 1))])
    return "".join(out)


def bar_chart(
    rows: Mapping[str, float],
    width: int = 40,
    unit: str = "",
    lo: float = 0.0,
) -> str:
    """A horizontal bar chart, one labelled row per entry."""
    if not rows:
        return "(no data)"
    hi = max(rows.values())
    span = hi - lo
    label_width = max(len(k) for k in rows)
    lines = []
    for label, value in rows.items():
        frac = 0.0 if span <= 0 else (value - lo) / span
        bar = _BAR * max(0, int(frac * width))
        lines.append(f"{label:{label_width}s} {value:10.1f}{unit} {bar}")
    return "\n".join(lines)


def timeline_plot(
    series: Sequence[Tuple[float, float]],
    bucket: float = 10.0,
    height: int = 8,
    markers: Optional[Mapping[float, str]] = None,
) -> str:
    """A small block plot of a throughput timeline.

    ``markers`` maps times to single characters rendered on a rail below
    the plot (e.g. ``{60.0: "F"}`` for the fault instant).
    """
    if not series:
        return "(no data)"
    end = series[-1][0]
    # Coarsen to the requested bucket.
    points: List[float] = []
    t = 0.0
    values = dict(series)
    src_bucket = series[1][0] - series[0][0] if len(series) > 1 else 1.0
    while t <= end:
        window = [
            v
            for (tt, v) in series
            if t <= tt < t + bucket
        ]
        points.append(sum(window) / len(window) if window else 0.0)
        t += bucket
    hi = max(points) or 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = hi * (level - 0.5) / height
        row = "".join("█" if p >= threshold else " " for p in points)
        rows.append(f"{hi * level / height:8.0f} |{row}")
    rows.append(" " * 9 + "+" + "-" * len(points))
    if markers:
        rail = [" "] * len(points)
        for when, char in markers.items():
            idx = int(when / bucket)
            if 0 <= idx < len(rail):
                rail[idx] = char[0]
        rows.append(" " * 10 + "".join(rail))
    return "\n".join(rows)


# ----------------------------------------------------------------------
# Inline SVG (campaign dashboard)
# ----------------------------------------------------------------------

#: Stage band fill colors — muted so the throughput line stays readable.
STAGE_COLORS = {
    "A": "#f4c7c3",  # fault active, undetected
    "B": "#fce8b2",  # reconfiguration transient
    "C": "#fff6d5",  # stable degraded
    "D": "#c8e6c9",  # post-recovery transient
    "E": "#d7ccc8",  # stable sub-normal
    "F": "#d0d9f0",  # operator reset
    "G": "#e1f5fe",  # post-reset transient
    "normal": "none",
}


def _fmt(x: float) -> str:
    """Compact SVG coordinate: trim trailing zeros."""
    return f"{x:.2f}".rstrip("0").rstrip(".")


def svg_timeline(
    series: Sequence[Sequence[float]],
    tn: float = 0.0,
    stages: Optional[Sequence[Sequence]] = None,
    markers: Optional[Mapping[str, float]] = None,
    width: int = 640,
    height: int = 150,
    bucket_width: float = 1.0,
) -> str:
    """An inline-SVG throughput timeline with stage bands and markers.

    ``series`` is ``[(time, rate), ...]``; ``stages`` is
    ``[(stage, start, end), ...]`` rendered as colored background bands
    with the stage letter at the top; ``markers`` maps labels to times
    (vertical dashed rules).  ``tn`` draws a dotted normal-throughput
    reference.  Returns a self-contained ``<svg>`` fragment — no
    external CSS, fonts, or scripts.
    """
    if not series:
        return "<svg xmlns='http://www.w3.org/2000/svg' width='%d' height='%d'></svg>" % (
            width,
            height,
        )
    pad_l, pad_r, pad_t, pad_b = 42, 8, 14, 18
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    t_end = max(series[-1][0] + bucket_width, 1e-9)
    v_max = max(max(r for _, r in series), tn, 1e-9) * 1.05

    def x(t: float) -> float:
        return pad_l + min(max(t, 0.0), t_end) / t_end * plot_w

    def y(v: float) -> float:
        return pad_t + plot_h - min(max(v, 0.0), v_max) / v_max * plot_h

    parts: List[str] = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' viewBox='0 0 {width} {height}' "
        f"font-family='sans-serif' font-size='9'>",
        f"<rect x='{pad_l}' y='{pad_t}' width='{plot_w}' height='{plot_h}' "
        "fill='#fafafa' stroke='#ccc' stroke-width='0.5'/>",
    ]
    for span in stages or []:
        stage, lo, hi = span[0], float(span[1]), float(span[2])
        color = STAGE_COLORS.get(str(stage), "#eeeeee")
        if color == "none" or hi <= lo:
            continue
        bx, bw = x(lo), max(x(hi) - x(lo), 0.5)
        parts.append(
            f"<rect x='{_fmt(bx)}' y='{pad_t}' width='{_fmt(bw)}' "
            f"height='{plot_h}' fill='{color}'/>"
        )
        if bw >= 8:
            parts.append(
                f"<text x='{_fmt(bx + bw / 2)}' y='{pad_t + 9}' "
                f"text-anchor='middle' fill='#555'>{escape(str(stage))}</text>"
            )
    if tn > 0:
        parts.append(
            f"<line x1='{pad_l}' y1='{_fmt(y(tn))}' x2='{pad_l + plot_w}' "
            f"y2='{_fmt(y(tn))}' stroke='#888' stroke-width='0.7' "
            "stroke-dasharray='2,3'/>"
        )
        parts.append(
            f"<text x='{pad_l - 4}' y='{_fmt(y(tn) + 3)}' text-anchor='end' "
            f"fill='#555'>{_fmt(tn)}</text>"
        )
    points = " ".join(
        f"{_fmt(x(t + bucket_width / 2))},{_fmt(y(r))}" for t, r in series
    )
    parts.append(
        f"<polyline points='{points}' fill='none' stroke='#1565c0' "
        "stroke-width='1.2'/>"
    )
    for label, when in (markers or {}).items():
        if when is None:
            continue
        mx = _fmt(x(float(when)))
        parts.append(
            f"<line x1='{mx}' y1='{pad_t}' x2='{mx}' y2='{pad_t + plot_h}' "
            "stroke='#c62828' stroke-width='0.8' stroke-dasharray='4,2'/>"
        )
        parts.append(
            f"<text x='{mx}' y='{height - 6}' text-anchor='middle' "
            f"fill='#c62828'>{escape(str(label))}</text>"
        )
    parts.append(
        f"<text x='{pad_l - 4}' y='{pad_t + 4}' text-anchor='end' "
        f"fill='#555'>{_fmt(v_max)}</text>"
    )
    parts.append(
        f"<text x='{pad_l - 4}' y='{pad_t + plot_h + 3}' text-anchor='end' "
        "fill='#555'>0</text>"
    )
    parts.append(
        f"<text x='{pad_l + plot_w}' y='{height - 6}' text-anchor='end' "
        f"fill='#555'>{_fmt(t_end)}s</text>"
    )
    parts.append("</svg>")
    return "".join(parts)
