"""Terminal-friendly charts: sparklines, bar charts, timeline plots.

Everything renders to plain strings so reports work over SSH, in CI
logs, and in the paper-regeneration benchmarks.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

_SPARK = "▁▂▃▄▅▆▇█"
_BAR = "█"


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """A one-line unicode sparkline of ``values``."""
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _SPARK[0] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK) - 1))
        out.append(_SPARK[max(0, min(idx, len(_SPARK) - 1))])
    return "".join(out)


def bar_chart(
    rows: Mapping[str, float],
    width: int = 40,
    unit: str = "",
    lo: float = 0.0,
) -> str:
    """A horizontal bar chart, one labelled row per entry."""
    if not rows:
        return "(no data)"
    hi = max(rows.values())
    span = hi - lo
    label_width = max(len(k) for k in rows)
    lines = []
    for label, value in rows.items():
        frac = 0.0 if span <= 0 else (value - lo) / span
        bar = _BAR * max(0, int(frac * width))
        lines.append(f"{label:{label_width}s} {value:10.1f}{unit} {bar}")
    return "\n".join(lines)


def timeline_plot(
    series: Sequence[Tuple[float, float]],
    bucket: float = 10.0,
    height: int = 8,
    markers: Optional[Mapping[float, str]] = None,
) -> str:
    """A small block plot of a throughput timeline.

    ``markers`` maps times to single characters rendered on a rail below
    the plot (e.g. ``{60.0: "F"}`` for the fault instant).
    """
    if not series:
        return "(no data)"
    end = series[-1][0]
    # Coarsen to the requested bucket.
    points: List[float] = []
    t = 0.0
    values = dict(series)
    src_bucket = series[1][0] - series[0][0] if len(series) > 1 else 1.0
    while t <= end:
        window = [
            v
            for (tt, v) in series
            if t <= tt < t + bucket
        ]
        points.append(sum(window) / len(window) if window else 0.0)
        t += bucket
    hi = max(points) or 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = hi * (level - 0.5) / height
        row = "".join("█" if p >= threshold else " " for p in points)
        rows.append(f"{hi * level / height:8.0f} |{row}")
    rows.append(" " * 9 + "+" + "-" * len(points))
    if markers:
        rail = [" "] * len(points)
        for when, char in markers.items():
            idx = int(when / bucket)
            if 0 <= idx < len(rail):
                rail[idx] = char[0]
        rows.append(" " * 10 + "".join(rail))
    return "\n".join(rows)
