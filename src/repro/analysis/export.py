"""Data export: timelines, profiles, and model results to CSV/JSON.

For downstream plotting (matplotlib, gnuplot, spreadsheets) without
adding plotting dependencies to the library itself.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Mapping

from ..core.model import PerformabilityResult, ProfileSet
from ..core.stages import STAGES
from ..sim.monitor import Timeline


def timeline_to_csv(timeline: Timeline) -> str:
    """``time,throughput,failures`` rows for one measured timeline."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["time_s", "throughput_rps", "failures_rps"])
    failures = dict(timeline.failures)
    for t, rate in timeline.series:
        writer.writerow([f"{t:.1f}", f"{rate:.2f}", f"{failures.get(t, 0.0):.2f}"])
    return buf.getvalue()


def profiles_to_csv(profiles: ProfileSet) -> str:
    """One row per (fault, stage) with duration and throughput."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        ["version", "fault", "stage", "duration_s", "throughput_rps"]
    )
    for key in sorted(profiles.keys()):
        p = profiles.get(key)
        for stage in STAGES:
            writer.writerow(
                [
                    profiles.version,
                    key,
                    stage.value,
                    f"{p.duration(stage):.2f}",
                    f"{p.throughput(stage):.2f}",
                ]
            )
    return buf.getvalue()


def result_to_dict(result: PerformabilityResult) -> dict:
    from ..core.metric import performability_of

    return {
        "version": result.version,
        "normal_throughput": result.normal_throughput,
        "average_throughput": result.average_throughput,
        "availability": result.availability,
        "unavailability": result.unavailability,
        "performability": performability_of(result),
        "contributions": [
            {
                "name": c.name,
                "profile": c.profile_key,
                "weight": c.weight,
                "unavailability": c.unavailability,
            }
            for c in result.contributions
        ],
    }


def results_to_json(results: Iterable[PerformabilityResult], indent: int = 2) -> str:
    return json.dumps([result_to_dict(r) for r in results], indent=indent)


def timeline_to_dict(timeline: Timeline) -> dict:
    return {
        "version": timeline.version,
        "fault": timeline.fault,
        "bucket_width": timeline.bucket_width,
        "availability": timeline.availability,
        "series": [[t, r] for t, r in timeline.series],
        "annotations": [
            {"time": a.time, "label": a.label, "detail": a.detail}
            for a in timeline.annotations
        ],
    }
