"""Campaign perf ledger + the ``perf-report`` / ``perf-compare`` views.

The flight recorder (:mod:`repro.obs.profiler`) leaves two artifacts
behind a ``--profile`` campaign:

* one JSON record per executed cell in the store's volatile ``perf/``
  namespace — the wall-clock breakdown (execute / warm-restore /
  serialize / snapshot) plus the profiler digest (per-layer self-time,
  fastpath counters, engine heap churn, LP shard balance);
* one consolidated ``BENCH_campaign.json`` **ledger** in the cache dir —
  the campaign-level rollup of those records joined with the report's
  wall-clock, warm-start traffic, and replication budget.

This module builds the ledger (:func:`campaign_ledger`), renders the
human view over a cache dir (:func:`perf_report_from_store` → the
``python -m repro perf-report`` command), and diffs two cache dirs
(:func:`perf_compare` → ``perf-compare``).  Everything here reads
wall-clock data only; nothing feeds back into cache keys or payloads.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

#: File name of the consolidated ledger inside a campaign cache dir.
LEDGER_NAME = "BENCH_campaign.json"

#: Schema tag of the ledger payload (bump on incompatible layout).
LEDGER_VERSION = 1


# ----------------------------------------------------------------------
# Aggregation over per-cell perf records
# ----------------------------------------------------------------------


def _cell_label(row: dict) -> str:
    version = row.get("version", "?")
    fault = row.get("fault") or "baseline"
    rep = row.get("rep")
    label = f"{version}/{fault}"
    if rep is not None:
        label += f"#r{rep}"
    return label


def _merge_lp(agg: Optional[dict], lp: dict) -> dict:
    """Fold one cell's LP stats into the campaign aggregate."""
    if agg is None:
        agg = {
            "shards": 0,
            "backend": None,
            "bursts": 0,
            "nulls_sent": 0,
            "nulls_received": 0,
            "eot_advances": 0,
            "lp_events": [],
            "lp_exec_s": [],
            "worker_exec_s": [],
            "worker_idle_s": [],
            "worker_blocked_s": [],
            "merge_idle_s": 0.0,
        }
    agg["shards"] = max(agg["shards"], int(lp.get("shards", 0)))
    backend = lp.get("backend")
    if backend:
        prev = agg.get("backend")
        agg["backend"] = backend if prev in (None, backend) else "mixed"
    for key in ("bursts", "nulls_sent", "nulls_received", "eot_advances"):
        agg[key] += int(lp.get(key, 0))
    agg["merge_idle_s"] += float(lp.get("merge_idle_s", 0.0))
    for key in (
        "lp_events",
        "lp_exec_s",
        "worker_exec_s",
        "worker_idle_s",
        "worker_blocked_s",
    ):
        values = lp.get(key) or []
        dst = agg[key]
        while len(dst) < len(values):
            dst.append(0 if key == "lp_events" else 0.0)
        for i, v in enumerate(values):
            dst[i] += v
    return agg


def _imbalance(shares: List[float]) -> Optional[float]:
    """Load-imbalance index: max LP share over the ideal equal share.

    ``None`` (rendered ``n/a``) when nothing ran — a share of zero work
    is undefined, not perfectly balanced, and must never divide by zero
    or read as ``inf``.
    """
    total = sum(shares)
    if not shares or total <= 0:
        return None
    return max(shares) * len(shares) / total


def aggregate_perf(rows: Iterable[dict]) -> dict:
    """Campaign-wide rollup of per-cell perf records.

    ``rows`` are the dicts the runner appends to ``report.perf`` (or the
    record halves of ``DiskStore.iter_perf``, with identity merged in).
    Missing keys degrade to zero — a stale or partial record never
    raises.
    """
    totals = {
        "cells": 0,
        "execute_s": 0.0,
        "restore_s": 0.0,
        "serialize_s": 0.0,
        "snapshot_s": 0.0,
        "events": 0,
        "self_s": 0.0,
    }
    layers: Dict[str, Dict[str, float]] = {}
    counters: Dict[str, int] = {}
    engine = {
        "events_processed": 0,
        "scheduled": 0,
        "timer_allocs": 0,
        "freelist_reuse": 0,
        "compactions": 0,
    }
    lp: Optional[dict] = None
    cells: List[dict] = []
    for row in rows:
        if not isinstance(row, dict):
            continue
        totals["cells"] += 1
        for key in ("execute_s", "restore_s", "serialize_s", "snapshot_s"):
            totals[key] += float(row.get(key) or 0.0)
        profile = row.get("profile") or {}
        totals["events"] += int(profile.get("events") or 0)
        totals["self_s"] += float(profile.get("self_s") or 0.0)
        for layer, stats in (profile.get("layers") or {}).items():
            dst = layers.setdefault(layer, {"events": 0, "self_s": 0.0})
            dst["events"] += int(stats.get("events") or 0)
            dst["self_s"] += float(stats.get("self_s") or 0.0)
        for name, n in (profile.get("counters") or {}).items():
            counters[name] = counters.get(name, 0) + int(n)
        eng = profile.get("engine") or {}
        for key in engine:
            engine[key] += int(eng.get(key) or 0)
        if profile.get("lp"):
            lp = _merge_lp(lp, profile["lp"])
        cells.append(
            {
                "cell": _cell_label(row),
                "execute_s": float(row.get("execute_s") or 0.0),
                "restore_s": float(row.get("restore_s") or 0.0),
                "serialize_s": float(row.get("serialize_s") or 0.0),
                "snapshot_s": float(row.get("snapshot_s") or 0.0),
                "events": int(profile.get("events") or 0),
                "warm_status": row.get("warm_status"),
            }
        )
    if lp is not None:
        lp["imbalance"] = _imbalance(lp["lp_events"])
        lp["worker_imbalance"] = _imbalance(lp.get("worker_exec_s") or [])
    # Stable label order (not wall-clock order) so the aggregate — and
    # the ledger rows built from it — byte-diffs cleanly across runs
    # with identical structure; display views re-sort by cost locally.
    cells.sort(key=lambda c: c["cell"])
    return {
        "totals": totals,
        "layers": {k: layers[k] for k in sorted(layers)},
        "counters": {k: counters[k] for k in sorted(counters)},
        "engine": engine,
        "lp": lp,
        "cells": cells,
    }


# ----------------------------------------------------------------------
# The consolidated ledger (BENCH_campaign.json)
# ----------------------------------------------------------------------


def campaign_ledger(report, settings=None) -> dict:
    """JSON-ready campaign perf ledger from a ``CampaignReport``.

    Joins the per-cell flight-recorder records with the report's
    campaign-level accounting (wall clock, cache hits, warm-start
    traffic, replication budget).  Written to :data:`LEDGER_NAME` by a
    profiled campaign; read back by ``perf-report`` / ``perf-compare``.
    """
    agg = aggregate_perf(report.perf)
    ledger = {
        "kind": "campaign-perf-ledger",
        "ledger_version": LEDGER_VERSION,
        "jobs": report.jobs,
        "wall_clock_s": report.wall_clock,
        "cells": {
            "total": len(report.cells),
            "executed": report.executed,
            "cached": report.cached,
            "profiled": agg["totals"]["cells"],
        },
        "timing": {
            "cell_s": report.cell_seconds,
            "execute_s": report.execute_seconds,
            "restore_s": report.restore_seconds,
            "serialize_s": agg["totals"]["serialize_s"],
            "snapshot_s": agg["totals"]["snapshot_s"],
            "speedup": report.speedup,
            "parallelism": report.parallelism,
        },
        "warm_start": dict(report.warm_start),
        "replication": {
            "policy": report.policy,
            "reps_spent": report.reps_spent,
            "reps_ceiling": report.reps_ceiling,
            "saved_fraction": report.reps_saved_fraction,
        },
        "profile": {
            "events": agg["totals"]["events"],
            "self_s": agg["totals"]["self_s"],
            "layers": agg["layers"],
            "counters": agg["counters"],
            "engine": agg["engine"],
            "lp": agg["lp"],
        },
        # Top 10 by execute time, then label-sorted so the committed
        # ledger is byte-stable whenever the same rows make the cut.
        "top_cells": sorted(
            sorted(agg["cells"], key=lambda c: (-c["execute_s"], c["cell"]))[
                :10
            ],
            key=lambda c: c["cell"],
        ),
    }
    if settings is not None:
        ledger["settings"] = {
            "scale": getattr(
                getattr(settings, "scale", None), "cpu_factor", None
            ),
            "seed": getattr(settings, "seed", None),
            "n_nodes": getattr(settings, "n_nodes", None),
            "shards": getattr(settings, "shards", None),
            "lp_backend": getattr(settings, "lp_backend", None),
            "fastpath": getattr(settings, "fastpath", None),
            "replications": getattr(settings, "replications", None),
        }
    return ledger


def load_ledger(cache_dir) -> Optional[dict]:
    """The cache dir's ``BENCH_campaign.json``, or None when absent/bad."""
    path = Path(cache_dir) / LEDGER_NAME
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def _store_rows(cache_dir) -> List[dict]:
    """Per-cell perf records from the store, identity merged in."""
    from ..experiments.store import DiskStore

    rows: List[dict] = []
    for key, record in DiskStore(Path(cache_dir)).iter_perf():
        if not isinstance(record, dict):
            continue
        merged = dict(record)
        for field in ("version", "fault", "rep", "seed"):
            merged.setdefault(field, (key or {}).get(field))
        rows.append(merged)
    return rows


# ----------------------------------------------------------------------
# perf-report rendering
# ----------------------------------------------------------------------


def _pct(part: float, whole: float) -> str:
    if whole <= 0:
        return "    —"
    return f"{100.0 * part / whole:4.0f}%"


def _layer_lines(layers: Dict[str, dict], total_s: float) -> List[str]:
    lines = [f"  {'layer':12s} {'events':>10s} {'self_s':>10s} {'share':>6s}"]
    ordered = sorted(
        layers.items(), key=lambda kv: (-kv[1].get("self_s", 0.0), kv[0])
    )
    for layer, stats in ordered:
        lines.append(
            f"  {layer:12s} {int(stats.get('events') or 0):10d}"
            f" {float(stats.get('self_s') or 0.0):10.4f}"
            f" {_pct(float(stats.get('self_s') or 0.0), total_s):>6s}"
        )
    return lines


def _fastpath_lines(counters: Dict[str, int]) -> List[str]:
    fast = (
        counters.get("fabric.fast_cached", 0)
        + counters.get("fabric.fast_checked", 0)
    )
    slow = counters.get("fabric.slow", 0)
    train = counters.get("fabric.fast_train", 0)
    if not (fast or slow or train):
        return []
    total = fast + slow
    rate = f"{100.0 * fast / total:.1f}%" if total else "—"
    return [
        "fabric fastpath: "
        f"{counters.get('fabric.fast_cached', 0)} cached + "
        f"{counters.get('fabric.fast_checked', 0)} checked hits, "
        f"{slow} slow-path sends (hit rate {rate}); "
        f"{train} train frames"
    ]


def _ratio(value: Optional[float]) -> str:
    """Render an imbalance index, or ``n/a`` for the undefined case."""
    return f"{value:.2f}x ideal" if value is not None else "n/a"


def _lp_lines(lp: Optional[dict]) -> List[str]:
    if not lp or not lp.get("shards"):
        return []
    events = lp.get("lp_events") or []
    exec_s = lp.get("lp_exec_s") or []
    lines = [
        f"lp shards: {lp['shards']} — load imbalance "
        f"{_ratio(lp.get('imbalance'))}, "
        f"{lp.get('nulls_sent', 0)} null msgs sent, "
        f"{lp.get('nulls_received', 0)} received, "
        f"{lp.get('eot_advances', 0)} EOT advances, "
        f"merge-loop idle {lp.get('merge_idle_s', 0.0):.4f}s",
    ]
    if events:
        per = " ".join(
            f"lp{i}:{n}"
            + (f"({exec_s[i]:.3f}s)" if i < len(exec_s) and exec_s[i] else "")
            for i, n in enumerate(events)
        )
        lines.append(f"  events per LP: {per}")
    worker_exec = lp.get("worker_exec_s") or []
    if any(worker_exec):
        backend = lp.get("backend") or "?"
        idle = lp.get("worker_idle_s") or []
        blocked = lp.get("worker_blocked_s") or []
        lines.append(
            f"lp workers ({backend}): load imbalance "
            f"{_ratio(lp.get('worker_imbalance'))} over real per-worker "
            "wall clocks"
        )
        lines.append(
            f"  {'worker':8s} {'exec_s':>10s} {'idle_s':>10s}"
            f" {'blocked_on_null_s':>18s}"
        )
        for i, ex in enumerate(worker_exec):
            idl = idle[i] if i < len(idle) else 0.0
            blk = blocked[i] if i < len(blocked) else 0.0
            lines.append(
                f"  lp{i:<6d} {ex:10.4f} {idl:10.4f} {blk:18.4f}"
            )
    return lines


def _cell_lines(cells: List[dict], top: int = 15) -> List[str]:
    lines = [
        f"  {'cell':38s} {'execute':>9s} {'restore':>9s}"
        f" {'serialize':>9s} {'snapshot':>9s} {'events':>9s}"
    ]
    # The aggregate keeps cells label-sorted for byte-stable ledgers;
    # the human view wants the expensive ones first.
    cells = sorted(cells, key=lambda c: (-c["execute_s"], c["cell"]))
    for c in cells[:top]:
        lines.append(
            f"  {c['cell']:38s} {c['execute_s']:8.3f}s {c['restore_s']:8.3f}s"
            f" {c['serialize_s']:8.3f}s {c['snapshot_s']:8.3f}s"
            f" {c['events']:9d}"
        )
    if len(cells) > top:
        lines.append(f"  … and {len(cells) - top} more cell(s)")
    return lines


def render_perf_report(
    rows: List[dict], ledger: Optional[dict] = None, source: str = ""
) -> str:
    """Text report over per-cell perf records plus the optional ledger."""
    lines = [f"flight recorder — {source}" if source else "flight recorder"]
    if not rows and not ledger:
        lines.append(
            "no flight-recorder data found (no perf/ records and no "
            f"{LEDGER_NAME}); run the campaign with --profile to collect"
        )
        return "\n".join(lines)
    agg = aggregate_perf(rows)
    totals = agg["totals"]
    if ledger:
        cells = ledger.get("cells") or {}
        timing = ledger.get("timing") or {}
        lines.append(
            f"campaign: {cells.get('total', '?')} cells "
            f"({cells.get('executed', '?')} executed, "
            f"{cells.get('cached', '?')} cached) on "
            f"{ledger.get('jobs', '?')} job(s), "
            f"wall-clock {float(ledger.get('wall_clock_s') or 0.0):.2f}s"
        )
        lines.append(
            f"  execute {float(timing.get('execute_s') or 0.0):.2f}s, "
            f"warm-restore {float(timing.get('restore_s') or 0.0):.2f}s "
            f"(speedup {float(timing.get('speedup') or 0.0):.2f}x, "
            f"parallelism {float(timing.get('parallelism') or 0.0):.2f}x)"
        )
        warm = ledger.get("warm_start") or {}
        if warm:
            traffic = ", ".join(f"{k}: {v}" for k, v in sorted(warm.items()))
            lines.append(f"  warm-start checkpoints — {traffic}")
        reps = ledger.get("replication") or {}
        if reps.get("reps_ceiling"):
            lines.append(
                f"  replication ({reps.get('policy', '?')}): "
                f"{reps.get('reps_spent', 0)} reps of "
                f"{reps.get('reps_ceiling', 0)} ceiling "
                f"({100.0 * float(reps.get('saved_fraction') or 0.0):.0f}% "
                "saved)"
            )
    if not rows and ledger:
        # Fall back to the ledger's own rollup (e.g. an in-memory
        # campaign that only persisted the consolidated file).
        profile = ledger.get("profile") or {}
        agg = {
            "totals": dict(
                totals,
                events=int(profile.get("events") or 0),
                self_s=float(profile.get("self_s") or 0.0),
            ),
            "layers": profile.get("layers") or {},
            "counters": profile.get("counters") or {},
            "engine": profile.get("engine") or {},
            "lp": profile.get("lp"),
            "cells": ledger.get("top_cells") or [],
        }
        totals = agg["totals"]
    lines.append(
        f"profiled: {totals['cells'] or len(agg['cells'])} cell record(s), "
        f"{totals['events']} events, {totals['self_s']:.4f}s self-time"
    )
    if agg["layers"]:
        lines.append("self-time by layer:")
        lines += _layer_lines(agg["layers"], totals["self_s"])
    lines += _fastpath_lines(agg["counters"])
    eng = agg["engine"]
    if eng and any(eng.values()):
        scheduled = int(eng.get("scheduled") or 0)
        reuse = int(eng.get("freelist_reuse") or 0)
        reuse_pct = f"{100.0 * reuse / scheduled:.1f}%" if scheduled else "—"
        lines.append(
            f"engine: {eng.get('events_processed', 0)} events processed, "
            f"{scheduled} timers scheduled, "
            f"{eng.get('timer_allocs', 0)} allocated "
            f"(freelist reuse {reuse_pct}), "
            f"{eng.get('compactions', 0)} heap compaction(s)"
        )
    lines += _lp_lines(agg["lp"])
    if agg["cells"]:
        lines.append("per-cell wall-clock breakdown (top by execute time):")
        lines += _cell_lines(agg["cells"])
    return "\n".join(lines)


def perf_report_from_store(cache_dir) -> str:
    """The ``perf-report`` command body: render one cache dir."""
    cache_dir = Path(cache_dir)
    if not cache_dir.is_dir():
        raise ValueError(f"{cache_dir}: not a directory")
    return render_perf_report(
        _store_rows(cache_dir),
        ledger=load_ledger(cache_dir),
        source=str(cache_dir),
    )


# ----------------------------------------------------------------------
# perf-compare
# ----------------------------------------------------------------------


def _side(cache_dir) -> Tuple[dict, Optional[dict]]:
    return aggregate_perf(_store_rows(cache_dir)), load_ledger(cache_dir)


def _delta_line(label: str, a: float, b: float, unit: str = "s") -> str:
    if a > 0:
        rel = f"{100.0 * (b - a) / a:+7.1f}%"
    elif b > 0:
        rel = "   new"
    else:
        rel = "     ="
    return f"  {label:28s} {a:12.4f}{unit} {b:12.4f}{unit} {rel}"


def perf_compare(dir_a, dir_b) -> Tuple[str, bool]:
    """Compare two profiled cache dirs; returns ``(text, comparable)``.

    ``comparable`` is False when either side has no flight-recorder data
    at all — the CLI maps that to a non-zero exit so CI catches a
    perf-smoke job that silently profiled nothing.
    """
    dir_a, dir_b = Path(dir_a), Path(dir_b)
    agg_a, ledger_a = _side(dir_a)
    agg_b, ledger_b = _side(dir_b)
    has_a = bool(agg_a["totals"]["cells"] or ledger_a)
    has_b = bool(agg_b["totals"]["cells"] or ledger_b)
    lines = [f"perf-compare — A: {dir_a}  B: {dir_b}"]
    if not (has_a and has_b):
        for name, ok, d in (("A", has_a, dir_a), ("B", has_b, dir_b)):
            if not ok:
                lines.append(
                    f"{name} ({d}): no flight-recorder data "
                    "(run with --profile)"
                )
        return "\n".join(lines), False
    lines.append(f"  {'metric':28s} {'A':>13s} {'B':>13s} {'Δ':>8s}")
    for label, key in (
        ("wall_clock", "wall_clock_s"),
    ):
        a = float((ledger_a or {}).get(key) or 0.0)
        b = float((ledger_b or {}).get(key) or 0.0)
        if a or b:
            lines.append(_delta_line(label, a, b))
    for label in ("execute_s", "restore_s", "serialize_s", "snapshot_s"):
        lines.append(
            _delta_line(
                label,
                agg_a["totals"][label],
                agg_b["totals"][label],
            )
        )
    lines.append(
        _delta_line(
            "events",
            float(agg_a["totals"]["events"]),
            float(agg_b["totals"]["events"]),
            unit=" ",
        )
    )
    all_layers = sorted(set(agg_a["layers"]) | set(agg_b["layers"]))
    if all_layers:
        lines.append("self-time by layer:")
        for layer in all_layers:
            lines.append(
                _delta_line(
                    f"layer.{layer}",
                    float(
                        (agg_a["layers"].get(layer) or {}).get("self_s", 0.0)
                    ),
                    float(
                        (agg_b["layers"].get(layer) or {}).get("self_s", 0.0)
                    ),
                )
            )
    all_counters = sorted(set(agg_a["counters"]) | set(agg_b["counters"]))
    if all_counters:
        lines.append("counters:")
        for name in all_counters:
            lines.append(
                _delta_line(
                    name,
                    float(agg_a["counters"].get(name, 0)),
                    float(agg_b["counters"].get(name, 0)),
                    unit=" ",
                )
            )
    imb_a = (agg_a["lp"] or {}).get("imbalance")
    imb_b = (agg_b["lp"] or {}).get("imbalance")
    if imb_a is not None or imb_b is not None:
        lines.append(
            _delta_line(
                "lp.imbalance", imb_a or 0.0, imb_b or 0.0, unit="x"
            )
        )
    return "\n".join(lines), True


# ----------------------------------------------------------------------
# Machine-readable views (--json)
# ----------------------------------------------------------------------


def perf_report_json(cache_dir) -> str:
    """``perf-report --json``: the aggregated ledger as stable JSON.

    Key order is sorted and the per-cell rows are label-sorted (see
    :func:`aggregate_perf`), so tracking the bench trajectory is a
    ``jq``/diff affair instead of scraping the text report.
    """
    cache_dir = Path(cache_dir)
    if not cache_dir.is_dir():
        raise ValueError(f"{cache_dir}: not a directory")
    payload = {
        "kind": "perf-report",
        "source": str(cache_dir),
        "aggregate": aggregate_perf(_store_rows(cache_dir)),
        "ledger": load_ledger(cache_dir),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def perf_compare_json(dir_a, dir_b) -> Tuple[str, bool]:
    """``perf-compare --json``: the A/B deltas as stable JSON.

    Same comparability contract as :func:`perf_compare`: the flag is
    False (CLI exits non-zero) when either side has no perf data.
    """
    dir_a, dir_b = Path(dir_a), Path(dir_b)
    agg_a, ledger_a = _side(dir_a)
    agg_b, ledger_b = _side(dir_b)
    has_a = bool(agg_a["totals"]["cells"] or ledger_a)
    has_b = bool(agg_b["totals"]["cells"] or ledger_b)

    def delta(a: Optional[float], b: Optional[float]) -> dict:
        a = float(a or 0.0)
        b = float(b or 0.0)
        return {
            "a": a,
            "b": b,
            "delta": b - a,
            "relative": (b - a) / a if a else None,
        }

    payload = {
        "kind": "perf-compare",
        "a": str(dir_a),
        "b": str(dir_b),
        "comparable": has_a and has_b,
        "wall_clock_s": delta(
            (ledger_a or {}).get("wall_clock_s"),
            (ledger_b or {}).get("wall_clock_s"),
        ),
        "totals": {
            key: delta(agg_a["totals"][key], agg_b["totals"][key])
            for key in (
                "execute_s",
                "restore_s",
                "serialize_s",
                "snapshot_s",
                "events",
            )
        },
        "layers": {
            layer: delta(
                (agg_a["layers"].get(layer) or {}).get("self_s"),
                (agg_b["layers"].get(layer) or {}).get("self_s"),
            )
            for layer in sorted(set(agg_a["layers"]) | set(agg_b["layers"]))
        },
        "counters": {
            name: delta(
                agg_a["counters"].get(name, 0),
                agg_b["counters"].get(name, 0),
            )
            for name in sorted(
                set(agg_a["counters"]) | set(agg_b["counters"])
            )
        },
        "lp_imbalance": {
            "a": (agg_a["lp"] or {}).get("imbalance"),
            "b": (agg_b["lp"] or {}).get("imbalance"),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True), has_a and has_b
