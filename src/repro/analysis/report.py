"""Structured text reports over campaigns, profiles, and model results."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from ..core.faultload import DAY, MONTH, FaultLoad
from ..core.metric import performability_of
from ..core.model import PerformabilityResult, ProfileSet, evaluate
from ..core.stages import STAGES, SevenStageProfile
from ..faults.spec import FaultKind, category_of
from .charts import bar_chart, sparkline, timeline_plot


def profile_table(profiles: ProfileSet) -> str:
    """Per-fault stage table for one version's campaign measurements."""
    lines = [
        f"{profiles.version} — Tn = {profiles.normal_throughput:.0f} req/s",
        f"{'fault':32s}" + "".join(f"{s.value:>16s}" for s in STAGES),
    ]
    for key in sorted(profiles.keys()):
        p = profiles.get(key)
        cells = []
        for stage in STAGES:
            d = p.duration(stage)
            if d <= 0:
                cells.append(f"{'—':>16s}")
            else:
                cells.append(f"{d:7.1f}s@{p.throughput(stage):6.0f}")
        lines.append(f"{key:32s}" + "".join(cells))
    return "\n".join(lines)


def result_summary(
    result: PerformabilityResult, bands: Optional[Mapping] = None
) -> str:
    """One model evaluation: headline numbers + contribution chart.

    ``bands`` (optional) maps ``"AA"/"AT"/"P"`` to
    :class:`~repro.experiments.performability.MetricBand`; when at least
    two complete replicates back a band, the headline carries ± CI half
    widths.
    """

    def pm(metric: str, fmt: str) -> str:
        band = (bands or {}).get(metric)
        if band is None or band.n < 2:
            return ""
        return f" ±{band.half_width:{fmt}}"

    lines = [
        f"{result.version}: AA = {result.availability:.5f}{pm('AA', '.5f')}"
        f"  (unavailability {result.unavailability * 100:.3f}%)"
        f"  AT = {result.average_throughput:.0f}{pm('AT', '.0f')} req/s"
        f"  P = {performability_of(result):.1f}{pm('P', '.1f')}",
    ]
    banded = [b for b in (bands or {}).values() if b.n >= 2]
    if banded:
        b = banded[0]
        lines.append(
            f"  (±: {b.confidence:.0%} Student-t CI over {b.n} "
            "complete replicate(s))"
        )
    lines.append("unavailability contributions:")
    rows = {
        c.name: c.unavailability * 100
        for c in sorted(result.contributions, key=lambda c: -c.unavailability)
        if c.unavailability > 1e-6
    }
    lines.append(bar_chart(rows, width=30, unit="%"))
    return "\n".join(lines)


def category_breakdown(result: PerformabilityResult) -> Dict[str, float]:
    """Unavailability grouped by Table-2 category (Figure 6(a) grouping)."""
    grouping = {}
    for kind in FaultKind:
        grouping[kind.value] = category_of(kind).value
    # Sensitivity extras keep their labels.
    return result.grouped_unavailability(grouping)


def campaign_report(
    campaign: Mapping[str, ProfileSet],
    loads: Optional[Mapping[str, FaultLoad]] = None,
    replicates: Optional[Mapping[str, Iterable[ProfileSet]]] = None,
) -> str:
    """The full phase-1 + phase-2 story for a set of versions.

    ``replicates`` (optional, from ``CampaignReport.replicates``) maps a
    version to its per-replication ProfileSets; when given, the phase-2
    summaries carry Student-t CI bands on AA, AT, and P.
    """
    if loads is None:
        loads = {
            "app faults 1/day": FaultLoad.table3(app_fault_mttf=DAY),
            "app faults 1/month": FaultLoad.table3(app_fault_mttf=MONTH),
        }
    sections = ["=" * 72, "PHASE 1 — measured seven-stage profiles", "=" * 72]
    for version in campaign:
        sections.append(profile_table(campaign[version]))
        sections.append("")
    sections += ["=" * 72, "PHASE 2 — modeled performability", "=" * 72]
    for label, load in loads.items():
        sections.append(f"--- fault load: {label} ---")
        for version, profiles in campaign.items():
            # A partial campaign evaluates against the loads it measured.
            usable = FaultLoad(
                components=tuple(c for c in load if c.key in profiles)
            )
            skipped = len(load) - len(usable)
            if skipped:
                sections.append(
                    f"(note: {skipped} fault sources without measured"
                    f" profiles were skipped for {version})"
                )
            bands = None
            reps = list((replicates or {}).get(version) or [])
            if reps:
                from ..experiments.performability import banded_evaluation

                bands = banded_evaluation(profiles, reps, usable)
            sections.append(
                result_summary(evaluate(profiles, usable), bands)
            )
            sections.append("")
    return "\n".join(sections)


def repetition_report(report) -> str:
    """Per-stream replication outcome of a ``CampaignReport``.

    One row per (version, fault) stream — reps spent, why the stream
    stopped, and the stream metric's CI at that moment — plus the
    campaign's reps-spent-vs-fixed savings line.
    """
    if not report.repetition:
        return ""
    lines = [
        f"replication ({report.policy} policy):",
        f"  {'stream':42s} {'reps':>4s}  {'reason':16s}"
        f" {'mean':>10s} {'rse':>7s} {'ci±':>9s}",
    ]
    for r in report.repetition:
        rse = "—" if r.rse != r.rse or r.rse == float("inf") else f"{r.rse:.4f}"
        lines.append(
            f"  {r.label:42s} {r.reps:4d}  {r.reason:16s}"
            f" {r.mean:10.4f} {rse:>7s} {r.ci_half_width:9.4f}"
        )
    ceiling = report.reps_ceiling
    line = (
        f"  reps spent: {report.reps_spent} of {ceiling} "
        f"(fixed-{report.reps_ceiling_per_stream} ceiling)"
    )
    if report.policy != "fixed":
        line += f" — {report.reps_saved_fraction * 100:.0f}% saved"
    lines.append(line)
    return "\n".join(lines)


def campaign_timing_report(report) -> str:
    """Where a campaign's wall-clock went (a ``CampaignReport``).

    Shows the executed/cached split, aggregate cell time vs. wall time
    — split into pure simulation (execute) and warm-checkpoint restore
    columns, with a ratio for each: ``speedup`` counts everything the
    cells spent, ``parallelism`` only the simulation work, so a
    campaign whose wall-clock went to unpickling checkpoints cannot
    masquerade as well-parallelized — and per-version / per-fault
    breakdowns of simulation cost.
    """
    total = len(report.cells)
    lines = [
        f"campaign: {total} cells "
        f"({report.executed} executed, {report.cached} from cache)"
        f" on {report.jobs} job{'s' if report.jobs != 1 else ''}",
        f"wall-clock {report.wall_clock:.2f}s,"
        f" execute {report.execute_seconds:.2f}s"
        f" + warm-restore {report.restore_seconds:.2f}s"
        f" ({report.speedup:.2f}x aggregate,"
        f" {report.parallelism:.2f}x execute-only)",
    ]
    by_version = {
        k: v for k, v in report.by_version().items() if v > 0
    }
    if by_version:
        lines.append("simulation seconds by version:")
        lines.append(bar_chart(by_version, width=30, unit="s"))
    by_fault = {k: v for k, v in report.by_fault().items() if v > 0}
    if by_fault:
        lines.append("simulation seconds by fault:")
        lines.append(bar_chart(by_fault, width=30, unit="s"))
    return "\n".join(lines)


def trace_summary_report(report) -> str:
    """Campaign-level run telemetry (a ``CampaignReport``).

    Aggregates the per-cell event counts recorded by the observability
    bus into one campaign-wide table, and surfaces store notices (e.g.
    "cache invalidated (schema v1→v2)") so silent re-runs become
    visible.
    """
    lines = []
    for notice in report.notices:
        lines.append(f"note: {notice}")
    totals = report.event_totals()
    instrumented = sum(1 for c in report.cells if c.telemetry)
    if not totals:
        if instrumented == 0 and report.cells:
            lines.append(
                "no run telemetry recorded (cells served from a"
                " pre-telemetry cache; re-run with --clear-cache to collect)"
            )
        return "\n".join(lines)
    lines.append(
        f"run telemetry: {sum(totals.values())} events across"
        f" {instrumented} cell(s)"
    )
    shown = dict(
        sorted(totals.items(), key=lambda kv: -kv[1])
    )
    lines.append(bar_chart(shown, width=30, unit=""))
    return "\n".join(lines)


def _obs_groups(report):
    """Cells with an observatory summary, grouped by (version, fault)."""
    groups: Dict[tuple, list] = {}
    for c in report.cells:
        if not c.observatory:
            continue
        groups.setdefault((c.version, c.fault or "baseline"), []).append(
            c.observatory
        )
    return groups


_QUANTILE_COLUMNS = ("p50", "p95", "p99", "p999")


def latency_band_report(report, confidence: float = 0.95) -> str:
    """Tail-latency bands per (version, fault) from cell observatories.

    One row per campaign stream: the P² quantile estimates of served
    (``ok``) request latency, averaged across replications, with
    Student-t CI half widths once at least two replications back a
    stream.  Latencies are sim-seconds.  Cells served from a
    pre-observatory cache contribute nothing; the section disappears
    entirely when no cell carries latency sketches.
    """
    from ..experiments.repeaters import ci_half_width

    groups = _obs_groups(report)
    rows = []
    stage_rows = []
    for (version, fault), summaries in sorted(groups.items()):
        overall = [
            s["latency"]["overall"]
            for s in summaries
            if s.get("latency") and s["latency"]["overall"]["count"]
        ]
        if not overall:
            continue
        n = sum(o["count"] for o in overall)
        cells = []
        for q in _QUANTILE_COLUMNS:
            samples = [o[q] for o in overall if o.get(q) is not None]
            if not samples:
                cells.append(f"{'—':>15s}")
                continue
            mean = sum(samples) / len(samples)
            if len(samples) >= 2:
                half = ci_half_width(samples, confidence)
                cells.append(f"{mean:8.4f}±{half:6.4f}")
            else:
                cells.append(f"{mean:8.4f}{'':>7s}")
        rows.append(f"  {version + '/' + fault:38s} {n:>7d}" + "".join(cells))
        # Per-stage tails: the p95 of requests completing in each online
        # stage (A-G), averaged across replications.
        stages: Dict[str, list] = {}
        for s in summaries:
            for stage, sketch in (s.get("latency") or {}).get(
                "by_stage", {}
            ).items():
                if sketch.get("p95") is not None:
                    stages.setdefault(stage, []).append(sketch["p95"])
        if len(stages) > 1:
            parts = " ".join(
                f"{stage}:{sum(v) / len(v):.3f}"
                for stage, v in sorted(stages.items())
            )
            stage_rows.append(f"  {version + '/' + fault:38s} {parts}")
    if not rows:
        return ""
    lines = [
        "tail latency of served requests (sim-seconds; "
        f"± = {confidence:.0%} Student-t CI across replications):",
        f"  {'stream':38s} {'n':>7s}"
        + "".join(f"{q:>15s}" for q in _QUANTILE_COLUMNS),
    ]
    lines += rows
    if stage_rows:
        lines.append("per-stage p95 (stage at completion time):")
        lines += stage_rows
    return "\n".join(lines)


def attribution_report(report) -> str:
    """Per-mechanism availability-cost tables, one per version.

    Sums every cell's :class:`~repro.obs.attribution.AttributionProbe`
    summary over the campaign: how many requests each mechanism lost
    (rejects + timeouts) or slowed past the SLO, and the per-mechanism
    slice of unavailability (``cost`` = lost / all requests).  Empty when
    no cell carries an attribution summary (pre-observatory cache).
    """
    from ..obs.attribution import MECHANISMS

    groups = _obs_groups(report)
    per_version: Dict[str, dict] = {}
    for (version, _fault), summaries in sorted(groups.items()):
        agg = per_version.setdefault(
            version,
            {
                "requests": 0,
                "lost": 0,
                "slow": 0,
                "mech": {m: {"lost": 0, "slow": 0} for m in MECHANISMS},
            },
        )
        for s in summaries:
            att = s.get("attribution")
            if not att:
                continue
            agg["requests"] += att["requests"]
            agg["lost"] += att["total_lost"]
            agg["slow"] += att["total_slow"]
            for mech, row in att["mechanisms"].items():
                dst = agg["mech"].setdefault(mech, {"lost": 0, "slow": 0})
                dst["lost"] += row["lost"]
                dst["slow"] += row["slow"]
    per_version = {v: a for v, a in per_version.items() if a["requests"]}
    if not per_version:
        return ""
    lines = [
        "unavailability attribution "
        "(lost = rejects + timeouts; slow = served above SLO):"
    ]
    for version, agg in per_version.items():
        n = agg["requests"]
        lines.append(
            f"  {version}: {n} requests, {agg['lost']} lost "
            f"({agg['lost'] / n * 100:.3f}% unavailable), "
            f"{agg['slow']} slow"
        )
        lines.append(
            f"    {'mechanism':22s} {'lost':>8s} {'slow':>8s}"
            f" {'charged':>8s} {'cost':>8s}"
        )
        for mech in agg["mech"]:
            row = agg["mech"][mech]
            charged = row["lost"] + row["slow"]
            if not charged:
                continue
            lines.append(
                f"    {mech:22s} {row['lost']:8d} {row['slow']:8d}"
                f" {charged:8d} {row['lost'] / n * 100:7.3f}%"
            )
    return "\n".join(lines)


def timeline_report(record, bucket: float = 10.0) -> str:
    """Render one phase-1 record: plot + annotated instants."""
    tl = record.timeline
    markers = {record.injected_at: "F", record.cleared_at: "R"}
    if record.detection_at is not None:
        markers[record.detection_at] = "D"
    if record.reset_at is not None:
        markers[record.reset_at] = "O"
    lines = [
        f"{record.version} / {record.fault}"
        f"  (Tn = {record.normal_throughput:.0f} req/s)",
        timeline_plot(tl.series, bucket=bucket, markers=markers),
        "F=fault R=component-recovered D=detected O=operator-reset",
        f"availability over the run: {tl.availability:.4f}",
    ]
    return "\n".join(lines)
