"""Self-contained HTML dashboard over a persisted campaign store.

``python -m repro dashboard <cache-dir>`` walks every cached cell and
renders one HTML file an operator can open from a laptop, a CI artifact
tab, or a 2003-era NOC workstation: zero external scripts, stylesheets,
fonts, or network fetches — charts are inline SVG built by
:mod:`repro.analysis.charts`.

Sections:

* **overview** — cell inventory and versions/faults covered;
* **performability** — phase-2 availability / average-throughput /
  performability tables rebuilt from the stored per-cell profiles
  (same merge arithmetic as the campaign runner);
* **fault matrix** — versions × faults availability grid (the TCP-vs-VIA
  comparison at a glance);
* **timelines** — per (version, fault) throughput timelines banded with
  the *online* stage classification from the observatory;
* **divergence** — online detector vs. ground-truth fit, per cell;
* **health** — SLO watchdog episodes and time-in-violation;
* **tail latency** — P² quantile bands (p50/p95/p99/p999) of served
  requests per (version, fault), from the per-cell latency sketches;
* **attribution** — the per-mechanism availability-cost table: which
  mechanism (fail-fast, retransmit stall, reconfiguration window, cache
  warmup, operator reset) each lost or SLO-slow request is charged to;
* **performance** — the wall-clock flight recorder's view of the
  *simulator* (``--profile`` campaigns only): per-layer self-time,
  fastpath hit rate, heap churn, and LP shard balance from the store's
  volatile ``perf/`` namespace and ``BENCH_campaign.json`` ledger.
"""

from __future__ import annotations

from html import escape
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.faultload import DAY, MONTH, FaultLoad
from ..core.metric import performability_of
from ..core.model import ProfileSet, evaluate
from ..core.stages import SevenStageProfile, average_profiles
from .charts import STAGE_COLORS, svg_timeline

_CSS = """
body { font-family: sans-serif; margin: 1.5em auto; max-width: 72em;
       color: #222; }
h1 { border-bottom: 2px solid #1565c0; padding-bottom: 0.2em; }
h2 { margin-top: 1.6em; border-bottom: 1px solid #ccc; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.6em; text-align: right; }
th { background: #eef2f8; }
td.label, th.label { text-align: left; }
.cellnote { color: #666; font-size: 85%; }
.warn { color: #b71c1c; }
.legend span { display: inline-block; padding: 0 0.5em; margin-right: 0.3em;
               border: 1px solid #aaa; }
figure { margin: 0.6em 0 1.4em 0; }
figcaption { font-size: 90%; color: #444; margin-bottom: 0.2em; }
"""

#: Fault loads evaluated in the performability section (same defaults as
#: ``repro.analysis.report.campaign_report``).
_LOADS = (
    ("app faults 1/day", lambda: FaultLoad.table3(app_fault_mttf=DAY)),
    ("app faults 1/month", lambda: FaultLoad.table3(app_fault_mttf=MONTH)),
)


class _Cell:
    """One deduplicated store cell (newest schema generation wins)."""

    def __init__(self, key: dict, payload: dict):
        self.version = str(key.get("version"))
        self.fault: Optional[str] = key.get("fault")
        self.seed = key.get("seed")
        self.schema = int(key.get("schema", 0))
        #: replication index (schema v5 key records; None on older rows)
        self.rep: Optional[int] = key.get("rep")
        self.payload = payload

    @property
    def observatory(self) -> dict:
        return self.payload.get("observatory") or {}

    @property
    def timeline(self) -> dict:
        return self.payload.get("timeline") or {}

    @property
    def divergence(self) -> dict:
        return self.payload.get("divergence") or {}


def _collect(cells: Iterable[Tuple[dict, dict]]) -> Tuple[List[_Cell], int]:
    """Deduplicate raw store rows; returns (cells, stale_skipped)."""
    best: Dict[tuple, _Cell] = {}
    for key, payload in cells:
        cell = _Cell(key, payload)
        ident = (cell.version, cell.fault, cell.seed)
        if ident not in best or cell.schema > best[ident].schema:
            best[ident] = cell
    newest = max((c.schema for c in best.values()), default=0)
    kept = [c for c in best.values() if c.schema == newest]
    stale = len(best) - len(kept)
    kept.sort(key=lambda c: (c.version, c.fault or "", str(c.seed)))
    return kept, stale


def _fmt(x, digits: int = 3) -> str:
    if x is None:
        return "—"
    if isinstance(x, float):
        return f"{x:.{digits}f}"
    return str(x)


def _profile_sets(cells: List[_Cell]) -> Dict[str, ProfileSet]:
    """Rebuild per-version ProfileSets with the runner's merge rules."""
    out: Dict[str, ProfileSet] = {}
    for version in sorted({c.version for c in cells}):
        tns = [
            float(c.payload["tn"])
            for c in cells
            if c.version == version and c.fault is None and "tn" in c.payload
        ]
        per_fault: Dict[str, List[SevenStageProfile]] = {}
        for c in cells:
            if c.version != version or c.fault is None:
                continue
            if "profile" in c.payload:
                per_fault.setdefault(c.fault, []).append(
                    SevenStageProfile.from_dict(c.payload["profile"])
                )
        if not tns or not per_fault:
            continue
        profiles = ProfileSet(version, sum(tns) / len(tns))
        for fault in sorted(per_fault):
            profiles.add(average_profiles(per_fault[fault]))
        out[version] = profiles
    return out


def _replicate_sets(cells: List[_Cell]) -> Dict[str, List[ProfileSet]]:
    """Per-version single-replication ProfileSets (complete reps only).

    Needs schema-v5 key records (which carry the replication index); a
    replication counts only when its baseline and every fault of the
    version are present, so each ProfileSet is a self-consistent
    one-seed view — the CI-band samples.
    """
    out: Dict[str, List[ProfileSet]] = {}
    for version in sorted({c.version for c in cells}):
        vcells = [
            c for c in cells if c.version == version and c.rep is not None
        ]
        faults = sorted({c.fault for c in vcells if c.fault is not None})
        if not faults:
            continue
        by = {(c.fault, c.rep): c for c in vcells}
        sets: List[ProfileSet] = []
        for rep in sorted({c.rep for c in vcells}):
            base = by.get((None, rep))
            rest = [by.get((f, rep)) for f in faults]
            if (
                base is None
                or "tn" not in base.payload
                or any(r is None or "profile" not in r.payload for r in rest)
            ):
                continue
            ps = ProfileSet(version, float(base.payload["tn"]))
            for r in rest:
                ps.add(SevenStageProfile.from_dict(r.payload["profile"]))
            sets.append(ps)
        if sets:
            out[version] = sets
    return out


def _performability_section(cells: List[_Cell]) -> List[str]:
    from ..experiments.performability import banded_evaluation

    sets = _profile_sets(cells)
    if not sets:
        return ["<p class='cellnote'>no complete version in the store "
                "(need a baseline and at least one fault profile)</p>"]
    replicates = _replicate_sets(cells)
    out: List[str] = []
    banded_any = False
    for label, load_of in _LOADS:
        load = load_of()
        out.append(f"<h3>fault load: {escape(label)}</h3>")
        out.append(
            "<table><tr><th class='label'>version</th><th>AA</th>"
            "<th>unavailability %</th><th>AT req/s</th>"
            "<th>performability</th><th>skipped sources</th></tr>"
        )
        for version, profiles in sets.items():
            usable = FaultLoad(
                components=tuple(c for c in load if c.key in profiles)
            )
            skipped = len(load) - len(usable)
            r = evaluate(profiles, usable)
            bands = banded_evaluation(
                profiles, replicates.get(version, []), usable
            )

            def pm(metric: str, fmt: str) -> str:
                band = bands[metric]
                if band.n < 2:
                    return ""
                return f" ±{band.half_width:{fmt}}"

            if any(b.n >= 2 for b in bands.values()):
                banded_any = True
            out.append(
                f"<tr><td class='label'>{escape(version)}</td>"
                f"<td>{r.availability:.5f}{pm('AA', '.5f')}</td>"
                f"<td>{r.unavailability * 100:.3f}</td>"
                f"<td>{r.average_throughput:.0f}{pm('AT', '.0f')}</td>"
                f"<td>{performability_of(r):.1f}{pm('P', '.1f')}</td>"
                f"<td>{skipped}</td></tr>"
            )
        out.append("</table>")
    if banded_any:
        n = max(len(v) for v in replicates.values())
        out.append(
            "<p class='cellnote'>± figures are 95% Student-t CI half "
            f"widths over up to {n} complete replicate(s).</p>"
        )
    return out


def _replication_section(summaries: Iterable[Tuple[dict, dict]]) -> List[str]:
    """Per-stream repetition outcome from the store's summary namespace."""
    rows: List[str] = []
    totals: Dict[tuple, List[int]] = {}
    ordered = sorted(
        summaries,
        key=lambda kp: (
            str(kp[0].get("version")),
            str(kp[0].get("fault") or ""),
        ),
    )
    for key, payload in ordered:
        policy = tuple(key.get("policy") or ())
        rule = str(policy[0]) if policy else "?"
        max_reps = int(policy[2]) if len(policy) > 2 else 0
        reps = int(payload.get("reps", 0))
        t = totals.setdefault(policy, [0, 0])
        t[0] += reps
        t[1] += max_reps
        rows.append(
            f"<tr><td class='label'>{escape(str(key.get('version')))}</td>"
            f"<td class='label'>{escape(key.get('fault') or 'baseline')}</td>"
            f"<td class='label'>{escape(rule)}</td>"
            f"<td>{reps}</td>"
            f"<td class='label'>{escape(str(payload.get('reason', '')))}</td>"
            f"<td>{_fmt(payload.get('mean'), 4)}</td>"
            f"<td>{_fmt(payload.get('ci_half_width'), 4)}</td></tr>"
        )
    if not rows:
        return [
            "<p class='cellnote'>no repetition summaries stored (pre-v5 "
            "store, or the campaign has not been re-run since the "
            "adaptive-replication bump)</p>"
        ]
    out = [
        "<p>how many replications each (version, fault) stream spent, "
        "and why it stopped.</p>",
        "<table><tr><th class='label'>version</th>"
        "<th class='label'>stream</th><th class='label'>policy</th>"
        "<th>reps</th><th class='label'>stopped</th>"
        "<th>mean</th><th>ci ±</th></tr>",
        *rows,
        "</table>",
    ]
    for policy, (spent, ceiling) in sorted(totals.items(), key=str):
        if not ceiling:
            continue
        saved = 100.0 * (1.0 - spent / ceiling)
        max_reps = int(policy[2]) if len(policy) > 2 else 0
        out.append(
            f"<p>policy <b>{escape(str(policy[0]) if policy else '?')}</b>: "
            f"{spent} reps spent vs {ceiling} at fixed-{max_reps} "
            f"({saved:.0f}% saved)</p>"
        )
    return out


def _fault_matrix_section(cells: List[_Cell]) -> List[str]:
    versions = sorted({c.version for c in cells})
    faults = sorted({c.fault for c in cells if c.fault is not None})
    if not faults:
        return ["<p class='cellnote'>no fault cells in the store</p>"]
    by: Dict[tuple, List[_Cell]] = {}
    for c in cells:
        if c.fault is not None:
            by.setdefault((c.version, c.fault), []).append(c)
    out = [
        "<p>run availability (mean over replications), with the online "
        "detector's final stage in parentheses.</p>",
        "<table><tr><th class='label'>fault</th>"
        + "".join(f"<th>{escape(v)}</th>" for v in versions)
        + "</tr>",
    ]
    for fault in faults:
        row = [f"<tr><td class='label'>{escape(fault)}</td>"]
        for version in versions:
            group = by.get((version, fault))
            if not group:
                row.append("<td>—</td>")
                continue
            avails = [
                c.timeline.get("availability")
                for c in group
                if c.timeline.get("availability") is not None
            ]
            finals = {
                (c.observatory.get("stages") or {}).get("final_stage", "?")
                for c in group
            }
            avail = (
                f"{sum(avails) / len(avails):.4f}" if avails else "n/a"
            )
            row.append(
                f"<td>{avail} ({escape('/'.join(sorted(finals)))})</td>"
            )
        row.append("</tr>")
        out.append("".join(row))
    out.append("</table>")
    return out


def _stage_legend() -> str:
    spans = [
        f"<span style='background:{color}'>{escape(stage)}</span>"
        for stage, color in STAGE_COLORS.items()
        if color != "none"
    ]
    return "<p class='legend'>stage bands: " + "".join(spans) + "</p>"


def _timeline_section(cells: List[_Cell]) -> List[str]:
    out = [_stage_legend()]
    seen: set = set()
    for c in cells:
        ident = (c.version, c.fault)
        if ident in seen or not c.timeline.get("series"):
            continue
        seen.add(ident)
        stages = (c.observatory.get("stages") or {}).get("intervals") or []
        boundaries = (c.divergence.get("boundaries") or {})
        markers = {
            label[:3]: entry.get("online")
            for label, entry in boundaries.items()
            if entry.get("online") is not None
        }
        label = f"{c.version} / {c.fault or 'baseline'}"
        svg = svg_timeline(
            c.timeline["series"],
            tn=float(c.timeline.get("tn") or 0.0),
            stages=stages,
            markers=markers,
            bucket_width=float(c.timeline.get("bucket_width") or 1.0),
        )
        out.append(
            f"<figure><figcaption>{escape(label)} — availability "
            f"{_fmt(c.timeline.get('availability'), 4)}</figcaption>"
            f"{svg}</figure>"
        )
    if len(out) == 1:
        out.append(
            "<p class='cellnote'>no timelines stored (cells predate "
            "schema v3; re-run the campaign to collect them)</p>"
        )
    return out


def _divergence_section(cells: List[_Cell]) -> List[str]:
    rows = []
    for c in cells:
        div = c.divergence
        if not div:
            continue
        missing = div.get("online_missing") or []
        extra = div.get("online_extra") or []
        rows.append(
            f"<tr><td class='label'>{escape(c.version)}</td>"
            f"<td class='label'>{escape(c.fault or '')}</td>"
            f"<td>{_fmt(div.get('max_boundary_error'), 2)}</td>"
            f"<td>{_fmt(div.get('misclassified_s'), 1)}</td>"
            f"<td>{_fmt(100 * (div.get('misclassified_frac') or 0.0), 1)}</td>"
            f"<td class='label'>{escape(', '.join(missing)) or '—'}</td>"
            f"<td class='label'>{escape(', '.join(extra)) or '—'}</td></tr>"
        )
    if not rows:
        return ["<p class='cellnote'>no divergence reports stored</p>"]
    return [
        "<p>online stage detector vs. the ground-truth fit, per fault "
        "cell.  Boundary error is the worst absolute disagreement on a "
        "boundary both sides observed (seconds); hindsight-only "
        "boundaries are reported but not observable online.</p>",
        "<table><tr><th class='label'>version</th>"
        "<th class='label'>fault</th><th>max boundary err (s)</th>"
        "<th>misclassified (s)</th><th>misclassified (%)</th>"
        "<th class='label'>missing online</th>"
        "<th class='label'>extra online</th></tr>",
        *rows,
        "</table>",
    ]


def _health_section(cells: List[_Cell]) -> List[str]:
    slo = None
    rows = []
    for c in cells:
        health = c.observatory.get("health")
        if not health:
            continue
        slo = slo or health.get("slo")
        open_flag = any(e.get("open") for e in health.get("episodes", []))
        rows.append(
            f"<tr><td class='label'>{escape(c.version)}</td>"
            f"<td class='label'>{escape(c.fault or 'baseline')}</td>"
            f"<td>{health.get('violations', 0)}</td>"
            f"<td>{_fmt(health.get('time_in_violation'), 1)}</td>"
            f"<td>{_fmt(health.get('min_throughput'), 1)}</td>"
            f"<td>{_fmt(health.get('min_availability'), 3)}</td>"
            f"<td class='label'>{'yes' if open_flag else ''}</td></tr>"
        )
    if not rows:
        return ["<p class='cellnote'>no health telemetry stored</p>"]
    out = []
    if slo:
        out.append(
            "<p>SLO: throughput ≥ "
            f"{_fmt(100 * slo.get('throughput_floor', 0), 0)}% of "
            "calibrated Tn, availability ≥ "
            f"{_fmt(100 * slo.get('availability_floor', 0), 0)}%, over a "
            f"{_fmt(slo.get('window'), 0)}s rolling window "
            f"({_fmt(slo.get('calibration'), 0)}s calibration).</p>"
        )
    out += [
        "<table><tr><th class='label'>version</th>"
        "<th class='label'>fault</th><th>violations</th>"
        "<th>time in violation (s)</th><th>min throughput</th>"
        "<th>min availability</th><th class='label'>open at end</th></tr>",
        *rows,
        "</table>",
    ]
    return out


def _latency_section(cells: List[_Cell]) -> List[str]:
    groups: Dict[tuple, List[dict]] = {}
    for c in cells:
        overall = (c.observatory.get("latency") or {}).get("overall")
        if overall and overall.get("count"):
            groups.setdefault((c.version, c.fault or "baseline"), []).append(
                overall
            )
    if not groups:
        return [
            "<p class='cellnote'>no latency sketches stored (cells "
            "predate schema v6; re-run the campaign to collect them)</p>"
        ]
    out = [
        "<p>streaming P² quantile estimates of served-request latency "
        "(sim-seconds), averaged over replications.  Lost requests "
        "(rejects, timeouts) never enter these sketches — they are "
        "counted in the attribution table below.</p>",
        "<table><tr><th class='label'>version</th>"
        "<th class='label'>fault</th><th>n</th>"
        "<th>p50</th><th>p95</th><th>p99</th><th>p999</th></tr>",
    ]
    for (version, fault), overalls in sorted(groups.items()):
        n = sum(o["count"] for o in overalls)
        quantiles = []
        for q in ("p50", "p95", "p99", "p999"):
            samples = [o[q] for o in overalls if o.get(q) is not None]
            quantiles.append(
                _fmt(sum(samples) / len(samples), 3) if samples else "—"
            )
        out.append(
            f"<tr><td class='label'>{escape(version)}</td>"
            f"<td class='label'>{escape(fault)}</td><td>{n}</td>"
            + "".join(f"<td>{v}</td>" for v in quantiles)
            + "</tr>"
        )
    out.append("</table>")
    return out


def _attribution_section(cells: List[_Cell]) -> List[str]:
    from ..obs.attribution import MECHANISMS

    per_version: Dict[str, dict] = {}
    for c in cells:
        att = c.observatory.get("attribution")
        if not att or not att.get("requests"):
            continue
        agg = per_version.setdefault(
            c.version,
            {
                "requests": 0,
                "lost": 0,
                "slow": 0,
                "mech": {m: {"lost": 0, "slow": 0} for m in MECHANISMS},
            },
        )
        agg["requests"] += att["requests"]
        agg["lost"] += att["total_lost"]
        agg["slow"] += att["total_slow"]
        for mech, row in att["mechanisms"].items():
            dst = agg["mech"].setdefault(mech, {"lost": 0, "slow": 0})
            dst["lost"] += row["lost"]
            dst["slow"] += row["slow"]
    if not per_version:
        return [
            "<p class='cellnote'>no attribution summaries stored (cells "
            "predate schema v6; re-run the campaign to collect them)</p>"
        ]
    out = [
        "<p>every lost request (reject or timeout) and every served "
        "request slower than the SLO, charged to the mechanism that "
        "plausibly caused it.  <b>cost</b> is the mechanism's slice of "
        "unavailability (lost / all requests), summed over every cell "
        "of the version.</p>"
    ]
    for version, agg in sorted(per_version.items()):
        n = agg["requests"]
        out.append(
            f"<h3>{escape(version)} — {n} requests, {agg['lost']} lost "
            f"({100.0 * agg['lost'] / n:.3f}% unavailable), "
            f"{agg['slow']} slow</h3>"
        )
        out.append(
            "<table><tr><th class='label'>mechanism</th><th>lost</th>"
            "<th>slow</th><th>charged</th><th>cost %</th></tr>"
        )
        for mech in agg["mech"]:
            row = agg["mech"][mech]
            charged = row["lost"] + row["slow"]
            if not charged:
                continue
            out.append(
                f"<tr><td class='label'>{escape(mech)}</td>"
                f"<td>{row['lost']}</td><td>{row['slow']}</td>"
                f"<td>{charged}</td>"
                f"<td>{100.0 * row['lost'] / n:.3f}</td></tr>"
            )
        out.append("</table>")
    return out


def _performance_section(
    perf: Iterable[Tuple[dict, dict]], ledger: Optional[dict]
) -> List[str]:
    """Flight-recorder rollup (``--profile`` campaigns only)."""
    from .perf import aggregate_perf

    rows = []
    for key, record in perf:
        if not isinstance(record, dict):
            continue
        merged = dict(record)
        for field in ("version", "fault", "rep", "seed"):
            merged.setdefault(field, (key or {}).get(field))
        rows.append(merged)
    if not rows and not ledger:
        return [
            "<p class='cellnote'>no flight-recorder data stored (run the "
            "campaign with --profile to collect wall-clock profiles)</p>"
        ]
    agg = aggregate_perf(rows)
    out: List[str] = []
    if ledger:
        timing = ledger.get("timing") or {}
        out.append(
            f"<p>wall-clock {_fmt(ledger.get('wall_clock_s'), 2)}s on "
            f"{ledger.get('jobs', '?')} job(s): execute "
            f"{_fmt(timing.get('execute_s'), 2)}s, warm-restore "
            f"{_fmt(timing.get('restore_s'), 2)}s "
            f"(speedup {_fmt(timing.get('speedup'), 2)}x, parallelism "
            f"{_fmt(timing.get('parallelism'), 2)}x).</p>"
        )
    totals = agg["totals"]
    if not rows and ledger:
        profile = ledger.get("profile") or {}
        agg = {
            "totals": dict(
                totals,
                events=int(profile.get("events") or 0),
                self_s=float(profile.get("self_s") or 0.0),
            ),
            "layers": profile.get("layers") or {},
            "counters": profile.get("counters") or {},
            "engine": profile.get("engine") or {},
            "lp": profile.get("lp"),
            "cells": ledger.get("top_cells") or [],
        }
        totals = agg["totals"]
    if agg["layers"]:
        total_s = float(totals.get("self_s") or 0.0)
        out.append(
            "<table><tr><th class='label'>layer</th><th>events</th>"
            "<th>self-time (s)</th><th>share %</th></tr>"
        )
        ordered = sorted(
            agg["layers"].items(),
            key=lambda kv: (-float(kv[1].get("self_s") or 0.0), kv[0]),
        )
        for layer, stats in ordered:
            self_s = float(stats.get("self_s") or 0.0)
            share = f"{100.0 * self_s / total_s:.1f}" if total_s else "—"
            out.append(
                f"<tr><td class='label'>{escape(layer)}</td>"
                f"<td>{int(stats.get('events') or 0)}</td>"
                f"<td>{self_s:.4f}</td><td>{share}</td></tr>"
            )
        out.append("</table>")
    counters = agg["counters"]
    fast = counters.get("fabric.fast_cached", 0) + counters.get(
        "fabric.fast_checked", 0
    )
    slow = counters.get("fabric.slow", 0)
    if fast or slow:
        rate = f"{100.0 * fast / (fast + slow):.1f}%" if fast + slow else "—"
        out.append(
            f"<p>fabric fastpath: {fast} fast sends, {slow} slow "
            f"(hit rate {rate}); "
            f"{counters.get('fabric.fast_train', 0)} train frames.</p>"
        )
    eng = agg["engine"]
    if eng and any(eng.values()):
        out.append(
            f"<p>engine: {eng.get('events_processed', 0)} events "
            f"processed, {eng.get('timer_allocs', 0)} timer allocations, "
            f"{eng.get('freelist_reuse', 0)} freelist reuses, "
            f"{eng.get('compactions', 0)} heap compaction(s).</p>"
        )
    lp = agg["lp"]
    if lp and lp.get("shards"):
        events = lp.get("lp_events") or []
        per = ", ".join(f"lp{i}: {n}" for i, n in enumerate(events))
        # Zero-event/zero-time LPs make the ratio undefined: render
        # "n/a", never a division error or an inf.
        imb = lp.get("imbalance")
        imb_txt = f"{imb:.2f}x ideal" if imb is not None else "n/a"
        out.append(
            f"<p>LP shards: {lp['shards']} — load imbalance "
            f"{imb_txt} "
            f"({escape(per)}); {lp.get('nulls_sent', 0)} null messages "
            f"sent, {lp.get('nulls_received', 0)} received, "
            f"merge-loop idle {_fmt(lp.get('merge_idle_s'), 4)}s.</p>"
        )
        worker_exec = lp.get("worker_exec_s") or []
        if any(worker_exec):
            wimb = lp.get("worker_imbalance")
            wimb_txt = f"{wimb:.2f}x ideal" if wimb is not None else "n/a"
            idle = lp.get("worker_idle_s") or []
            blocked = lp.get("worker_blocked_s") or []
            out.append(
                f"<p>LP workers ({escape(str(lp.get('backend') or '?'))}): "
                f"load imbalance {wimb_txt} over real per-worker wall "
                "clocks.</p>"
            )
            out.append(
                "<table><tr><th class='label'>worker</th><th>exec (s)</th>"
                "<th>idle (s)</th><th>blocked-on-null (s)</th></tr>"
            )
            for i, ex in enumerate(worker_exec):
                idl = idle[i] if i < len(idle) else 0.0
                blk = blocked[i] if i < len(blocked) else 0.0
                out.append(
                    f"<tr><td class='label'>lp{i}</td>"
                    f"<td>{_fmt(ex, 4)}</td><td>{_fmt(idl, 4)}</td>"
                    f"<td>{_fmt(blk, 4)}</td></tr>"
                )
            out.append("</table>")
    if agg["cells"]:
        out.append(
            "<table><tr><th class='label'>cell</th><th>execute (s)</th>"
            "<th>restore (s)</th><th>serialize (s)</th>"
            "<th>snapshot (s)</th><th>events</th></tr>"
        )
        # The aggregate keeps cells label-sorted (byte-stable ledgers);
        # the panel shows the expensive ones first.
        by_cost = sorted(
            agg["cells"],
            key=lambda c: (-float(c.get("execute_s") or 0.0),
                           str(c.get("cell"))),
        )
        for c in by_cost[:15]:
            out.append(
                f"<tr><td class='label'>{escape(str(c.get('cell')))}</td>"
                f"<td>{_fmt(c.get('execute_s'), 3)}</td>"
                f"<td>{_fmt(c.get('restore_s'), 3)}</td>"
                f"<td>{_fmt(c.get('serialize_s'), 3)}</td>"
                f"<td>{_fmt(c.get('snapshot_s'), 3)}</td>"
                f"<td>{int(c.get('events') or 0)}</td></tr>"
            )
        out.append("</table>")
    if not out:
        out.append(
            "<p class='cellnote'>flight-recorder records are present but "
            "empty (stale perf schema?)</p>"
        )
    return out


def render_dashboard(
    cells: Iterable[Tuple[dict, dict]],
    title: str = "PRESS performability campaign",
    source: str = "",
    summaries: Iterable[Tuple[dict, dict]] = (),
    perf: Iterable[Tuple[dict, dict]] = (),
    ledger: Optional[dict] = None,
) -> str:
    """Render the raw ``(key, payload)`` rows into one HTML document."""
    kept, stale = _collect(cells)
    versions = sorted({c.version for c in kept})
    faults = sorted({c.fault for c in kept if c.fault is not None})
    baselines = sum(1 for c in kept if c.fault is None)
    sub_errors = sum(
        (c.payload.get("telemetry") or {}).get("subscriber_errors", 0)
        for c in kept
    )
    body: List[str] = [
        f"<h1>{escape(title)}</h1>",
        "<h2>overview</h2>",
        "<table>"
        f"<tr><th class='label'>store</th><td class='label'>{escape(source)}</td></tr>"
        f"<tr><th class='label'>cells</th><td class='label'>{len(kept)} "
        f"({baselines} baselines, {len(kept) - baselines} fault runs)</td></tr>"
        f"<tr><th class='label'>versions</th>"
        f"<td class='label'>{escape(', '.join(versions)) or '—'}</td></tr>"
        f"<tr><th class='label'>faults</th>"
        f"<td class='label'>{escape(', '.join(faults)) or '—'}</td></tr>"
        "</table>",
    ]
    if stale:
        body.append(
            f"<p class='warn'>{stale} cell(s) from older store schema "
            "generations were ignored.</p>"
        )
    if sub_errors:
        body.append(
            f"<p class='warn'>warning: {sub_errors} bus subscriber "
            "error(s) recorded — observers saw a partial event "
            "stream.</p>"
        )
    body += ["<h2>performability</h2>", *_performability_section(kept)]
    body += ["<h2>replication</h2>", *_replication_section(summaries)]
    body += ["<h2>fault matrix</h2>", *_fault_matrix_section(kept)]
    body += ["<h2>timelines</h2>", *_timeline_section(kept)]
    body += ["<h2>detector divergence</h2>", *_divergence_section(kept)]
    body += ["<h2>run health</h2>", *_health_section(kept)]
    body += ["<h2>tail latency</h2>", *_latency_section(kept)]
    body += [
        "<h2>unavailability attribution</h2>",
        *_attribution_section(kept),
    ]
    body += [
        "<h2>performance (flight recorder)</h2>",
        *_performance_section(perf, ledger),
    ]
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{escape(title)}</title><style>{_CSS}</style></head>"
        "<body>" + "".join(body) + "</body></html>"
    )


def dashboard_from_store(cache_dir, out_path=None) -> Path:
    """Render ``cache_dir`` (a campaign DiskStore) to one HTML file.

    Returns the path written (default: ``dashboard.html`` inside the
    store directory).  Raises :class:`ValueError` when the directory
    holds no readable cells.
    """
    from ..experiments.store import DiskStore
    from .perf import load_ledger

    cache_dir = Path(cache_dir)
    if not cache_dir.is_dir():
        raise ValueError(f"{cache_dir}: not a directory")
    store = DiskStore(cache_dir)
    rows = list(store.iter_cells())
    if not rows:
        raise ValueError(f"{cache_dir}: no campaign cells found")
    html_text = render_dashboard(
        rows,
        source=str(cache_dir),
        summaries=list(store.iter_summaries()),
        perf=list(store.iter_perf()),
        ledger=load_ledger(cache_dir),
    )
    out = Path(out_path) if out_path else cache_dir / "dashboard.html"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(html_text, encoding="utf-8")
    return out
