"""Reporting and export utilities over campaign/model outputs."""

from .charts import bar_chart, sparkline, timeline_plot
from .export import (
    profiles_to_csv,
    result_to_dict,
    results_to_json,
    timeline_to_csv,
    timeline_to_dict,
)
from .report import (
    campaign_report,
    campaign_timing_report,
    category_breakdown,
    profile_table,
    result_summary,
    timeline_report,
)

__all__ = [
    "sparkline",
    "bar_chart",
    "timeline_plot",
    "profile_table",
    "result_summary",
    "campaign_report",
    "campaign_timing_report",
    "category_breakdown",
    "timeline_report",
    "timeline_to_csv",
    "profiles_to_csv",
    "results_to_json",
    "result_to_dict",
    "timeline_to_dict",
]
