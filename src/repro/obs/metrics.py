"""A metrics registry: counters, gauges, histograms keyed by name+labels.

Metric names follow ``layer.component.metric`` (see OBSERVABILITY.md);
labels carry the dimension that varies per instance (``node=``,
``peer=``, ``link=``).  Components keep exposing the plain integer
attributes they always had — those attributes are now read-only
properties backed by registry :class:`Counter` objects, so one registry
``summary()`` captures the whole run.

Instruments are plain mutable objects with an ``inc``/``set``/``observe``
hot path of one attribute update; no locks (the engine is single
threaded) and no engine interaction (metrics can never perturb a run).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render(name: str, key: LabelKey) -> str:
    if not key:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str = "", **labels: str) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __index__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({_render(self.name, _label_key(self.labels))}={self.value})"


class Gauge:
    """A value that goes up and down (queue depth, members, cache bytes)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str = "", **labels: str) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n


#: Default latency bucket upper bounds, in seconds.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class Histogram:
    """A fixed-bucket histogram with count/sum/min/max.

    ``bounds`` are inclusive upper bucket edges; observations above the
    last bound land in the implicit overflow bucket.
    """

    __slots__ = ("name", "labels", "bounds", "buckets", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str = "",
        bounds: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Get-or-create home for every instrument in one run."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, **labels)
        return c

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, **labels)
        return g

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS, **labels: str
    ) -> Histogram:
        key = (name, _label_key(labels))
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name, bounds, **labels)
        return h

    def summary(self, include_zero: bool = False) -> dict:
        """JSON-safe snapshot: ``name{label=value,...}`` -> reading.

        Zero-valued counters are omitted by default so per-cell telemetry
        stays compact; pass ``include_zero=True`` for the full inventory.
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, key), c in sorted(self._counters.items()):
            if c.value or include_zero:
                out["counters"][_render(name, key)] = c.value
        for (name, key), g in sorted(self._gauges.items()):
            if g.value or include_zero:
                out["gauges"][_render(name, key)] = g.value
        for (name, key), h in sorted(self._histograms.items()):
            if h.count or include_zero:
                out["histograms"][_render(name, key)] = h.to_dict()
        return out

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


def bound_counter(engine, name: str, **labels: str) -> Counter:
    """A counter registered on ``engine.metrics`` when one is attached.

    Components call this at construction time: with a registry attached
    the counter shows up in ``summary()``; without one they get a free
    standing :class:`Counter` with the identical interface, so the
    component code is the same either way.
    """
    registry = getattr(engine, "metrics", None)
    if registry is not None:
        return registry.counter(name, **labels)
    return Counter(name, **labels)
