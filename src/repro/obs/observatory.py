"""Online performability observation: stage detection + health SLOs.

The paper fits the seven-stage model *post hoc* from ground-truth
annotations the real testbed never had.  This module closes the loop the
way an operator watching a Mendosus dashboard would: it subscribes to
the event bus and classifies the run into stages A–G **live**, from
operator-observable signals only —

* ``sim.monitor.bucket`` — the throughput/availability stream,
* ``fault.injector.*`` — Mendosus is operator-driven, so injection and
  component-repair instants are known to the operator,
* ``press.membership.exclude`` — the service reconfigured (published at
  the same instant as the ground-truth "reconfigured" annotation),
* ``osim.process.exit``/``osim.process.restart`` — the restart daemon's
  view of fail-fast deaths and restarts,
* the "operator-reset" annotation — the operator's own action.

The :class:`StageDetector` publishes ``obs.stage.transition`` events as
it reclassifies; the :class:`HealthWatchdog` tracks rolling throughput
and availability against a :class:`SLOConfig` and publishes
``obs.health.degraded``/``obs.health.restored``.  Both are strictly
passive: they never schedule engine events, touch RNG streams, or
mutate component state (publishing from inside a subscriber is just a
nested synchronous call), so attaching an :class:`Observatory` cannot
change a run's results — guarded by the determinism tests.

How the boundaries line up with :func:`repro.core.extract.extract_profile`:

=========  =====================================  =========================
boundary   online signal                          ground-truth fit
=========  =====================================  =========================
A start    ``fault.injector.injected``            "fault-injected" mark
B start    first ``press.membership.exclude`` or  min("reconfigured",
           fail-fast ``osim.process.exit``        "fail-fast") mark
C start    B start + transient window             same formula
D start    last ``fault.injector.cleared`` /      max("fault-cleared",
           ``osim.process.restart``               "process-restarted")
D end      trailing window sustains the           ``recovery_transient_end``
           recovery threshold (plus rejoin
           warm-up), judged on closed buckets
E start    sub-normal plateau stabilises          hindsight (reset horizon)
F start    "operator-reset" mark                  same mark
G / end    F start + transient windows            same formula
=========  =====================================  =========================

Event-driven boundaries (detection, repair, reset) are therefore exact;
window-driven ones land within about one monitor bucket of the fit.
``repro.core.divergence`` quantifies the residual disagreement per run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from ..core.extract import DEFAULT_ENVIRONMENT, Environment
from .attribution import (
    DEFAULT_ATTRIBUTION,
    AttributionConfig,
    AttributionProbe,
    LatencyProbe,
)
from .events import (
    ANNOTATION,
    FAULT_CLEARED,
    FAULT_INJECTED,
    MEMBERSHIP_EXCLUDE,
    MEMBERSHIP_JOINED,
    MONITOR_BUCKET,
    OBS_HEALTH_DEGRADED,
    OBS_HEALTH_RESTORED,
    OBS_STAGE_TRANSITION,
    PROCESS_EXIT,
    PROCESS_RESTART,
)

#: Stage labels the detector emits ("normal" plus the paper's A–G).
NORMAL = "normal"


@dataclass(frozen=True)
class StageTransition:
    """One online reclassification: the run entered ``stage`` at ``time``."""

    time: float  # the boundary's logical sim time
    stage: str
    prev: str
    trigger: str  # the signal that caused it (event name or window rule)

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "stage": self.stage,
            "prev": self.prev,
            "trigger": self.trigger,
        }


class StageDetector:
    """Classifies a run into stages A–G live, from observable signals.

    Subscribe via :meth:`attach`; read :attr:`transitions` (or the
    ``obs.stage.transition`` events it publishes) as the run advances,
    and :meth:`summary`/:meth:`intervals` after :meth:`finalize`.
    """

    SUBSCRIBES = (
        MONITOR_BUCKET,
        FAULT_INJECTED,
        FAULT_CLEARED,
        MEMBERSHIP_EXCLUDE,
        MEMBERSHIP_JOINED,
        PROCESS_EXIT,
        PROCESS_RESTART,
        ANNOTATION,
    )

    def __init__(self, env: Environment = DEFAULT_ENVIRONMENT):
        self.env = env
        self.bus = None
        self.stage = NORMAL
        self.transitions: List[StageTransition] = []
        #: rolling normal-throughput estimate (monitor units), frozen at
        #: injection — the operator's notion of "what normal looks like"
        self.tn_estimate = 0.0
        self.injected_at: Optional[float] = None
        self.detected_at: Optional[float] = None
        self.repaired_at: Optional[float] = None
        self.reset_at: Optional[float] = None
        self.rejoined_at: Optional[float] = None
        self.impact_observed = False
        self.bucket_width = 1.0
        self._rates: Deque[Tuple[float, float]] = deque()
        self._g_start: Optional[float] = None
        self._end: Optional[float] = None

    # -- wiring --------------------------------------------------------
    def attach(self, bus) -> "StageDetector":
        self.bus = bus
        bus.subscribe(self._on_event, names=list(self.SUBSCRIBES))
        return self

    def _transition(self, time: float, stage: str, trigger: str) -> None:
        prev = self.stage
        self.stage = stage
        self.transitions.append(StageTransition(time, stage, prev, trigger))
        if self.bus is not None:
            self.bus.publish(
                OBS_STAGE_TRANSITION,
                stage=stage,
                prev=prev,
                at=time,
                trigger=trigger,
            )

    # -- event handling ------------------------------------------------
    def _on_event(self, event) -> None:
        self._advance(event.time)
        name = event.name
        if name == MONITOR_BUCKET:
            self._on_bucket(
                event.fields["start"],
                event.fields["ok"],
                event.fields.get("failed", 0),
                event.fields["width"],
            )
        elif name == FAULT_INJECTED:
            self._on_injected(event.time)
        elif name in (FAULT_CLEARED, PROCESS_RESTART):
            self._on_repair(event.time, name)
        elif name == MEMBERSHIP_EXCLUDE:
            self._on_detection(event.time, name)
        elif name == PROCESS_EXIT:
            # A fail-fast death is a detection signal in its own right; a
            # death of any kind *after* a supposed repair means the
            # component is down again (bad-param faults clear the instant
            # the interposer fires, before the fail-fast they provoke).
            if self.stage == "D" or str(
                event.fields.get("reason", "")
            ).startswith("fail-fast"):
                self._on_detection(event.time, name)
        elif name == MEMBERSHIP_JOINED:
            if self.stage in ("B", "C", "D"):
                self.rejoined_at = event.time
        elif name == ANNOTATION:
            if event.fields.get("label") == "operator-reset":
                self._on_reset(event.time)

    def _advance(self, now: float) -> None:
        """Emit window-driven boundaries whose logical time has passed."""
        W = self.env.transient_window
        if self.stage == "B" and now >= self.transitions[-1].time + W:
            self._transition(
                self.transitions[-1].time + W, "C", "transient-window"
            )
        if self.stage == "F" and now >= self.reset_at + W:
            self._g_start = self.reset_at + W
            self._transition(self._g_start, "G", "transient-window")
        if self.stage == "G" and now >= self._g_start + W:
            self._transition(self._g_start + W, NORMAL, "transient-window")

    def _on_injected(self, time: float) -> None:
        # A later fault (sequential validation roster) restarts the
        # classification; the rolling estimate freezes as "Tn".
        self.injected_at = time
        self.detected_at = None
        self.repaired_at = None
        self.reset_at = None
        self.rejoined_at = None
        self.impact_observed = False
        self._transition(time, "A", FAULT_INJECTED)

    def _on_detection(self, time: float, trigger: str) -> None:
        if self.stage == "A":
            self.detected_at = time
            self._transition(time, "B", trigger)
        elif self.stage == "D" and time > self.repaired_at:
            # The service reconfigured (or a process died) *after* the
            # supposed repair: the degradation continues — back to B
            # until the next repair signal.
            if self.detected_at is None:
                self.detected_at = time
            self._transition(time, "B", trigger)

    def _on_repair(self, time: float, trigger: str) -> None:
        if self.injected_at is None or time <= self.injected_at:
            return
        if self.stage in ("A", "B", "C"):
            self.repaired_at = time
            self._rates.clear()  # recovery is judged on post-repair buckets
            self._transition(time, "D", trigger)
        elif self.stage == "D" and time > self.repaired_at:
            # A later repair signal (e.g. the process restart that
            # follows a reboot) restarts the post-recovery transient.
            self.repaired_at = time
            self._rates.clear()
            self._transition(time, "D", trigger)

    def _on_reset(self, time: float) -> None:
        if self.stage in ("A", "B", "C", "D", "E"):
            self.reset_at = time
            self._transition(time, "F", "operator-reset")

    # -- the throughput stream -----------------------------------------
    def _on_bucket(
        self, start: float, ok: float, failed: float, width: float
    ) -> None:
        self.bucket_width = width
        end = start + width
        rate = ok / width
        self._rates.append((start, rate))
        keep_from = end - max(self.env.steady_window, self.env.transient_window)
        while self._rates and self._rates[0][0] < keep_from:
            self._rates.popleft()

        if self.stage == NORMAL:
            if self._rates:
                self.tn_estimate = sum(r for _, r in self._rates) / len(
                    self._rates
                )
            return
        tn = self.tn_estimate
        if tn <= 0:
            return
        if rate < (1.0 - self.env.impact_threshold) * tn:
            self.impact_observed = True
        if self.stage in ("D", "E"):
            self._judge_recovery(end, width, tn)

    def _window_mean(self, lo: float, hi: float) -> Optional[float]:
        """Mean rate over [lo, hi) if every bucket is present, else None."""
        picked = [r for t, r in self._rates if lo <= t < hi]
        need = round((hi - lo) / self.bucket_width)
        if need <= 0 or len(picked) < need:
            return None
        return sum(picked) / len(picked)

    def _judge_recovery(self, end: float, width: float, tn: float) -> None:
        W = self.env.transient_window
        recent = self._window_mean(end - W, end)
        if (
            recent is not None
            and recent >= self.env.recovery_threshold * tn
            and end - W >= self.repaired_at - width
            and (self.rejoined_at is None or end >= self.rejoined_at + W)
        ):
            # Also escapes a previously-declared sub-normal plateau (E):
            # the operator re-ups the run once the SLO-grade level holds.
            self._transition(end, NORMAL, "sustained-recovery")
            return
        # Stable sub-normal plateau -> stage E.  A ramp (halves of the
        # steady window disagree) keeps the run in D: slow recoveries
        # such as TCP's retransmission-backoff lag are still transients.
        if self.stage != "D":
            return
        S = self.env.steady_window
        if end - S < self.repaired_at:
            return
        first = self._window_mean(end - S, end - S / 2)
        second = self._window_mean(end - S / 2, end)
        if first is None or second is None:
            return
        mean = (first + second) / 2
        if (
            mean < self.env.recovery_threshold * tn
            and abs(first - second) <= self.env.impact_threshold * tn
        ):
            self._transition(end, "E", "stable-subnormal")

    # -- results -------------------------------------------------------
    def finalize(self, end: float) -> None:
        """Flush pending window boundaries and close the run at ``end``."""
        self._advance(end)
        self._end = end

    def intervals(self, end: Optional[float] = None) -> List[list]:
        """``[stage, start, end]`` spans covering the observed run."""
        if end is None:
            end = self._end
        if end is None:
            end = self.transitions[-1].time if self.transitions else 0.0
        out: List[list] = []
        current, since = NORMAL, 0.0
        for tr in self.transitions:
            if tr.stage == current:
                continue  # a re-triggered stage extends its interval
            if tr.time > since:
                out.append([current, since, min(tr.time, end)])
            current, since = tr.stage, tr.time
        if end > since:
            out.append([current, since, end])
        return out

    def summary(self) -> dict:
        """JSON-ready digest for per-cell telemetry and the dashboard."""
        return {
            "transitions": [t.to_dict() for t in self.transitions],
            "intervals": self.intervals(),
            "final_stage": self.stage,
            "tn_estimate": self.tn_estimate,
            "injected_at": self.injected_at,
            "detected_at": self.detected_at,
            "repaired_at": self.repaired_at,
            "reset_at": self.reset_at,
            "rejoined_at": self.rejoined_at,
            "impact_observed": self.impact_observed,
        }

    # -- snapshot support (see repro.sim.snapshot) ---------------------
    def snapshot_state(self) -> dict:
        """Deterministic-state digest input (see Snapshottable).

        Covers everything the classifier carries across a checkpoint
        boundary — including the rolling rate window, which keeps
        accumulating through the SLO calibration phase, so a warm
        boundary landing mid-calibration still digests identically to
        the cold run at the same instant.
        """
        return {
            "stage": self.stage,
            "transitions": [t.to_dict() for t in self.transitions],
            "tn_estimate": self.tn_estimate,
            "injected_at": self.injected_at,
            "detected_at": self.detected_at,
            "repaired_at": self.repaired_at,
            "reset_at": self.reset_at,
            "rejoined_at": self.rejoined_at,
            "impact_observed": self.impact_observed,
            "bucket_width": self.bucket_width,
            "rates": list(self._rates),
            "g_start": self._g_start,
            "end": self._end,
        }


@dataclass(frozen=True)
class SLOConfig:
    """What "healthy" means for the watchdog."""

    #: rolling throughput must stay above this fraction of calibrated Tn
    throughput_floor: float = 0.8
    #: rolling success fraction must stay above this
    availability_floor: float = 0.95
    #: rolling evaluation window (seconds)
    window: float = 10.0
    #: how much leading traffic calibrates the Tn reference (seconds)
    calibration: float = 20.0

    def to_dict(self) -> dict:
        return {
            "throughput_floor": self.throughput_floor,
            "availability_floor": self.availability_floor,
            "window": self.window,
            "calibration": self.calibration,
        }


DEFAULT_SLO = SLOConfig()


class HealthWatchdog:
    """Tracks rolling throughput/availability against an SLO.

    Consumes only the ``sim.monitor.bucket`` stream; publishes
    ``obs.health.degraded`` when the SLO is first violated and
    ``obs.health.restored`` when it holds again, and accumulates
    time-in-violation episodes for the run summary.
    """

    def __init__(self, slo: SLOConfig = DEFAULT_SLO):
        self.slo = slo
        self.bus = None
        self.tn: Optional[float] = None  # calibrated reference throughput
        self.episodes: List[dict] = []
        self._window: Deque[Tuple[float, float, float]] = deque()
        self._calibrating: List[Tuple[float, float]] = []
        self._violating_since: Optional[float] = None
        self._violation_reason = ""
        self.min_throughput: Optional[float] = None
        self.min_availability: Optional[float] = None

    def attach(self, bus) -> "HealthWatchdog":
        self.bus = bus
        bus.subscribe(self._on_event, names=[MONITOR_BUCKET])
        return self

    def _on_event(self, event) -> None:
        f = event.fields
        self._on_bucket(f["start"], f["ok"], f.get("failed", 0), f["width"])

    def _on_bucket(
        self, start: float, ok: float, failed: float, width: float
    ) -> None:
        end = start + width
        if self.tn is None:
            self._calibrating.append((ok / width, width))
            if sum(w for _, w in self._calibrating) >= self.slo.calibration:
                total = sum(w for _, w in self._calibrating)
                self.tn = sum(r * w for r, w in self._calibrating) / total
                self._calibrating = []
            return
        self._window.append((start, ok, failed))
        while self._window and self._window[0][0] < end - self.slo.window:
            self._window.popleft()
        span = sum(1 for _ in self._window) * width
        ok_total = sum(o for _, o, _ in self._window)
        failed_total = sum(x for _, _, x in self._window)
        throughput = ok_total / span if span > 0 else 0.0
        attempts = ok_total + failed_total
        availability = ok_total / attempts if attempts > 0 else 0.0
        if self.min_throughput is None or throughput < self.min_throughput:
            self.min_throughput = throughput
        if self.min_availability is None or availability < self.min_availability:
            self.min_availability = availability

        reasons = []
        if throughput < self.slo.throughput_floor * self.tn:
            reasons.append("throughput")
        if availability < self.slo.availability_floor:
            reasons.append("availability")
        if reasons and self._violating_since is None:
            self._violating_since = end
            self._violation_reason = "+".join(reasons)
            if self.bus is not None:
                self.bus.publish(
                    OBS_HEALTH_DEGRADED,
                    reason=self._violation_reason,
                    throughput=throughput,
                    availability=availability,
                    floor=self.slo.throughput_floor * self.tn,
                )
        elif not reasons and self._violating_since is not None:
            self._close_episode(end, open=False)
            if self.bus is not None:
                self.bus.publish(
                    OBS_HEALTH_RESTORED,
                    violated_for=self.episodes[-1]["duration"],
                )

    def _close_episode(self, end: float, open: bool) -> None:
        since = self._violating_since
        self.episodes.append(
            {
                "start": since,
                "end": end,
                "duration": end - since,
                "reason": self._violation_reason,
                "open": open,
            }
        )
        self._violating_since = None
        self._violation_reason = ""

    def finalize(self, end: float) -> None:
        if self._violating_since is not None:
            self._close_episode(end, open=True)

    @property
    def time_in_violation(self) -> float:
        return sum(e["duration"] for e in self.episodes)

    def summary(self) -> dict:
        return {
            "slo": self.slo.to_dict(),
            "tn_reference": self.tn,
            "episodes": list(self.episodes),
            "violations": len(self.episodes),
            "time_in_violation": self.time_in_violation,
            "min_throughput": self.min_throughput,
            "min_availability": self.min_availability,
        }

    # -- snapshot support (see repro.sim.snapshot) ---------------------
    def snapshot_state(self) -> dict:
        """Deterministic-state digest input (see Snapshottable).

        ``_calibrating`` is the part that matters for warm-start
        correctness: a checkpoint taken before the 20s SLO calibration
        has elapsed must carry the partial calibration buckets, or the
        restored watchdog would re-derive a different Tn reference than
        the cold run.
        """
        return {
            "slo": self.slo.to_dict(),
            "tn": self.tn,
            "episodes": list(self.episodes),
            "window": list(self._window),
            "calibrating": list(self._calibrating),
            "violating_since": self._violating_since,
            "violation_reason": self._violation_reason,
            "min_throughput": self.min_throughput,
            "min_availability": self.min_availability,
        }


class Observatory:
    """The full observation harness one campaign cell attaches to a run.

    Bundles an optional raw :class:`~repro.obs.bus.EventRecorder` (for
    trace export + event counts), a :class:`StageDetector`, a
    :class:`HealthWatchdog`, and the always-on latency/attribution
    probes (:mod:`repro.obs.attribution`) behind the single
    ``attach(bus)`` hook the phase-1 drivers accept as ``recorder=``.
    """

    def __init__(
        self,
        recorder=None,
        env: Environment = DEFAULT_ENVIRONMENT,
        slo: SLOConfig = DEFAULT_SLO,
        attribution: AttributionConfig = DEFAULT_ATTRIBUTION,
    ):
        self.recorder = recorder
        self.detector = StageDetector(env=env)
        self.watchdog = HealthWatchdog(slo=slo)
        self.latency = LatencyProbe(detector=self.detector)
        self.attribution = AttributionProbe(config=attribution)
        self.bus = None

    def attach(self, bus) -> "Observatory":
        if self.recorder is not None:
            self.recorder.attach(bus)
        self.detector.attach(bus)
        self.watchdog.attach(bus)
        self.latency.attach(bus)
        self.attribution.attach(bus)
        self.bus = bus
        return self

    def finish(self, cluster=None, end: Optional[float] = None) -> None:
        """Flush trailing monitor buckets, then close both observers."""
        if cluster is not None:
            if end is None:
                end = cluster.engine.now
            cluster.monitor.flush(end)
        if end is None and self.bus is not None:
            end = self.bus.engine.now
        self.detector.finalize(end if end is not None else 0.0)
        self.watchdog.finalize(end if end is not None else 0.0)

    def summary(self) -> dict:
        return {
            "stages": self.detector.summary(),
            "health": self.watchdog.summary(),
            "latency": self.latency.summary(),
            "attribution": self.attribution.summary(),
        }

    # -- snapshot support (see repro.sim.snapshot) ---------------------
    def snapshot_state(self) -> dict:
        """Deterministic-state digest input (see Snapshottable)."""
        return {
            "detector": self.detector.snapshot_state(),
            "watchdog": self.watchdog.snapshot_state(),
            "latency": self.latency.snapshot_state(),
            "attribution": self.attribution.snapshot_state(),
        }
