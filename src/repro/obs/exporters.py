"""Render a recorded event stream as JSONL or Chrome ``trace_event`` JSON.

* JSONL: one :class:`~repro.obs.bus.SimEvent` dict per line — trivially
  greppable and round-trippable (:func:`write_events_jsonl` /
  :func:`read_events_jsonl`).
* Chrome trace: the ``trace_event`` JSON object format understood by
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.  Each
  simulated node becomes a process track (pid), each ``layer`` of the
  event taxonomy a thread track (tid) inside it; events become instants
  and fault inject/clear pairs become duration spans.  Sim seconds map
  to trace microseconds.
* :func:`telemetry_summary` condenses a run into the compact dict the
  campaign result store persists per cell.

The ``validate_*`` helpers raise :class:`ValueError` on malformed output
and back the CI trace-smoke job.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .bus import EventRecorder, SimEvent
from .events import FAULT_CLEARED, FAULT_INJECTED, layer_of

#: Recognised --trace-format values.
TRACE_FORMATS = ("jsonl", "chrome", "both")

_US = 1_000_000  # sim seconds -> trace microseconds

# -- JSONL --------------------------------------------------------------


def write_events_jsonl(
    events: Sequence[SimEvent], path, meta: Optional[dict] = None
) -> Path:
    """Write events one-per-line; an optional ``meta`` header line first."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        if meta is not None:
            fh.write(json.dumps({"meta": meta}, sort_keys=True) + "\n")
        for event in events:
            fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
    return path


def read_events_jsonl(path) -> List[SimEvent]:
    """Read a JSONL trace back; the meta header line is skipped."""
    events: List[SimEvent] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            if "meta" in d and "name" not in d:
                continue
            events.append(SimEvent.from_dict(d))
    return events


def validate_events_jsonl(path) -> int:
    """Check a JSONL trace is well formed; returns the event count."""
    count = 0
    last_seq = 0
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from exc
            if "meta" in d and "name" not in d:
                continue
            for field in ("time", "seq", "name"):
                if field not in d:
                    raise ValueError(f"{path}:{lineno}: event missing {field!r}")
            if d["seq"] <= last_seq:
                raise ValueError(
                    f"{path}:{lineno}: seq {d['seq']} not increasing"
                )
            last_seq = d["seq"]
            count += 1
    return count


# -- Chrome trace_event -------------------------------------------------


def chrome_trace(
    events: Sequence[SimEvent], label: str = "run", meta: Optional[dict] = None
) -> dict:
    """Build a Chrome ``trace_event`` object from a recorded run.

    One process per node (events with no node land on the "cluster"
    track), one thread per taxonomy layer.  Fault inject/clear pairs
    become "X" duration spans on the injector's track; everything else
    is an "i" instant.
    """
    trace_events: List[dict] = []
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}

    def pid_of(node: str) -> int:
        key = node or "cluster"
        if key not in pids:
            pids[key] = len(pids) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pids[key],
                    "tid": 0,
                    "args": {"name": key},
                }
            )
        return pids[key]

    def tid_of(pid: int, layer: str) -> int:
        key = (pid, layer)
        if key not in tids:
            tids[key] = len([k for k in tids if k[0] == pid]) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tids[key],
                    "args": {"name": layer},
                }
            )
        return tids[key]

    open_faults: Dict[tuple, SimEvent] = {}
    for event in events:
        pid = pid_of(event.node)
        tid = tid_of(pid, layer_of(event.name))
        ts = round(event.time * _US, 3)
        if event.name == FAULT_INJECTED:
            open_faults[(event.node, event.fields.get("fault"))] = event
            continue
        if event.name == FAULT_CLEARED:
            start = open_faults.pop((event.node, event.fields.get("fault")), None)
            if start is not None:
                trace_events.append(
                    {
                        "ph": "X",
                        "name": str(start.fields.get("fault", "fault")),
                        "cat": "fault",
                        "pid": pid,
                        "tid": tid,
                        "ts": round(start.time * _US, 3),
                        "dur": round((event.time - start.time) * _US, 3),
                        "args": dict(start.fields),
                    }
                )
                continue
        trace_events.append(
            {
                "ph": "i",
                "name": event.name,
                "cat": layer_of(event.name),
                "pid": pid,
                "tid": tid,
                "ts": ts,
                "s": "t",
                "args": dict(event.fields),
            }
        )
    # Faults never cleared inside the run: emit as instants so they are
    # not silently dropped from the timeline.
    for start in open_faults.values():
        pid = pid_of(start.node)
        trace_events.append(
            {
                "ph": "i",
                "name": start.name,
                "cat": "fault",
                "pid": pid,
                "tid": tid_of(pid, layer_of(start.name)),
                "ts": round(start.time * _US, 3),
                "s": "t",
                "args": dict(start.fields),
            }
        )
    out = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"label": label},
    }
    if meta:
        out["otherData"].update(meta)
    return out


def write_chrome_trace(
    events: Sequence[SimEvent], path, label: str = "run", meta: Optional[dict] = None
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(events, label, meta)), encoding="utf-8")
    return path


_PH_REQUIRED = {
    "i": ("name", "pid", "tid", "ts"),
    "X": ("name", "pid", "tid", "ts", "dur"),
    "M": ("name", "pid"),
}


def validate_chrome_trace(path) -> int:
    """Check a Chrome trace file is well formed; returns the event count.

    Validates the subset of the ``trace_event`` spec we emit: an object
    with a ``traceEvents`` list whose entries carry the fields Perfetto
    needs for their phase.
    """
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not JSON ({exc})") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError(f"{path}: missing traceEvents list")
    for i, entry in enumerate(doc["traceEvents"]):
        if not isinstance(entry, dict) or "ph" not in entry:
            raise ValueError(f"{path}: traceEvents[{i}] missing ph")
        required = _PH_REQUIRED.get(entry["ph"])
        if required is None:
            raise ValueError(f"{path}: traceEvents[{i}] unknown ph {entry['ph']!r}")
        for field in required:
            if field not in entry:
                raise ValueError(
                    f"{path}: traceEvents[{i}] ({entry['ph']}) missing {field!r}"
                )
        if entry["ph"] in ("i", "X") and entry["ts"] < 0:
            raise ValueError(f"{path}: traceEvents[{i}] negative ts")
        if entry["ph"] == "X" and entry["dur"] < 0:
            raise ValueError(f"{path}: traceEvents[{i}] negative dur")
    return len(doc["traceEvents"])


def validate_trace_dir(trace_dir) -> Dict[str, int]:
    """Validate every trace file under ``trace_dir``.

    Returns {filename: event count}; raises :class:`ValueError` on the
    first malformed file, or if the directory holds no traces at all.
    """
    trace_dir = Path(trace_dir)
    results: Dict[str, int] = {}
    for path in sorted(trace_dir.rglob("*.jsonl")):
        results[str(path.relative_to(trace_dir))] = validate_events_jsonl(path)
    for path in sorted(trace_dir.rglob("*.trace.json")):
        results[str(path.relative_to(trace_dir))] = validate_chrome_trace(path)
    if not results:
        raise ValueError(f"{trace_dir}: no trace files found")
    return results


# -- summaries + the per-cell export entry point ------------------------


def telemetry_summary(
    recorder: Optional[EventRecorder], metrics=None, bus=None
) -> dict:
    """The compact per-run telemetry dict stored with each campaign cell.

    When the run's event ``bus`` is supplied, the summary also records
    ``subscriber_errors`` — the count of subscriber callbacks that raised
    (and were isolated) during the run.  A non-zero count means some
    observer silently saw a partial event stream, so the campaign runner
    surfaces it as a run notice.
    """
    out: dict = {
        "event_total": recorder.total if recorder is not None else 0,
        "events": dict(sorted(recorder.counts.items())) if recorder is not None else {},
    }
    if bus is not None:
        out["subscriber_errors"] = bus.subscriber_errors
    if metrics is not None:
        out["metrics"] = metrics.summary()
    return out


def export_run(
    events: Iterable[SimEvent],
    trace_dir,
    label: str,
    fmt: str = "both",
    meta: Optional[dict] = None,
) -> List[Path]:
    """Write one run's trace files under ``trace_dir``; returns the paths.

    ``fmt`` is one of ``jsonl``, ``chrome``, or ``both``.
    """
    if fmt not in TRACE_FORMATS:
        raise ValueError(f"unknown trace format {fmt!r} (want one of {TRACE_FORMATS})")
    events = list(events)
    trace_dir = Path(trace_dir)
    written: List[Path] = []
    if fmt in ("jsonl", "both"):
        written.append(write_events_jsonl(events, trace_dir / f"{label}.jsonl", meta))
    if fmt in ("chrome", "both"):
        written.append(
            write_chrome_trace(events, trace_dir / f"{label}.trace.json", label, meta)
        )
    return written
