"""Render a recorded event stream as JSONL or Chrome ``trace_event`` JSON.

* JSONL: one :class:`~repro.obs.bus.SimEvent` dict per line — trivially
  greppable and round-trippable (:func:`write_events_jsonl` /
  :func:`read_events_jsonl`).
* Chrome trace: the ``trace_event`` JSON object format understood by
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.  Each
  simulated node becomes a process track (pid), each ``layer`` of the
  event taxonomy a thread track (tid) inside it; events become instants
  and fault inject/clear pairs become duration spans.  Sim seconds map
  to trace microseconds.
* :func:`telemetry_summary` condenses a run into the compact dict the
  campaign result store persists per cell.

The ``validate_*`` helpers raise :class:`ValueError` on malformed output
and back the CI trace-smoke job.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from .bus import EventRecorder, SimEvent
from .events import FAULT_CLEARED, FAULT_INJECTED, layer_of

#: Recognised --trace-format values.
TRACE_FORMATS = ("jsonl", "chrome", "both")

_US = 1_000_000  # sim seconds -> trace microseconds

# -- JSONL --------------------------------------------------------------


def write_events_jsonl(
    events: Sequence[SimEvent], path, meta: Optional[dict] = None
) -> Path:
    """Write events one-per-line; an optional ``meta`` header line first."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        if meta is not None:
            fh.write(json.dumps({"meta": meta}, sort_keys=True) + "\n")
        for event in events:
            fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
    return path


def read_events_jsonl(path) -> List[SimEvent]:
    """Read a JSONL trace back; the meta header line is skipped."""
    events: List[SimEvent] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            if "meta" in d and "name" not in d:
                continue
            events.append(SimEvent.from_dict(d))
    return events


def validate_events_jsonl(path) -> int:
    """Check a JSONL trace is well formed; returns the event count."""
    count = 0
    last_seq = 0
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from exc
            if "meta" in d and "name" not in d:
                continue
            for field in ("time", "seq", "name"):
                if field not in d:
                    raise ValueError(f"{path}:{lineno}: event missing {field!r}")
            if d["seq"] <= last_seq:
                raise ValueError(
                    f"{path}:{lineno}: seq {d['seq']} not increasing"
                )
            last_seq = d["seq"]
            count += 1
    return count


# -- Chrome trace_event -------------------------------------------------


def chrome_trace(
    events: Sequence[SimEvent], label: str = "run", meta: Optional[dict] = None
) -> dict:
    """Build a Chrome ``trace_event`` object from a recorded run.

    One process per node (events with no node land on the "cluster"
    track), one thread per taxonomy layer.  Fault inject/clear pairs
    become "X" duration spans on the injector's track; everything else
    is an "i" instant.
    """
    trace_events: List[dict] = []
    pids: Dict[str, int] = {}
    tids: Dict[tuple, int] = {}

    def pid_of(node: str) -> int:
        key = node or "cluster"
        if key not in pids:
            pids[key] = len(pids) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pids[key],
                    "tid": 0,
                    "args": {"name": key},
                }
            )
        return pids[key]

    def tid_of(pid: int, layer: str) -> int:
        key = (pid, layer)
        if key not in tids:
            tids[key] = len([k for k in tids if k[0] == pid]) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tids[key],
                    "args": {"name": layer},
                }
            )
        return tids[key]

    open_faults: Dict[tuple, SimEvent] = {}
    for event in events:
        pid = pid_of(event.node)
        tid = tid_of(pid, layer_of(event.name))
        ts = round(event.time * _US, 3)
        if event.name == FAULT_INJECTED:
            open_faults[(event.node, event.fields.get("fault"))] = event
            continue
        if event.name == FAULT_CLEARED:
            start = open_faults.pop((event.node, event.fields.get("fault")), None)
            if start is not None:
                trace_events.append(
                    {
                        "ph": "X",
                        "name": str(start.fields.get("fault", "fault")),
                        "cat": "fault",
                        "pid": pid,
                        "tid": tid,
                        "ts": round(start.time * _US, 3),
                        "dur": round((event.time - start.time) * _US, 3),
                        "args": dict(start.fields),
                    }
                )
                continue
        trace_events.append(
            {
                "ph": "i",
                "name": event.name,
                "cat": layer_of(event.name),
                "pid": pid,
                "tid": tid,
                "ts": ts,
                "s": "t",
                "args": dict(event.fields),
            }
        )
    # Faults never cleared inside the run: emit as instants so they are
    # not silently dropped from the timeline.
    for start in open_faults.values():
        pid = pid_of(start.node)
        trace_events.append(
            {
                "ph": "i",
                "name": start.name,
                "cat": "fault",
                "pid": pid,
                "tid": tid_of(pid, layer_of(start.name)),
                "ts": round(start.time * _US, 3),
                "s": "t",
                "args": dict(start.fields),
            }
        )
    out = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"label": label},
    }
    if meta:
        out["otherData"].update(meta)
    return out


def write_chrome_trace(
    events: Sequence[SimEvent], path, label: str = "run", meta: Optional[dict] = None
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(events, label, meta)), encoding="utf-8")
    return path


_PH_REQUIRED = {
    "i": ("name", "pid", "tid", "ts"),
    "X": ("name", "pid", "tid", "ts", "dur"),
    "M": ("name", "pid"),
    # Async nestable begin/end — the per-request span export.
    "b": ("name", "cat", "id", "pid", "tid", "ts"),
    "e": ("name", "cat", "id", "pid", "tid", "ts"),
}


def validate_chrome_trace(path) -> int:
    """Check a Chrome trace file is well formed; returns the event count.

    Validates the subset of the ``trace_event`` spec we emit: an object
    with a ``traceEvents`` list whose entries carry the fields Perfetto
    needs for their phase.
    """
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not JSON ({exc})") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        raise ValueError(f"{path}: missing traceEvents list")
    for i, entry in enumerate(doc["traceEvents"]):
        if not isinstance(entry, dict) or "ph" not in entry:
            raise ValueError(f"{path}: traceEvents[{i}] missing ph")
        required = _PH_REQUIRED.get(entry["ph"])
        if required is None:
            raise ValueError(f"{path}: traceEvents[{i}] unknown ph {entry['ph']!r}")
        for field in required:
            if field not in entry:
                raise ValueError(
                    f"{path}: traceEvents[{i}] ({entry['ph']}) missing {field!r}"
                )
        if entry["ph"] in ("i", "X") and entry["ts"] < 0:
            raise ValueError(f"{path}: traceEvents[{i}] negative ts")
        if entry["ph"] == "X" and entry["dur"] < 0:
            raise ValueError(f"{path}: traceEvents[{i}] negative dur")
    return len(doc["traceEvents"])


def validate_trace_dir(trace_dir) -> Dict[str, int]:
    """Validate every trace file under ``trace_dir``.

    Returns {filename: event count}; raises :class:`ValueError` on the
    first malformed file, or if the directory holds no traces at all.
    Span files (``*.spans.jsonl``) are checked against the causal-trace
    invariants (:func:`repro.obs.spans.check_span_invariants`), event
    files against the sequencing rules, Chrome traces against the
    ``trace_event`` subset we emit.
    """
    trace_dir = Path(trace_dir)
    results: Dict[str, int] = {}
    for path in sorted(trace_dir.rglob("*.jsonl")):
        rel = str(path.relative_to(trace_dir))
        if path.name.endswith(SPANS_SUFFIX):
            results[rel] = validate_spans_jsonl(path)
        else:
            results[rel] = validate_events_jsonl(path)
    for path in sorted(trace_dir.rglob("*.trace.json")):
        results[str(path.relative_to(trace_dir))] = validate_chrome_trace(path)
    if not results:
        raise ValueError(f"{trace_dir}: no trace files found")
    return results


# -- request-scoped span export ----------------------------------------

#: Span files sit beside a run's event traces: ``<label>.spans.jsonl``
#: (records) and ``<label>.spans.trace.json`` (Perfetto async spans).
SPANS_SUFFIX = ".spans.jsonl"
SPANS_CHROME_SUFFIX = ".spans.trace.json"


def write_spans_jsonl(records, path, meta: Optional[dict] = None) -> Path:
    """Write span records one-per-line; optional ``meta`` header first."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        if meta is not None:
            fh.write(json.dumps({"meta": meta}, sort_keys=True) + "\n")
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
    return path


def read_spans_jsonl(path) -> List[dict]:
    """Read a span JSONL file back; the meta header line is skipped."""
    records: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            if "meta" in d and "sid" not in d:
                continue
            records.append(d)
    return records


def validate_spans_jsonl(path) -> int:
    """Check a span file is well formed *and* causally consistent.

    Beyond per-line JSON shape, the whole file must satisfy the span
    invariants: every span closed or explicitly dropped, children start
    inside their parents (or carry a ``late`` mark), one root per trace,
    no orphan parents.  Returns the span count.
    """
    from .spans import check_span_invariants

    records: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON ({exc})") from exc
            if "meta" in d and "sid" not in d:
                continue
            for field in ("sid", "trace", "name", "start", "status"):
                if field not in d:
                    raise ValueError(f"{path}:{lineno}: span missing {field!r}")
            records.append(d)
    problems = check_span_invariants(records)
    if problems:
        shown = "; ".join(problems[:5])
        more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
        raise ValueError(f"{path}: span invariants violated: {shown}{more}")
    return len(records)


def spans_chrome_trace(
    records, label: str = "run", meta: Optional[dict] = None
) -> dict:
    """Chrome ``trace_event`` async spans from span records.

    Every request becomes one async nestable track (``cat="span"``,
    ``id`` = the trace/request id in hex) under a single "requests"
    process, with "b"/"e" events emitted in recursive causal order —
    parent begins before its children, ends after them — so Perfetto
    renders each request's hop tree nested.  ``late`` spans (work a
    request triggered after it completed, e.g. cache-update broadcasts)
    are emitted as top-level siblings of the root.
    """
    trace_events: List[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": 1,
            "tid": 0,
            "args": {"name": "requests"},
        }
    ]

    by_trace: Dict[int, List[dict]] = {}
    for rec in records:
        by_trace.setdefault(rec["trace"], []).append(rec)

    def emit(rec: dict, kids: Dict[Optional[int], List[dict]]) -> None:
        ident = f"0x{rec['trace']:x}"
        args = {"status": rec["status"]}
        if rec.get("node") is not None:
            args["node"] = rec["node"]
        args.update(rec.get("notes", {}))
        start_ts = round(rec["start"] * _US, 3)
        base = {
            "cat": "span",
            "id": ident,
            "name": rec["name"],
            "pid": 1,
            "tid": 1,
        }
        trace_events.append(
            {"ph": "b", "ts": start_ts, "args": args, **base}
        )
        for kid in kids.get(rec["sid"], ()):
            emit(kid, kids)
        end = rec.get("end")
        trace_events.append(
            {
                "ph": "e",
                "ts": round(end * _US, 3) if end is not None else start_ts,
                **base,
            }
        )

    for trace in sorted(by_trace):
        recs = by_trace[trace]
        kids: Dict[Optional[int], List[dict]] = {}
        tops: List[dict] = []
        for rec in recs:
            if rec.get("parent") is None or rec.get("late"):
                tops.append(rec)
            else:
                kids.setdefault(rec["parent"], []).append(rec)
        for top in tops:
            emit(top, kids)

    out = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"label": label},
    }
    if meta:
        out["otherData"].update(meta)
    return out


def export_spans(
    collector,
    trace_dir,
    label: str,
    fmt: str = "both",
    meta: Optional[dict] = None,
) -> List[Path]:
    """Write one run's span files under ``trace_dir``; returns the paths.

    ``collector`` is a finished :class:`~repro.obs.spans.SpanCollector`;
    ``fmt`` is one of ``jsonl``, ``chrome``, or ``both`` (matching
    :func:`export_run`).
    """
    if fmt not in TRACE_FORMATS:
        raise ValueError(f"unknown trace format {fmt!r} (want one of {TRACE_FORMATS})")
    records = [span.to_record() for span in collector.spans]
    full_meta = {"sample_every": collector.sample_every}
    if meta:
        full_meta.update(meta)
    trace_dir = Path(trace_dir)
    written: List[Path] = []
    if fmt in ("jsonl", "both"):
        written.append(
            write_spans_jsonl(
                records, trace_dir / f"{label}{SPANS_SUFFIX}", full_meta
            )
        )
    if fmt in ("chrome", "both"):
        path = trace_dir / f"{label}{SPANS_CHROME_SUFFIX}"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(spans_chrome_trace(records, label, full_meta)),
            encoding="utf-8",
        )
        written.append(path)
    return written


# -- summaries + the per-cell export entry point ------------------------


def telemetry_summary(
    recorder: Optional[EventRecorder], metrics=None, bus=None
) -> dict:
    """The compact per-run telemetry dict stored with each campaign cell.

    When the run's event ``bus`` is supplied, the summary also records
    ``subscriber_errors`` — the count of subscriber callbacks that raised
    (and were isolated) during the run.  A non-zero count means some
    observer silently saw a partial event stream, so the campaign runner
    surfaces it as a run notice.
    """
    out: dict = {
        "event_total": recorder.total if recorder is not None else 0,
        "events": dict(sorted(recorder.counts.items())) if recorder is not None else {},
    }
    if bus is not None:
        out["subscriber_errors"] = bus.subscriber_errors
    if metrics is not None:
        out["metrics"] = metrics.summary()
    return out


def export_run(
    events: Iterable[SimEvent],
    trace_dir,
    label: str,
    fmt: str = "both",
    meta: Optional[dict] = None,
) -> List[Path]:
    """Write one run's trace files under ``trace_dir``; returns the paths.

    ``fmt`` is one of ``jsonl``, ``chrome``, or ``both``.
    """
    if fmt not in TRACE_FORMATS:
        raise ValueError(f"unknown trace format {fmt!r} (want one of {TRACE_FORMATS})")
    events = list(events)
    trace_dir = Path(trace_dir)
    written: List[Path] = []
    if fmt in ("jsonl", "both"):
        written.append(write_events_jsonl(events, trace_dir / f"{label}.jsonl", meta))
    if fmt in ("chrome", "both"):
        written.append(
            write_chrome_trace(events, trace_dir / f"{label}.trace.json", label, meta)
        )
    return written
