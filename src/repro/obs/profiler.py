"""Wall-clock flight recorder: where the *host's* time goes.

Every other observability layer (bus, spans, sketches, attribution)
explains the *simulated* system.  This one explains the simulator: which
layer's callbacks burn the wall-clock, how often the fabric fast path
actually engages, how much the engine's heap churns — the data the
scaling work (ROADMAP items 1 and 4) needs before picking what to
optimize next.

Like the bus and the span collector, the recorder is an *attach point*
on the engine (``engine.profiler``), and every instrumentation site
guards with::

    profiler = self.engine.profiler
    if profiler is not None:
        ...

so a run with profiling disabled pays exactly one attribute load per
would-be probe (the ``profiler_guard_zero_overhead`` bench-gate claim
pins that at ~0).  The engine itself pays even less: ``Engine.run``
checks the attach point once per call and dispatches to a separate
instrumented loop, leaving the unprofiled hot loop untouched.

Determinism contract
--------------------
The recorder only ever *observes*: it reads ``time.perf_counter`` and
increments counters.  It never schedules events, mutates component
state, or perturbs iteration order, so a profiled run is byte-identical
to an unprofiled one — enforced by ``tests/obs/test_profiler_determinism``
and the CI ``perf-smoke`` job.  Its output is wall-clock and therefore
*volatile*: per-cell digests are persisted in the result store's
``perf/`` namespace (beside ``warmstart/`` and ``repetition/``), never
in the cell payload, so cache keys, payload fingerprints, and
``store-diff`` are untouched by nondeterministic timings.

Per-worker flight-recorder merging
----------------------------------
Under a parallel LP backend (``--lp-backend threads|processes``, see
:mod:`repro.sim.lpexec`) each worker measures its *own* wall clock —
time spent executing, idling on an empty queue, and blocked waiting on
a null-message bound — with the same ``perf_counter`` the recorder
uses.  Those per-worker clocks are merged into the engine when the
worker fleet is reaped at the end of ``run()``, and ``digest()`` picks
them up through ``lp_stats()`` (``worker_exec_s`` / ``worker_idle_s`` /
``worker_blocked_s`` and the ``worker_imbalance`` index), so
``perf-report`` shows load imbalance computed from real per-worker
wall clocks rather than the coordinator's view.  Unlike callback
self-time, worker clocks are always on — they live inside the worker
loops, not on the serial hot path, so the zero-overhead guard contract
above is untouched.

Self-time attribution
---------------------
The engine's event loop is flat — a callback runs to completion before
the next event dispatches — so the wall-clock interval around one
callback *is* that event's self-time.  Events are keyed by their
callback's identity (the underlying code object for functions and bound
methods, the class for callable objects), which is stable across the
timer freelist's object recycling and across closure re-creation, and
grouped into *layers* by the callback's defining module
(``repro.net.fabric`` → ``net``).
"""

from __future__ import annotations

import time
from types import FunctionType, MethodType
from typing import Any, Dict, Optional, Tuple


def _site_key(fn) -> Any:
    """Stable identity of a callback site.

    Bound methods are re-created per attribute access and plain
    functions are re-created per closure, so both are keyed by their
    code object; callable instances (delivery callbacks, ``functools``
    partials, builtins) are keyed by their class.
    """
    t = type(fn)
    if t is MethodType:
        return fn.__func__.__code__
    if t is FunctionType:
        return fn.__code__
    return t


def _site_label(fn) -> Tuple[str, str]:
    """``(module, qualname)`` of a callback site, for display."""
    t = type(fn)
    if t is MethodType:
        f = fn.__func__
        return f.__module__ or "?", f.__qualname__
    if t is FunctionType:
        return fn.__module__ or "?", fn.__qualname__
    return t.__module__ or "?", t.__qualname__


def layer_of(module: str) -> str:
    """Map a defining module to its architectural layer.

    ``repro.net.fabric`` → ``net``, ``repro.sim.engine`` → ``sim``;
    non-repro callables (tests, stdlib) keep their top-level package.
    """
    parts = module.split(".")
    if parts[0] == "repro" and len(parts) > 1:
        return parts[1]
    return parts[0]


class FlightRecorder:
    """Accumulates per-event-kind self-time, counts, and named counters.

    One instance is attached per run (``engine.profiler = recorder``);
    :meth:`digest` renders the accumulated data JSON-ready for the
    per-cell perf record.
    """

    __slots__ = ("_sites", "counters", "_labels")

    def __init__(self) -> None:
        #: site key -> [count, self_seconds]
        self._sites: Dict[Any, list] = {}
        #: site key -> (module, qualname), resolved on first sight
        self._labels: Dict[Any, Tuple[str, str]] = {}
        #: named event counters (fabric fastpath hits, heap churn, ...)
        self.counters: Dict[str, int] = {}

    # -- hot-path API (called from instrumented loops) ------------------
    def record(self, fn, seconds: float) -> None:
        """Charge ``seconds`` of self-time to ``fn``'s site."""
        key = _site_key(fn)
        site = self._sites.get(key)
        if site is None:
            self._sites[key] = [1, seconds]
            self._labels[key] = _site_label(fn)
        else:
            site[0] += 1
            site[1] += seconds

    def count(self, name: str, n: int = 1) -> None:
        """Increment the named counter by ``n``."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    # -- aggregation ----------------------------------------------------
    def layers(self) -> Dict[str, Dict[str, float]]:
        """Self-time and event counts grouped by architectural layer."""
        out: Dict[str, Dict[str, float]] = {}
        for key, (count, seconds) in self._sites.items():
            module, _ = self._labels[key]
            row = out.setdefault(
                layer_of(module), {"events": 0, "self_s": 0.0}
            )
            row["events"] += count
            row["self_s"] += seconds
        return out

    def sites(self, top: int = 20) -> list:
        """The ``top`` costliest callback sites, by self-time."""
        rows = [
            {
                "site": f"{module}.{qualname}",
                "layer": layer_of(module),
                "events": count,
                "self_s": seconds,
            }
            for key, (count, seconds) in self._sites.items()
            for module, qualname in (self._labels[key],)
        ]
        rows.sort(key=lambda r: (-r["self_s"], r["site"]))
        return rows[:top]

    def digest(self, engine: Optional[Any] = None, top: int = 20) -> dict:
        """JSON-ready summary for the per-cell perf record.

        ``engine`` (optional) contributes its scheduling/heap-churn
        counters; an :class:`~repro.sim.lp.ShardedEngine` additionally
        contributes its LP statistics under ``"lp"``.
        """
        total_events = sum(c for c, _ in self._sites.values())
        total_s = sum(s for _, s in self._sites.values())
        out = {
            "events": total_events,
            "self_s": total_s,
            "layers": {
                layer: {
                    "events": row["events"],
                    "self_s": row["self_s"],
                }
                for layer, row in sorted(self.layers().items())
            },
            "sites": self.sites(top),
            "counters": dict(sorted(self.counters.items())),
        }
        if engine is not None:
            out["engine"] = {
                "events_processed": engine.events_processed,
                "scheduled": engine._seq,
                "pending": engine.pending,
                "tombstones": engine.queued_tombstones,
                "timer_allocs": engine._timer_allocs,
                "freelist_reuse": engine._seq - engine._timer_allocs,
                "compactions": engine._compactions,
            }
            lp_stats = getattr(engine, "lp_stats", None)
            if lp_stats is not None:
                out["lp"] = lp_stats()
        return out


#: Re-exported so instrumented loops avoid a module attribute load.
perf_counter = time.perf_counter
