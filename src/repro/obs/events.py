"""The event taxonomy: every name the simulation publishes on the bus.

Names follow the metric naming convention, ``layer.component.detail``,
so a trace viewer groups them naturally and the Chrome-trace exporter can
derive one track per (node, layer) pair.  Publishing an unknown name is
allowed (the bus is open), but everything the shipped components emit is
declared here so exporter validation and the docs have one source of
truth.
"""

from __future__ import annotations

# -- network hardware ---------------------------------------------------
#: A frame was lost somewhere on the fabric (link down, switch down,
#: powered-off NIC, loss process).  Fields: kind, reason.
NET_FRAME_DROP = "net.frame.drop"

# -- TCP transport ------------------------------------------------------
#: Retransmission timeout fired; go-back-N rewind.  Fields: peer, rto.
TCP_RETRANSMIT = "tcp.endpoint.retransmit"
#: A connection died.  Fields: peer, reason.
TCP_ENDPOINT_BROKEN = "tcp.endpoint.broken"
#: Garbage framing header — the byte-stream corruption of §6.  Fields: peer.
TCP_FRAMING_ERROR = "tcp.endpoint.framing_error"

# -- VIA transport ------------------------------------------------------
#: A corrupted descriptor surfaced as a completion error.  Fields:
#: peer, corruption.
VIA_DESCRIPTOR_ERROR = "via.channel.descriptor_error"
#: The per-channel application send queue overflowed; oldest message
#: shed (send-descriptor exhaustion under backpressure).  Fields: peer.
VIA_QUEUE_SHED = "via.channel.queue_shed"
#: A VI died (hardware disconnect, peer close, ...).  Fields: peer, reason.
VIA_CHANNEL_BROKEN = "via.channel.broken"

# -- PRESS cache --------------------------------------------------------
#: Fields: file.
CACHE_HIT = "press.cache.hit"
#: Fields: file.
CACHE_MISS = "press.cache.miss"
#: LRU or shed eviction.  Fields: file.
CACHE_EVICT = "press.cache.evict"
#: Pinning a page failed (the pin fault is biting).  Fields: bytes.
CACHE_PIN_FAILURE = "press.cache.pin_failure"

# -- membership ---------------------------------------------------------
#: Fields: peer, reason.
MEMBERSHIP_EXCLUDE = "press.membership.exclude"
#: Fields: peer.
MEMBERSHIP_INCLUDE = "press.membership.include"
#: The joiner completed the rejoin protocol.  Fields: members.
MEMBERSHIP_JOINED = "press.membership.joined"
#: Join retries exhausted; singleton operation.  Fields: (none).
MEMBERSHIP_JOIN_GAVE_UP = "press.membership.join_gave_up"
#: The auto-remerge extension made this node yield.  Fields: (none).
MEMBERSHIP_REMERGE = "press.membership.remerge"

# -- faults -------------------------------------------------------------
#: Mendosus fired a fault.  Fields: fault (the spec label), kind, target.
FAULT_INJECTED = "fault.injector.injected"
#: The fault's active period ended.  Fields: fault, kind, target.
FAULT_CLEARED = "fault.injector.cleared"

# -- machines / processes ----------------------------------------------
#: Hard reboot began.  Fields: (none).
NODE_CRASH = "osim.node.crash"
#: The machine came back after ``reboot_time``.  Fields: (none).
NODE_REBOOT = "osim.node.reboot"
#: A supervised process terminated (crash, fail-fast, kill, reset).
#: Fields: reason, incarnation.
PROCESS_EXIT = "osim.process.exit"
#: The restart daemon brought a dead process back (incarnation >= 2;
#: the initial start is not published).  Fields: incarnation.
PROCESS_RESTART = "osim.process.restart"

# -- measurement stream -------------------------------------------------
#: A throughput bucket closed: simulation time advanced past its end.
#: Published lazily by :class:`~repro.sim.monitor.ThroughputMonitor`
#: (on the completion that opens a later bucket, and at ``flush``), so
#: subscribing cannot perturb the run.  Fields: start, ok, failed, width.
MONITOR_BUCKET = "sim.monitor.bucket"

# -- observatory (emitted by obs.observatory subscribers) ---------------
#: The online stage detector reclassified the run.  Fields: stage, prev,
#: at (the boundary's logical time), trigger.
OBS_STAGE_TRANSITION = "obs.stage.transition"
#: The run-health watchdog found an SLO violation.  Fields: reason,
#: throughput, availability, floor.
OBS_HEALTH_DEGRADED = "obs.health.degraded"
#: The watchdog saw the SLO satisfied again.  Fields: violated_for.
OBS_HEALTH_RESTORED = "obs.health.restored"

# -- workload -----------------------------------------------------------
#: A client request reached its final outcome.  Published by the client
#: machine at response/reject/timeout, so latency probes and the
#: unavailability-attribution report see every request exactly once.
#: Fields: req_id, client, outcome ("ok" | "reject" | "timeout"),
#: latency (seconds; issue -> outcome).
WORKLOAD_REQUEST_DONE = "workload.request.done"

# -- timeline annotations ----------------------------------------------
#: The unified timeline instant (fault-injected, reconfigured, fail-fast,
#: rejoined, operator-reset, ...).  Published by
#: :class:`~repro.sim.monitor.Annotations` so stage extraction and traces
#: share one source of truth.  Fields: label, detail.
ANNOTATION = "sim.annotation"

#: Every event name the shipped components publish, with a one-line
#: description (mirrored in OBSERVABILITY.md).
TAXONOMY = {
    NET_FRAME_DROP: "frame lost on the fabric",
    TCP_RETRANSMIT: "TCP retransmission timeout fired",
    TCP_ENDPOINT_BROKEN: "TCP connection died",
    TCP_FRAMING_ERROR: "TCP byte-stream framing corruption",
    VIA_DESCRIPTOR_ERROR: "VIA descriptor completion error",
    VIA_QUEUE_SHED: "VIA per-channel send queue shed a message",
    VIA_CHANNEL_BROKEN: "VIA connection died",
    CACHE_HIT: "cache hit",
    CACHE_MISS: "cache miss",
    CACHE_EVICT: "cache eviction",
    CACHE_PIN_FAILURE: "cache page pinning failed",
    MEMBERSHIP_EXCLUDE: "peer excluded from the membership",
    MEMBERSHIP_INCLUDE: "peer included in the membership",
    MEMBERSHIP_JOINED: "rejoin protocol completed",
    MEMBERSHIP_JOIN_GAVE_UP: "join retries exhausted",
    MEMBERSHIP_REMERGE: "auto-remerge made this node yield",
    FAULT_INJECTED: "fault injected",
    FAULT_CLEARED: "fault active period ended",
    NODE_CRASH: "machine hard reboot began",
    NODE_REBOOT: "machine back up",
    PROCESS_EXIT: "supervised process terminated",
    PROCESS_RESTART: "restart daemon revived a process",
    WORKLOAD_REQUEST_DONE: "client request reached its final outcome",
    MONITOR_BUCKET: "throughput bucket closed",
    OBS_STAGE_TRANSITION: "online detector reclassified the run",
    OBS_HEALTH_DEGRADED: "SLO violation began",
    OBS_HEALTH_RESTORED: "SLO satisfied again",
    ANNOTATION: "named timeline instant",
}


def layer_of(name: str) -> str:
    """The ``layer`` prefix of an event name (one trace track per layer)."""
    return name.split(".", 1)[0]
