"""Observability: structured event tracing + metrics for simulation runs.

The paper's whole contribution is *measurement*, and this package is the
measurement substrate of the reproduction:

* :mod:`repro.obs.bus` — a structured, sim-time-stamped event bus hooked
  into the :class:`~repro.sim.engine.Engine`.  Any component can publish
  typed events (packet drop, retransmit, VIA descriptor error, cache
  hit/miss, membership change, fault inject/clear) with zero overhead
  when nothing is listening.
* :mod:`repro.obs.events` — the event taxonomy (names + field contracts).
* :mod:`repro.obs.metrics` — a registry of counters/gauges/histograms
  keyed by ``layer.component.metric`` plus labels, which the net,
  transport, osim, and press layers register into (backing the public
  counter attributes they have always exposed).
* :mod:`repro.obs.exporters` — render a recorded run as JSONL or Chrome
  ``trace_event`` JSON (loadable in Perfetto / ``chrome://tracing``), and
  summarize it into the compact per-cell telemetry dict the campaign
  result store persists.

See ``OBSERVABILITY.md`` at the repo root for the taxonomy, the naming
convention, and how to open a trace in Perfetto.
"""

from .bus import EventBus, EventRecorder, SimEvent
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, bound_counter
from .exporters import (
    chrome_trace,
    export_run,
    read_events_jsonl,
    telemetry_summary,
    validate_chrome_trace,
    validate_events_jsonl,
    validate_trace_dir,
    write_chrome_trace,
    write_events_jsonl,
)

__all__ = [
    "EventBus",
    "EventRecorder",
    "SimEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bound_counter",
    "chrome_trace",
    "export_run",
    "read_events_jsonl",
    "telemetry_summary",
    "validate_chrome_trace",
    "validate_events_jsonl",
    "validate_trace_dir",
    "write_chrome_trace",
    "write_events_jsonl",
]
