"""Observability: structured event tracing + metrics for simulation runs.

The paper's whole contribution is *measurement*, and this package is the
measurement substrate of the reproduction:

* :mod:`repro.obs.bus` — a structured, sim-time-stamped event bus hooked
  into the :class:`~repro.sim.engine.Engine`.  Any component can publish
  typed events (packet drop, retransmit, VIA descriptor error, cache
  hit/miss, membership change, fault inject/clear) with zero overhead
  when nothing is listening.
* :mod:`repro.obs.events` — the event taxonomy (names + field contracts).
* :mod:`repro.obs.metrics` — a registry of counters/gauges/histograms
  keyed by ``layer.component.metric`` plus labels, which the net,
  transport, osim, and press layers register into (backing the public
  counter attributes they have always exposed).
* :mod:`repro.obs.exporters` — render a recorded run as JSONL or Chrome
  ``trace_event`` JSON (loadable in Perfetto / ``chrome://tracing``), and
  summarize it into the compact per-cell telemetry dict the campaign
  result store persists.
* :mod:`repro.obs.observatory` — the *online* side: a passive
  :class:`~repro.obs.observatory.StageDetector` that classifies a run
  into the paper's stages A–G live from operator-observable signals, a
  :class:`~repro.obs.observatory.HealthWatchdog` that tracks rolling
  throughput/availability SLOs, and the
  :class:`~repro.obs.observatory.Observatory` bundle campaign cells
  attach to every run.

See ``OBSERVABILITY.md`` at the repo root for the taxonomy, the naming
convention, and how to open a trace in Perfetto.
"""

from .bus import EventBus, EventRecorder, SimEvent
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, bound_counter
from .exporters import (
    chrome_trace,
    export_run,
    read_events_jsonl,
    telemetry_summary,
    validate_chrome_trace,
    validate_events_jsonl,
    validate_trace_dir,
    write_chrome_trace,
    write_events_jsonl,
)

__all__ = [
    "EventBus",
    "EventRecorder",
    "SimEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bound_counter",
    "chrome_trace",
    "export_run",
    "read_events_jsonl",
    "telemetry_summary",
    "validate_chrome_trace",
    "validate_events_jsonl",
    "validate_trace_dir",
    "write_chrome_trace",
    "write_events_jsonl",
]

#: Observatory symbols resolve lazily (PEP 562): the observatory module
#: pulls stage-model types from ``repro.core``, which itself imports
#: ``repro.sim.monitor`` → ``repro.obs.events`` — an eager import here
#: would close that loop while this package is still initializing.
_OBSERVATORY_EXPORTS = (
    "DEFAULT_SLO",
    "HealthWatchdog",
    "Observatory",
    "SLOConfig",
    "StageDetector",
    "StageTransition",
)
__all__ += list(_OBSERVATORY_EXPORTS)


def __getattr__(name):
    if name in _OBSERVATORY_EXPORTS:
        from . import observatory

        return getattr(observatory, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
