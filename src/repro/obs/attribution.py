"""Tail-latency probes and unavailability attribution.

The paper's availability numbers say *how many* requests were lost per
fault; they never say *why* each one was lost.  This module closes that
gap with two always-on, strictly passive bus subscribers the
:class:`~repro.obs.observatory.Observatory` bundles into every campaign
cell:

* :class:`LatencyProbe` — folds every completed request's latency into
  streaming P² sketches (:mod:`repro.obs.sketch`), overall and per
  online stage (A–G from the :class:`~repro.obs.observatory.StageDetector`),
  so the report can show p50/p95/p99/p999 bands per (version, fault,
  stage) without storing raw samples.

* :class:`AttributionProbe` — charges every lost request (reject or
  timeout) and every SLO-violating slow success to the *mechanism* that
  plausibly caused it, by overlapping the request's lifetime with the
  mechanism windows the event stream exposes:

  =====================  ============================================
  mechanism              charged when the request's lifetime overlaps
  =====================  ============================================
  ``fail-fast``          (rejects always: the kernel RST / backlog
                         shed is the fail-fast error return itself)
  ``operator-reset``     the window after an "operator-reset" mark,
                         while the service restarts
  ``membership-reconfig``  the window after a ``press.membership.exclude``
                         (requests in flight to the excluded node, or
                         racing the ownership handoff)
  ``tcp-retransmit``     a ``tcp.endpoint.retransmit`` fired during the
                         request's lifetime (go-back-N backoff stall)
  ``cache-warmup``       the window after ``press.membership.joined``
                         while the rejoined node refills its cache
  ``unattributed``       none of the above
  =====================  ============================================

  Timeouts are tried against mechanisms in the order reset → reconfig →
  retransmit → warmup (the aggressive mechanisms first); slow successes
  in the order warmup → reset → reconfig → retransmit, because a slow
  *served* request most often paid a disk fetch on a cold cache.

Both probes only read events and accumulate state — they never publish,
schedule, or touch component state — so bundling them cannot change a
run's results (guarded by the determinism tests).  Their accumulated
state rides along in warm-start checkpoints via ``snapshot_state``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from .events import (
    ANNOTATION,
    MEMBERSHIP_EXCLUDE,
    MEMBERSHIP_JOINED,
    TCP_RETRANSMIT,
    WORKLOAD_REQUEST_DONE,
)
from .sketch import QuantileSketch

#: Mechanism labels the attribution report charges losses to.
MECH_FAIL_FAST = "fail-fast"
MECH_RESET = "operator-reset"
MECH_RECONFIG = "membership-reconfig"
MECH_RETRANSMIT = "tcp-retransmit"
MECH_WARMUP = "cache-warmup"
MECH_UNATTRIBUTED = "unattributed"

#: Stable row order for reports and dashboards.
MECHANISMS = (
    MECH_FAIL_FAST,
    MECH_RESET,
    MECH_RECONFIG,
    MECH_RETRANSMIT,
    MECH_WARMUP,
    MECH_UNATTRIBUTED,
)


class LatencyProbe:
    """Per-stage latency sketches fed by ``workload.request.done``.

    Only served (``ok``) requests enter the sketches — a timeout's
    "latency" is the client's timer, not a service time.  The stage key
    is the detector's classification at the instant the request
    *completed*; runs without a detector fall back to a single
    ``"normal"`` bucket.
    """

    SUBSCRIBES = (WORKLOAD_REQUEST_DONE,)

    def __init__(self, detector=None):
        self.detector = detector
        self.overall = QuantileSketch()
        self.by_stage: Dict[str, QuantileSketch] = {}
        self.outcomes: Dict[str, int] = {}

    def attach(self, bus) -> "LatencyProbe":
        bus.subscribe(self._on_event, names=list(self.SUBSCRIBES))
        return self

    def _on_event(self, event) -> None:
        f = event.fields
        outcome = f["outcome"]
        self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
        if outcome != "ok":
            return
        latency = f["latency"]
        self.overall.observe(latency)
        stage = self.detector.stage if self.detector is not None else "normal"
        sketch = self.by_stage.get(stage)
        if sketch is None:
            sketch = self.by_stage[stage] = QuantileSketch()
        sketch.observe(latency)

    def summary(self) -> dict:
        """JSON-ready digest stored in cell payloads."""
        return {
            "outcomes": {k: self.outcomes[k] for k in sorted(self.outcomes)},
            "overall": self.overall.to_dict(),
            "by_stage": {
                stage: sketch.to_dict()
                for stage, sketch in sorted(self.by_stage.items())
            },
        }

    # -- snapshot support (see repro.sim.snapshot) ---------------------
    def snapshot_state(self) -> dict:
        return {
            "outcomes": dict(sorted(self.outcomes.items())),
            "overall": self.overall.snapshot_state(),
            "by_stage": {
                stage: sketch.snapshot_state()
                for stage, sketch in sorted(self.by_stage.items())
            },
        }


@dataclass(frozen=True)
class AttributionConfig:
    """Mechanism window widths (seconds of sim time)."""

    #: how long after an exclude the reconfiguration still claims losses
    reconfig_window: float = 5.0
    #: how long after a rejoin the cold cache still claims slowness
    warmup_window: float = 20.0
    #: how long after an operator reset the restart claims losses
    reset_window: float = 30.0
    #: an ``ok`` request slower than this violates the latency SLO
    slo_latency: float = 1.0
    #: retransmit timestamps older than this never overlap a request
    #: lifetime any more and are pruned (client request timeout + slack)
    rto_horizon: float = 10.0

    def to_dict(self) -> dict:
        return {
            "reconfig_window": self.reconfig_window,
            "warmup_window": self.warmup_window,
            "reset_window": self.reset_window,
            "slo_latency": self.slo_latency,
            "rto_horizon": self.rto_horizon,
        }


DEFAULT_ATTRIBUTION = AttributionConfig()


class AttributionProbe:
    """Charges every lost / SLO-violating request to a mechanism."""

    SUBSCRIBES = (
        WORKLOAD_REQUEST_DONE,
        MEMBERSHIP_EXCLUDE,
        MEMBERSHIP_JOINED,
        TCP_RETRANSMIT,
        ANNOTATION,
    )

    def __init__(self, config: AttributionConfig = DEFAULT_ATTRIBUTION):
        self.config = config
        self.requests = 0
        self.lost: Dict[str, int] = {m: 0 for m in MECHANISMS}
        self.slow: Dict[str, int] = {m: 0 for m in MECHANISMS}
        self._windows: Dict[str, List[Tuple[float, float]]] = {
            MECH_RESET: [],
            MECH_RECONFIG: [],
            MECH_WARMUP: [],
        }
        self._rto_times: Deque[float] = deque()

    def attach(self, bus) -> "AttributionProbe":
        bus.subscribe(self._on_event, names=list(self.SUBSCRIBES))
        return self

    # -- window bookkeeping --------------------------------------------
    def _open_window(self, mech: str, start: float, width: float) -> None:
        windows = self._windows[mech]
        end = start + width
        if windows and windows[-1][1] >= start:
            # Overlapping triggers extend the existing window.
            windows[-1] = (windows[-1][0], max(windows[-1][1], end))
        else:
            windows.append((start, end))

    def _overlaps(self, mech: str, lo: float, hi: float) -> bool:
        return any(s < hi and e > lo for s, e in self._windows[mech])

    def _rto_in(self, lo: float, hi: float) -> bool:
        return any(lo <= t <= hi for t in self._rto_times)

    # -- event handling ------------------------------------------------
    def _on_event(self, event) -> None:
        name = event.name
        if name == WORKLOAD_REQUEST_DONE:
            self._on_done(event.time, event.fields)
        elif name == MEMBERSHIP_EXCLUDE:
            self._open_window(
                MECH_RECONFIG, event.time, self.config.reconfig_window
            )
        elif name == MEMBERSHIP_JOINED:
            self._open_window(
                MECH_WARMUP, event.time, self.config.warmup_window
            )
        elif name == TCP_RETRANSMIT:
            self._rto_times.append(event.time)
            horizon = event.time - self.config.rto_horizon
            while self._rto_times and self._rto_times[0] < horizon:
                self._rto_times.popleft()
        elif name == ANNOTATION:
            if event.fields.get("label") == "operator-reset":
                self._open_window(
                    MECH_RESET, event.time, self.config.reset_window
                )

    def _on_done(self, now: float, fields: dict) -> None:
        self.requests += 1
        outcome = fields["outcome"]
        issued = now - fields["latency"]
        if outcome == "reject":
            # The reject *is* the fail-fast error return.
            self.lost[MECH_FAIL_FAST] += 1
        elif outcome == "timeout":
            self.lost[self._classify(issued, now, self._TIMEOUT_ORDER)] += 1
        elif fields["latency"] > self.config.slo_latency:
            self.slow[self._classify(issued, now, self._SLOW_ORDER)] += 1

    _TIMEOUT_ORDER = (MECH_RESET, MECH_RECONFIG, MECH_RETRANSMIT, MECH_WARMUP)
    _SLOW_ORDER = (MECH_WARMUP, MECH_RESET, MECH_RECONFIG, MECH_RETRANSMIT)

    def _classify(self, lo: float, hi: float, order) -> str:
        for mech in order:
            if mech == MECH_RETRANSMIT:
                if self._rto_in(lo, hi):
                    return mech
            elif self._overlaps(mech, lo, hi):
                return mech
        return MECH_UNATTRIBUTED

    # -- results -------------------------------------------------------
    @property
    def total_lost(self) -> int:
        return sum(self.lost.values())

    @property
    def total_slow(self) -> int:
        return sum(self.slow.values())

    def summary(self) -> dict:
        """The per-mechanism availability-cost table for this run.

        ``lost_fraction`` is the share of *all* requests the mechanism
        cost the service — the per-mechanism slice of (1 - availability).
        """
        n = self.requests
        table = {}
        for mech in MECHANISMS:
            lost, slow = self.lost[mech], self.slow[mech]
            table[mech] = {
                "lost": lost,
                "slow": slow,
                "charged": lost + slow,
                "lost_fraction": (lost / n) if n else 0.0,
            }
        return {
            "requests": n,
            "total_lost": self.total_lost,
            "total_slow": self.total_slow,
            "unavailability": (self.total_lost / n) if n else 0.0,
            "mechanisms": table,
            "config": self.config.to_dict(),
        }

    # -- snapshot support (see repro.sim.snapshot) ---------------------
    def snapshot_state(self) -> dict:
        return {
            "requests": self.requests,
            "lost": dict(self.lost),
            "slow": dict(self.slow),
            "windows": {m: list(w) for m, w in sorted(self._windows.items())},
            "rto_times": list(self._rto_times),
            "config": self.config.to_dict(),
        }
