"""A structured, sim-time-stamped event bus for the simulation.

Components publish named events through :class:`EventBus`; subscribers
receive them synchronously, in publish order — which, because every
publish happens inside an engine timer callback, is exactly the engine's
deterministic timer order.  With no subscriber attached, ``publish`` is
a dict lookup and a return: cheap enough to leave in every hot path.

Publishing never schedules engine events, touches RNG streams, or
mutates component state, so attaching a subscriber cannot perturb a run:
the observer effect is zero by construction (guarded by
``tests/obs/test_determinism.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

Subscriber = Callable[["SimEvent"], None]


@dataclass(frozen=True, slots=True)
class SimEvent:
    """One published event: what happened, where, and at what sim time."""

    time: float
    seq: int
    name: str
    node: str = ""
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        d = {"time": self.time, "seq": self.seq, "name": self.name}
        if self.node:
            d["node"] = self.node
        if self.fields:
            d["fields"] = self.fields
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "SimEvent":
        return cls(
            time=float(d["time"]),
            seq=int(d["seq"]),
            name=str(d["name"]),
            node=str(d.get("node", "")),
            fields=dict(d.get("fields", {})),
        )


class EventBus:
    """Publish/subscribe hub bound to one :class:`~repro.sim.engine.Engine`.

    Subscribers registered with ``names=None`` see every event; those
    registered with a name list see only those names.  Delivery is
    synchronous and exception-isolated: a subscriber that raises is
    counted in ``subscriber_errors`` and the run continues.
    """

    def __init__(self, engine) -> None:
        self.engine = engine
        self._all: List[Subscriber] = []
        self._by_name: Dict[str, List[Subscriber]] = {}
        self._seq = 0
        self.published = 0
        self.subscriber_errors = 0

    @property
    def active(self) -> bool:
        """True if at least one subscriber is attached (any scope)."""
        return bool(self._all) or bool(self._by_name)

    def subscribe(
        self, fn: Subscriber, names: Optional[Iterable[str]] = None
    ) -> Subscriber:
        """Register ``fn`` for all events, or just the given names."""
        if names is None:
            self._all.append(fn)
        else:
            for name in names:
                self._by_name.setdefault(name, []).append(fn)
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        """Remove ``fn`` everywhere it is registered."""
        if fn in self._all:
            self._all.remove(fn)
        for name in list(self._by_name):
            subs = self._by_name[name]
            if fn in subs:
                subs.remove(fn)
            if not subs:
                del self._by_name[name]

    def publish(self, name: str, node: str = "", **fields) -> Optional[SimEvent]:
        """Publish one event; returns it, or None on the fast path.

        The fast path — no subscriber cares about ``name`` — does not
        build the event object at all.
        """
        named = self._by_name.get(name)
        if not named and not self._all:
            return None
        self._seq += 1
        event = SimEvent(
            time=self.engine.now, seq=self._seq, name=name, node=node, fields=fields
        )
        self.published += 1
        for fn in self._all:
            try:
                fn(event)
            except Exception:
                self.subscriber_errors += 1
        if named:
            for fn in list(named):
                try:
                    fn(event)
                except Exception:
                    self.subscriber_errors += 1
        return event


class EventRecorder:
    """A subscriber that keeps per-name counts and (optionally) the events.

    ``keep_events=False`` gives the compact always-on campaign telemetry:
    just counts, no per-event storage.
    """

    def __init__(self, keep_events: bool = True) -> None:
        self.keep_events = keep_events
        self.events: List[SimEvent] = []
        self.counts: Dict[str, int] = {}

    def __call__(self, event: SimEvent) -> None:
        self.counts[event.name] = self.counts.get(event.name, 0) + 1
        if self.keep_events:
            self.events.append(event)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def attach(self, bus: EventBus) -> "EventRecorder":
        """Subscribe to every event on ``bus``; returns self for chaining."""
        bus.subscribe(self)
        return self
