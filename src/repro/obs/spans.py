"""Request-scoped causal tracing: spans, one tree per client request.

The event bus (:mod:`repro.obs.bus`) answers "what happened, when"; it
cannot answer "where did *this* request's 4.1 seconds go".  Spans do: a
span is an interval of simulated time attributed to one request (the
*trace* — trace id == client request id), nested under the span that
caused it.  The client opens the root span when it issues a request;
the HTTP frame carries the trace id across the fabric; every hop the
request touches — fabric transit, server handling, intra-cluster
forwarding, disk fetches, transport messages with their retransmission
history — opens a child span, so the finished tree decomposes the
client-observed latency hop by hop (see :func:`critical_path`).

Like the bus, the collector is an *attach point* on the engine
(``engine.spans``), and every instrumentation site guards with::

    spans = self.engine.spans
    if spans is not None:
        ...

so a run with tracing disabled pays exactly one attribute load per
would-be span — the same zero-subscriber fast path the bus uses, and
the reason span-disabled runs are byte-identical to the seed timeline
(the collector only ever *observes*; it never schedules, mutates
component state, or perturbs iteration order).

Correlation across components goes through *keys* held inside the
collector (``("msg", msg_id)``, ``("net", frame_id)``, ...): the
sender opens a keyed span, the receiver (or the fabric's loss path)
closes it by key.  Components carry no span state of their own beyond
the ``trace_id`` slots on :class:`~repro.net.packet.Frame` and
:class:`~repro.transports.base.Message`.

Causality quirks the model makes explicit instead of hiding:

* a span whose cause is a *finished* request (a retransmitted response
  still in flight after the client timed out, a cache-update broadcast
  riding on a completed fetch) parents to the closed root and is marked
  ``late`` — it belongs to the tree but lies outside the root interval;
* a span still open when the simulation ends (a frame lost mid-flight,
  a forward stranded by a membership exclusion) is closed by
  :meth:`SpanCollector.finish` with status ``"dropped"`` — nothing is
  silently discarded, which is what lets the validator insist that
  every opened span is accounted for.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Span outcome statuses.  "ok" and domain-specific terminal states are
#: set by the instrumentation sites; "dropped" is reserved for
#: :meth:`SpanCollector.finish` closing spans the simulation abandoned.
STATUS_OPEN = "open"
STATUS_OK = "ok"
STATUS_DROPPED = "dropped"


class Span:
    """One attributed interval of simulated time."""

    __slots__ = (
        "sid",
        "trace",
        "parent",
        "name",
        "node",
        "start",
        "end",
        "status",
        "late",
        "notes",
    )

    def __init__(
        self,
        sid: int,
        trace: int,
        parent: Optional[int],
        name: str,
        node: Optional[str],
        start: float,
        late: bool,
    ):
        self.sid = sid
        self.trace = trace
        self.parent = parent  # parent sid, None for the root
        self.name = name
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.status = STATUS_OPEN
        self.late = late
        self.notes: Dict[str, Any] = {}

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_record(self) -> dict:
        """JSON-ready export form (``<label>.spans.jsonl`` rows)."""
        out = {
            "sid": self.sid,
            "trace": self.trace,
            "parent": self.parent,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "status": self.status,
        }
        if self.late:
            out["late"] = True
        if self.notes:
            out["notes"] = self.notes
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.end:.6f}" if self.end is not None else "…"
        return (
            f"<Span #{self.sid} trace={self.trace} {self.name}"
            f" [{self.start:.6f}, {end}] {self.status}>"
        )


class SpanCollector:
    """Builds span trees as the simulation runs.

    Deterministic by construction: span ids are assignment order, every
    timestamp is simulated time handed in by the caller, and sampling is
    a pure function of the trace id (``trace % sample_every == 0``) —
    so two runs of the same seed produce byte-identical span files.
    """

    def __init__(self, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.sample_every = int(sample_every)
        self.spans: List[Span] = []
        #: open spans per trace, innermost last — the default parent.
        self._open: Dict[int, List[Span]] = {}
        #: root span per trace (stays here after it closes, for ``late``
        #: parenting of post-completion causality).
        self._roots: Dict[int, Span] = {}
        #: open keyed spans for cross-component close (("msg", id), ...).
        self._keyed: Dict[Tuple, Span] = {}

    # ------------------------------------------------------------------
    # Hot-path entry points
    # ------------------------------------------------------------------
    def wants(self, trace: int) -> bool:
        """Is this trace sampled?  Every entry point gates on it."""
        return trace % self.sample_every == 0

    def start(
        self,
        trace: int,
        name: str,
        t: float,
        node: Optional[str] = None,
        key: Optional[Tuple] = None,
        **notes: Any,
    ) -> Optional[Span]:
        """Open a span; returns ``None`` when the trace is not sampled.

        The parent is the innermost span of the trace still open.  With
        none open, the first span of a trace becomes its root; later
        ones parent to the (closed) root and are marked ``late``.
        """
        if trace % self.sample_every != 0:
            return None
        stack = self._open.get(trace)
        late = False
        if stack:
            parent: Optional[int] = stack[-1].sid
        else:
            root = self._roots.get(trace)
            if root is None:
                parent = None
            else:
                parent = root.sid
                late = True
        span = Span(len(self.spans), trace, parent, name, node, t, late)
        if notes:
            span.notes.update(notes)
        self.spans.append(span)
        if parent is None:
            self._roots[trace] = span
        if stack is None:
            self._open[trace] = [span]
        else:
            stack.append(span)
        if key is not None:
            self._keyed[key] = span
        return span

    def end(
        self,
        span: Optional[Span],
        t: float,
        status: str = STATUS_OK,
        **notes: Any,
    ) -> None:
        """Close ``span`` (a no-op on ``None``, so call sites can pass
        the result of :meth:`start`/:meth:`find` through unguarded)."""
        if span is None or span.end is not None:
            return
        span.end = t
        span.status = status
        if notes:
            span.notes.update(notes)
        stack = self._open.get(span.trace)
        if stack is not None:
            try:
                stack.remove(span)
            except ValueError:
                pass
            if not stack:
                del self._open[span.trace]
        for key, open_span in list(self._keyed.items()):
            if open_span is span:
                del self._keyed[key]

    def find(self, key: Tuple) -> Optional[Span]:
        """The open keyed span, or ``None`` (closed, unsampled, never
        opened — the call sites treat all three the same way)."""
        return self._keyed.get(key)

    def end_key(
        self, key: Tuple, t: float, status: str = STATUS_OK, **notes: Any
    ) -> None:
        self.end(self._keyed.get(key), t, status, **notes)

    def note(self, span: Optional[Span], **notes: Any) -> None:
        """Annotate an open span in place (no-op on ``None``)."""
        if span is not None:
            span.notes.update(notes)

    def bump(self, span: Optional[Span], field: str, by: int = 1) -> None:
        """Increment a counter annotation (retransmits, resubmits...)."""
        if span is not None:
            span.notes[field] = span.notes.get(field, 0) + by

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finish(self, t: float) -> None:
        """The simulation ended: close abandoned spans as ``dropped``.

        Idempotent — the observatory calls it once per run, but tests
        may call it again after inspecting.
        """
        for stack in list(self._open.values()):
            for span in list(stack):
                self.end(span, t, STATUS_DROPPED)
        self._open.clear()
        self._keyed.clear()

    @property
    def n_traces(self) -> int:
        return len(self._roots)

    def summary(self) -> dict:
        """Digest for telemetry payloads (deterministic key order)."""
        by_status: Dict[str, int] = {}
        for span in self.spans:
            by_status[span.status] = by_status.get(span.status, 0) + 1
        return {
            "spans": len(self.spans),
            "traces": len(self._roots),
            "sample_every": self.sample_every,
            "by_status": dict(sorted(by_status.items())),
        }


# ----------------------------------------------------------------------
# Invariants — shared by `python -m repro trace-validate` and the tests
# ----------------------------------------------------------------------


def check_span_invariants(records: Iterable[dict]) -> List[str]:
    """Validate exported span records; returns human-readable problems.

    The contract every exported span file must satisfy:

    * every span closed, or explicitly marked ``dropped``;
    * every child starts within its parent's interval (``late`` spans
      are exempt from the upper bound — they are *declared* to start
      after the root closed — but never from the lower);
    * no orphans: every span's parent exists, parents belong to the
      same trace, and every trace has exactly one root.
    """
    problems: List[str] = []
    by_sid: Dict[int, dict] = {}
    roots: Dict[int, int] = {}
    for rec in records:
        sid = rec["sid"]
        if sid in by_sid:
            problems.append(f"span #{sid}: duplicate sid")
            continue
        by_sid[sid] = rec
    for sid, rec in sorted(by_sid.items()):
        trace, name = rec["trace"], rec["name"]
        where = f"span #{sid} ({name}, trace {trace})"
        end = rec.get("end")
        if end is None:
            problems.append(f"{where}: never closed")
        elif rec.get("status") == STATUS_OPEN:
            problems.append(f"{where}: closed but status is 'open'")
        if end is not None and end < rec["start"]:
            problems.append(
                f"{where}: ends at {end} before it starts ({rec['start']})"
            )
        parent_sid = rec.get("parent")
        if parent_sid is None:
            if trace in roots:
                problems.append(
                    f"{where}: second root (first is #{roots[trace]})"
                )
            else:
                roots[trace] = sid
            continue
        parent = by_sid.get(parent_sid)
        if parent is None:
            problems.append(f"{where}: parent #{parent_sid} does not exist")
            continue
        if parent["trace"] != trace:
            problems.append(
                f"{where}: parent #{parent_sid} belongs to trace "
                f"{parent['trace']}"
            )
        if rec["start"] < parent["start"]:
            problems.append(
                f"{where}: starts at {rec['start']} before parent "
                f"#{parent_sid} ({parent['start']})"
            )
        p_end = parent.get("end")
        if (
            p_end is not None
            and rec["start"] > p_end
            and not rec.get("late")
        ):
            problems.append(
                f"{where}: starts at {rec['start']} after parent "
                f"#{parent_sid} ended ({p_end}) without a 'late' mark"
            )
    for rec in by_sid.values():
        if rec["trace"] not in roots:
            problems.append(
                f"span #{rec['sid']}: trace {rec['trace']} has no root"
            )
    return problems


# ----------------------------------------------------------------------
# Critical-path extraction
# ----------------------------------------------------------------------


def critical_path(spans: Iterable[Span]) -> dict:
    """Decompose request latency into per-hop *self time*.

    A span's self time is its duration minus the time covered by its
    children (clamped to the span's own interval; overlapping children
    are merged, so concurrent fan-out is not double-counted).  Summed
    per span name over all completed traces, this answers the question
    the tail sketches raise: *where* do the slow requests spend their
    time — on the wire, in retransmission gaps, on disk, in forwarding?

    ``late`` spans are excluded from their parent's decomposition (they
    lie outside the root interval by definition) but still reported
    under their own name, so post-completion work (retransmitted
    responses, cache-update broadcasts) stays visible.
    """
    spans = list(spans)
    children: Dict[int, List[Span]] = {}
    for span in spans:
        if span.parent is not None and not span.late:
            children.setdefault(span.parent, []).append(span)

    hops: Dict[str, Dict[str, float]] = {}
    roots = 0
    root_total = 0.0
    for span in spans:
        if span.end is None:
            continue
        if span.parent is None:
            roots += 1
            root_total += span.duration
        covered = _covered(span, children.get(span.sid, ()))
        self_time = max(0.0, span.duration - covered)
        slot = hops.setdefault(
            span.name, {"count": 0, "self_time": 0.0, "span_time": 0.0}
        )
        slot["count"] += 1
        slot["self_time"] += self_time
        slot["span_time"] += span.duration
    for slot in hops.values():
        slot["self_time"] = round(slot["self_time"], 9)
        slot["span_time"] = round(slot["span_time"], 9)
    return {
        "traces": roots,
        "total_latency": round(root_total, 9),
        "hops": dict(sorted(hops.items())),
    }


def _covered(span: Span, kids: Iterable[Span]) -> float:
    """Total time within ``span`` covered by ``kids`` (union of
    intervals, clamped to the parent's own interval)."""
    intervals = []
    p_end = span.end if span.end is not None else span.start
    for kid in kids:
        lo = max(kid.start, span.start)
        hi = min(kid.end if kid.end is not None else p_end, p_end)
        if hi > lo:
            intervals.append((lo, hi))
    if not intervals:
        return 0.0
    intervals.sort()
    total = 0.0
    cur_lo, cur_hi = intervals[0]
    for lo, hi in intervals[1:]:
        if lo > cur_hi:
            total += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        elif hi > cur_hi:
            cur_hi = hi
    total += cur_hi - cur_lo
    return total
