"""Streaming quantile sketches for per-request latency (stdlib only).

The paper reports availability and throughput averages; what makes the
TCP-vs-VIA comparison *interpretable* is the tail — the p95/p99/p999 of
client-observed request latency per stage, where TCP's retransmission
backoff and VIA's fail-fast rejections pull in opposite directions.
Recording every latency sample per cell would bloat the result store
(a standard-scale cell completes tens of thousands of requests), so the
observatory folds each sample into a fixed-size streaming sketch
instead.

The estimator is the P² algorithm (Jain & Chlamtac, CACM 1985): five
markers per tracked quantile, updated with a piecewise-parabolic height
adjustment — O(1) memory and time per observation, no buffers beyond
the first five samples, and fully deterministic (same sample sequence,
same estimate), which keeps warm/cold and serial/parallel campaign
parity intact.  The same no-scipy constraint as
:mod:`repro.experiments.repeaters` applies: stdlib ``math`` only.

Accuracy is what P² promises, not an order statistic: a few percent of
the true quantile on smooth distributions, looser on pathological ones.
The hypothesis suite (``tests/obs/test_sketch.py``) pins the envelope
against exact percentiles on synthetic distributions.  Exactness where
it matters is preserved structurally: ``min``/``max`` are exact, and
sketches with five or fewer samples report exact order statistics.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: The campaign's standard latency grid: median plus the tails the
#: paper's availability story turns on.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99, 0.999)


class P2Quantile:
    """One P² marker bank estimating a single quantile ``p``."""

    __slots__ = ("p", "_q", "_n", "_np", "_dn", "count")

    def __init__(self, p: float):
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self.count = 0
        self._q: List[float] = []  # marker heights
        self._n: List[float] = []  # marker positions (1-based)
        self._np: List[float] = []  # desired positions
        self._dn: List[float] = []  # desired position increments

    def observe(self, x: float) -> None:
        self.count += 1
        q, n = self._q, self._n
        if self.count <= 5:
            q.append(x)
            q.sort()
            if self.count == 5:
                p = self.p
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._np = [1.0, 1 + 2 * p, 1 + 4 * p, 3 + 2 * p, 5.0]
                self._dn = [0.0, p / 2, p, (1 + p) / 2, 1.0]
            return

        # Locate the cell x falls in and bump the outer markers.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        np_, dn = self._np, self._dn
        for i in range(5):
            np_[i] += dn[i]

        # Nudge the three middle markers toward their desired positions
        # with the piecewise-parabolic (P²) interpolation, falling back
        # to linear when the parabola would leave the bracketing cell.
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                s = 1.0 if d >= 0 else -1.0
                qp = self._parabolic(i, s)
                if q[i - 1] < qp < q[i + 1]:
                    q[i] = qp
                else:
                    q[i] = self._linear(i, s)
                n[i] += s

    def _parabolic(self, i: int, s: float) -> float:
        q, n = self._q, self._n
        return q[i] + s / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + s)
            * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - s)
            * (q[i] - q[i - 1])
            / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, s: float) -> float:
        q, n = self._q, self._n
        j = i + int(s)
        return q[i] + s * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """Current estimate (exact order statistic below six samples)."""
        if self.count == 0:
            return float("nan")
        q = self._q
        if self.count <= 5:
            # Nearest-rank on the sorted buffer.
            idx = max(0, min(len(q) - 1, round(self.p * (len(q) - 1))))
            return q[idx]
        return q[2]


class QuantileSketch:
    """A bank of P² estimators plus exact count/min/max/mean.

    ``observe`` is the hot-path entry point — one call per completed
    request — and costs a handful of float compares per tracked
    quantile.  ``to_dict`` emits the JSON-ready digest stored in cell
    payloads and aggregated by the campaign report.
    """

    __slots__ = ("quantiles", "_marks", "count", "sum", "min", "max")

    def __init__(self, quantiles: Sequence[float] = DEFAULT_QUANTILES):
        self.quantiles: Tuple[float, ...] = tuple(quantiles)
        self._marks = [P2Quantile(p) for p in self.quantiles]
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, x: float) -> None:
        self.count += 1
        self.sum += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x
        for mark in self._marks:
            mark.observe(x)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def quantile(self, p: float) -> float:
        for mark in self._marks:
            if mark.p == p:
                return mark.value
        raise KeyError(f"quantile {p} not tracked (have {self.quantiles})")

    @staticmethod
    def _label(p: float) -> str:
        # 0.5 -> "p50", 0.999 -> "p999": the report/dashboard key style
        # (percent, with the decimal point dropped for sub-percent tails).
        percent = f"{p * 100:.6f}".rstrip("0").rstrip(".")
        return "p" + percent.replace(".", "")

    def to_dict(self) -> dict:
        out: Dict[str, object] = {
            "count": self.count,
            "mean": self.mean if self.count else None,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }
        for mark in self._marks:
            out[self._label(mark.p)] = mark.value if self.count else None
        return out

    # -- snapshot support (see repro.sim.snapshot) ---------------------
    def snapshot_state(self) -> dict:
        """Full marker state, so warm/cold digests agree mid-stream."""
        return {
            "quantiles": list(self.quantiles),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "marks": [
                {
                    "q": list(m._q),
                    "n": list(m._n),
                    "np": list(m._np),
                    "dn": list(m._dn),
                    "count": m.count,
                }
                for m in self._marks
            ],
        }
