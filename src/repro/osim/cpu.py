"""The server main thread as a serial work queue.

PRESS is one coordinating thread plus helpers; every unit of server work
(parse a request, handle an intra-cluster message, send a response) is a
work item with a CPU cost.  The queue:

* executes items FIFO, one at a time — throughput emerges from the sum of
  item costs;
* can **block** mid-stream on an event (a TCP send with a full socket
  buffer, a VIA send with no flow-control credits) — this is precisely how
  a single stalled peer freezes a whole node in the paper's experiments;
* can be **frozen** (SIGSTOP, node hang) and later resumed;
* can be **killed** (process crash, node crash), dropping all queued work.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..sim.engine import Engine, Event, Timer


def _noop() -> None:
    """Placeholder body for pure CPU-charge items."""


#: Shared empty argument tuple for no-arg items (avoids rebuilding one
#: per submission on the hot path).
_NO_ARGS: tuple = ()


class WorkQueue:
    """Serial executor with cost-weighted items, blocking, freeze, kill."""

    def __init__(self, engine: Engine, name: str = "cpu"):
        self.engine = engine
        self.name = name
        self._items: Deque[tuple] = deque()
        self._busy = False
        self._frozen = False
        self._dead = False
        self._block_event: Optional[Event] = None
        self._completion: Optional[Timer] = None
        self._current: Optional[tuple] = None
        self.items_executed = 0
        self.busy_time = 0.0

    # -- state -------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return not self._dead

    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def blocked(self) -> bool:
        return self._block_event is not None

    @property
    def depth(self) -> int:
        return len(self._items)

    # -- submission ----------------------------------------------------------
    def submit(self, cost: float, fn: Callable, *args) -> None:
        """Queue ``fn(*args)`` to run after ``cost`` seconds of CPU time.

        Passing arguments positionally (rather than closing over them)
        keeps the per-request path free of closure allocation and keeps
        queued work picklable for simulation snapshots.
        """
        if self._dead:
            return
        self._items.append((cost, fn, args))
        self._maybe_start()

    def submit_front(self, cost: float, fn: Callable, *args) -> None:
        """Queue at the head (priority work such as error handling)."""
        if self._dead:
            return
        self._items.appendleft((cost, fn, args))
        self._maybe_start()

    def charge(self, cost: float) -> None:
        """Consume ``cost`` seconds of CPU before the next queued item.

        Called from inside a running work item to account for work it
        performed synchronously (e.g. the send-path cost of a message it
        just transmitted).
        """
        if self._dead or cost <= 0:
            return
        self._items.appendleft((cost, _noop, _NO_ARGS))
        self._maybe_start()

    # -- blocking ------------------------------------------------------------
    def block_on(self, event: Event) -> None:
        """Stall the queue until ``event`` triggers.

        Intended to be called from inside a running work item's ``fn``; no
        further items execute until the event fires.  A failed event also
        unblocks (the failure reason has been handled by whoever failed
        it — e.g. a broken connection whose error path runs separately).
        """
        if self._dead:
            return
        if self._block_event is not None:
            raise RuntimeError(f"{self.name}: already blocked")
        self._block_event = event
        event.add_callback(self._unblocked)

    def _unblocked(self, event: Event) -> None:
        if self._block_event is not event:
            return  # stale wake-up after kill/restart
        self._block_event = None
        if not self._dead and not self._frozen:
            self._maybe_start()

    # -- freeze / kill --------------------------------------------------------
    def freeze(self) -> None:
        """SIGSTOP semantics: stop consuming work, keep it queued."""
        self._frozen = True
        if self._completion is not None and self._completion.active:
            # The in-flight item is re-queued at the head; its cost is
            # re-paid on resume (costs are microseconds — negligible).
            self._completion.cancel()
            self._completion = None
            if self._current is not None:
                self._items.appendleft(self._current)
                self._current = None
            self._busy = False

    def unfreeze(self) -> None:
        self._frozen = False
        if not self._dead and self._block_event is None:
            self._maybe_start()

    def kill(self) -> None:
        """Process death: drop all work, detach from any block event."""
        self._dead = True
        self._items.clear()
        self._block_event = None
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None
        self._busy = False

    def resurrect(self) -> None:
        """Fresh process after a restart: empty, unblocked, runnable."""
        self._dead = False
        self._frozen = False
        self._block_event = None
        self._items.clear()
        self._busy = False

    # -- execution ----------------------------------------------------------
    def _maybe_start(self) -> None:
        if (
            self._busy
            or self._frozen
            or self._dead
            or self._block_event is not None
            or not self._items
        ):
            return
        item = self._items.popleft()
        self._busy = True
        self._current = item
        self.busy_time += item[0]
        self._completion = self.engine.call_after(
            item[0], self._complete, item
        )

    def _complete(self, item: tuple) -> None:
        self._completion = None
        self._current = None
        if self._dead:
            return
        if self._frozen:
            # Freeze raced with completion; defer the item.
            self._items.appendleft((0.0, item[1], item[2]))
            self._busy = False
            return
        self._busy = False
        self.items_executed += 1
        item[1](*item[2])  # fn may block the queue or submit more work
        self._maybe_start()

    def snapshot_state(self) -> dict:
        """Deterministic-state digest input (see repro.sim.snapshot)."""
        return {
            "depth": len(self._items),
            "busy": self._busy,
            "frozen": self._frozen,
            "dead": self._dead,
            "blocked": self._block_event is not None,
            "items_executed": self.items_executed,
            "busy_time": self.busy_time,
        }

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` spent executing items."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
