"""Kernel memory and pinnable-memory accounting.

Two memory subsystems matter to the paper's resource-exhaustion faults:

* **Kernel allocation (skbufs).**  TCP allocates socket buffers (skbufs)
  dynamically per packet.  The injected "kernel memory allocation fault"
  makes these allocations fail for a period — the trap Mendosus installed
  on skbuf allocation.  VIA pre-allocates its buffers at channel setup and
  never touches this allocator on the data path.

* **Pinnable physical memory.**  VIA registration pins pages.  Kernels cap
  pinned pages at a fraction of physical memory (Linux 2.2: half); the
  injected "memory pinning fault" lowers the effective threshold, making
  new pin requests fail — which only hurts versions that pin dynamically
  (VIA-PRESS-5's zero-copy file cache).
"""

from __future__ import annotations

from typing import Optional


class AllocationError(Exception):
    """Kernel memory allocation failed (ENOMEM)."""


class PinError(Exception):
    """Memory registration failed: out of pinnable physical pages."""


class KernelMemory:
    """The kernel's dynamic allocator as seen by the network stack."""

    def __init__(self, total_bytes: int = 64 * 1024 * 1024):
        self.total_bytes = total_bytes
        self.allocated = 0
        self._fault_active = False
        self.failed_allocations = 0

    # -- fault control ---------------------------------------------------
    def inject_allocation_fault(self) -> None:
        """All subsequent allocations fail until :meth:`clear_fault`."""
        self._fault_active = True

    def clear_fault(self) -> None:
        self._fault_active = False

    @property
    def fault_active(self) -> bool:
        return self._fault_active

    # -- allocator ---------------------------------------------------------
    def alloc(self, nbytes: int) -> bool:
        """Try to allocate; returns False on ENOMEM (fault or exhaustion)."""
        if nbytes < 0:
            raise ValueError("allocation size must be >= 0")
        if self._fault_active or self.allocated + nbytes > self.total_bytes:
            self.failed_allocations += 1
            return False
        self.allocated += nbytes
        return True

    def free(self, nbytes: int) -> None:
        if nbytes > self.allocated:
            raise ValueError("freeing more than allocated")
        self.allocated -= nbytes

    def probe(self, nbytes: int) -> bool:
        """Would an allocation of ``nbytes`` succeed right now?

        The network data path uses this instead of paired alloc/free:
        packet buffers live for microseconds, far below the simulation's
        observable resolution, so only the *fault flag* (and gross
        capacity) matters — exactly the hook Mendosus trapped.
        """
        if self._fault_active or self.allocated + nbytes > self.total_bytes:
            self.failed_allocations += 1
            return False
        return True

    @property
    def available(self) -> int:
        return 0 if self._fault_active else self.total_bytes - self.allocated


class PinnableMemory:
    """Pinned-page accounting with a kernel-imposed ceiling.

    ``limit_fraction`` mirrors the Linux 2.2 rule of pinning at most half
    of physical memory.  The fault injector lowers the *effective*
    threshold (as the paper's modified cLAN driver did), failing new pin
    requests while leaving existing registrations intact.
    """

    def __init__(
        self,
        physical_bytes: int = 206 * 1024 * 1024,
        limit_fraction: float = 0.5,
    ):
        if not 0 < limit_fraction <= 1:
            raise ValueError("limit_fraction must be in (0, 1]")
        self.physical_bytes = physical_bytes
        self.limit = int(physical_bytes * limit_fraction)
        self.pinned = 0
        self._fault_limit: Optional[int] = None
        self.failed_pins = 0

    # -- fault control ---------------------------------------------------
    def inject_pin_fault(self, effective_limit: int = 0) -> None:
        """Lower the pin ceiling; pins above it fail until cleared.

        ``effective_limit=0`` means every *new* pin request fails, the
        harshest setting (already-pinned memory is untouched).
        """
        self._fault_limit = effective_limit

    def clear_fault(self) -> None:
        self._fault_limit = None

    @property
    def fault_active(self) -> bool:
        return self._fault_limit is not None

    @property
    def effective_limit(self) -> int:
        if self._fault_limit is None:
            return self.limit
        return min(self.limit, self._fault_limit)

    # -- pin/unpin ---------------------------------------------------------
    def pin(self, nbytes: int) -> bool:
        """Register (pin) ``nbytes``; False when over the effective limit."""
        if nbytes < 0:
            raise ValueError("pin size must be >= 0")
        if self.pinned + nbytes > self.effective_limit:
            self.failed_pins += 1
            return False
        self.pinned += nbytes
        return True

    def unpin(self, nbytes: int) -> None:
        if nbytes > self.pinned:
            raise ValueError("unpinning more than pinned")
        self.pinned -= nbytes

    @property
    def headroom(self) -> int:
        return max(0, self.effective_limit - self.pinned)
