"""Simulated operating system: memory, CPU work queues, processes, nodes."""

from .cpu import WorkQueue
from .memory import AllocationError, KernelMemory, PinError, PinnableMemory
from .node import (
    DEFAULT_DISK_ACCESS_TIME,
    DEFAULT_DISK_THREADS,
    DEFAULT_RAM_BYTES,
    DEFAULT_REBOOT_TIME,
    Node,
)
from .process import ProcessState, RestartDaemon, SimProcess

__all__ = [
    "WorkQueue",
    "KernelMemory",
    "PinnableMemory",
    "AllocationError",
    "PinError",
    "Node",
    "SimProcess",
    "ProcessState",
    "RestartDaemon",
    "DEFAULT_RAM_BYTES",
    "DEFAULT_REBOOT_TIME",
    "DEFAULT_DISK_ACCESS_TIME",
    "DEFAULT_DISK_THREADS",
]
