"""A cluster node: CPU, kernel, NIC, disks, and the hosted process.

The node ties the OS pieces together and implements the machine-level
faults:

* **crash** (hard reboot): the NIC drops off the fabric, the process dies
  without running any cleanup, all queued work vanishes; after
  ``reboot_time`` the machine returns and the restart daemon brings the
  application back up (Mendosus "starts another PRESS process
  automatically").
* **freeze / unfreeze** (node hang): the CPU stops consuming work and the
  hosted process stops, but the NIC stays powered and the kernel keeps
  acknowledging at the TCP level — which is exactly why TCP-PRESS sees no
  connection break during a hang.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..net.nic import Nic
from ..obs.events import NODE_CRASH, NODE_REBOOT
from ..obs.metrics import bound_counter
from ..sim.engine import Engine
from ..sim.resources import Resource
from .cpu import WorkQueue
from .memory import KernelMemory, PinnableMemory
from .process import RestartDaemon, SimProcess

#: Default machine parameters mirror the testbed: PIII-800, 206 MB RAM,
#: two SCSI disks, 3-minute hard reboot.
DEFAULT_RAM_BYTES = 206 * 1024 * 1024
DEFAULT_REBOOT_TIME = 60.0
DEFAULT_DISK_ACCESS_TIME = 0.008  # 10k rpm SCSI, seek + rotation
DEFAULT_DISK_THREADS = 2


class Node:
    """One machine of the cluster (or a client machine)."""

    def __init__(
        self,
        engine: Engine,
        node_id: str,
        nic: Nic,
        ram_bytes: int = DEFAULT_RAM_BYTES,
        reboot_time: float = DEFAULT_REBOOT_TIME,
        restart_delay: float = 5.0,
        disk_threads: int = DEFAULT_DISK_THREADS,
        disk_access_time: float = DEFAULT_DISK_ACCESS_TIME,
    ):
        self.engine = engine
        self.node_id = node_id
        self.nic = nic
        self.kernel_memory = KernelMemory()
        self.pinnable = PinnableMemory(physical_bytes=ram_bytes)
        self.cpu = WorkQueue(engine, name=f"{node_id}.cpu")
        self.process = SimProcess(engine, name=f"{node_id}.press")
        self.daemon = RestartDaemon(engine, self.process, restart_delay)
        self.disks = Resource(engine, capacity=disk_threads)
        self.disk_access_time = disk_access_time
        self.reboot_time = reboot_time
        self.up = True
        self.frozen = False
        self._crashes = bound_counter(engine, "osim.node.crashes", node=node_id)
        self.on_reboot_complete: List[Callable[[], None]] = []

        # The process lifecycle drives the CPU queue: a dead process
        # executes nothing; a stopped one holds its work.
        self.process.on_stop.append(self.cpu.freeze)
        self.process.on_cont.append(self.cpu.unfreeze)
        self.process.on_death.append(self._on_process_death)
        self.process.on_start.append(self.cpu.resurrect)

    def _on_process_death(self, reason: str) -> None:
        """Process lifecycle hook: a dead process executes nothing."""
        self.cpu.kill()

    # ------------------------------------------------------------------
    # Machine-level faults
    # ------------------------------------------------------------------
    def crash(self, transient: bool = True) -> None:
        """Hard reboot.  ``transient=False`` keeps the node down forever."""
        if not self.up:
            return
        self.up = False
        self._crashes.inc()
        bus = self.engine.bus
        if bus is not None:
            bus.publish(NODE_CRASH, node=self.node_id)
        self.nic.power_off()
        self.daemon.disable()
        self.process.exit("node-crash")
        if transient:
            self.engine.call_after(self.reboot_time, self._reboot)

    @property
    def crashes(self) -> int:
        return self._crashes.value

    def _reboot(self) -> None:
        self.up = True
        self.frozen = False
        bus = self.engine.bus
        if bus is not None:
            bus.publish(NODE_REBOOT, node=self.node_id)
        # Fresh kernel: memory faults do not survive a reboot.
        self.kernel_memory = KernelMemory()
        self.pinnable = PinnableMemory(physical_bytes=self.pinnable.physical_bytes)
        self.nic.power_on()
        self.daemon.enable()
        for hook in list(self.on_reboot_complete):
            hook()

    def freeze(self) -> None:
        """Node hang: OS scheduler stops, NIC/kernel ACKs keep flowing."""
        if not self.up or self.frozen:
            return
        self.frozen = True
        self.process.sigstop()

    def unfreeze(self) -> None:
        if not self.frozen:
            return
        self.frozen = False
        self.process.sigcont()

    # ------------------------------------------------------------------
    # Disk service
    # ------------------------------------------------------------------
    def disk_read(self, nbytes: int, done: Callable, *args) -> None:
        """Read ``nbytes`` through a disk thread, then call ``done(*args)``.

        Models the PRESS disk-helper threads: bounded parallelism, fixed
        access latency plus transfer time.  Arguments are passed
        positionally (no closures), so in-flight reads pickle cleanly in
        simulation snapshots.
        """
        grant = self.disks.acquire()
        grant.add_callback(_DiskGrantCb(self, nbytes, done, args))

    def _disk_granted(self, nbytes: int, done: Callable, args: tuple) -> None:
        service = self.disk_access_time + nbytes / 40_000_000  # 40 MB/s
        self.engine.call_after(service, self._disk_done, done, args)

    def _disk_done(self, done: Callable, args: tuple) -> None:
        self.disks.release()
        if self.up and self.process.running:
            done(*args)

    @property
    def operational(self) -> bool:
        """Machine up and the hosted process running (not hung/dead)."""
        return self.up and self.process.running

    def snapshot_state(self) -> dict:
        """Deterministic-state digest input (see repro.sim.snapshot)."""
        return {
            "up": self.up,
            "frozen": self.frozen,
            "process_running": self.process.running,
            "crashes": self._crashes.value,
            "cpu": self.cpu.snapshot_state(),
            "disks_in_use": self.disks.in_use,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "DOWN"
        if self.frozen:
            state = "frozen"
        return f"<Node {self.node_id} {state}>"


class _DiskGrantCb:
    """Pending disk-thread grant continuation (picklable, no closure)."""

    __slots__ = ("node", "nbytes", "done", "args")

    def __init__(self, node: Node, nbytes: int, done: Callable, args: tuple):
        self.node = node
        self.nbytes = nbytes
        self.done = done
        self.args = args

    def __call__(self, _ev) -> None:
        self.node._disk_granted(self.nbytes, self.done, self.args)
