"""Processes, signals, and the restart daemon.

Mendosus injects application-level faults through a per-node daemon: the
daemon starts the server process, sends SIGSTOP/SIGCONT to hang/resume it,
kills it to crash it, and restarts it when it dies (the paper's recovery
path: "recovery, achieved by restarting the application").
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from ..obs.events import PROCESS_EXIT, PROCESS_RESTART
from ..sim.engine import Engine


class ProcessState(enum.Enum):
    RUNNING = "running"
    STOPPED = "stopped"  # SIGSTOP'd
    DEAD = "dead"


class SimProcess:
    """A supervised application process.

    The hosting application wires up lifecycle hooks:

    * ``on_stop`` / ``on_cont`` — SIGSTOP / SIGCONT delivery,
    * ``on_death`` — the process died (crash, fatal error, kill),
    * ``on_start`` — a fresh incarnation began (initial start or restart).

    ``incarnation`` counts starts, letting stale timers from a previous
    life detect that they outlived their process.
    """

    def __init__(self, engine: Engine, name: str):
        self.engine = engine
        self.name = name
        self.state = ProcessState.DEAD
        self.incarnation = 0
        self.on_stop: List[Callable[[], None]] = []
        self.on_cont: List[Callable[[], None]] = []
        self.on_death: List[Callable[[str], None]] = []
        self.on_start: List[Callable[[], None]] = []
        self.death_reason: Optional[str] = None

    def _publish(self, name: str, **fields) -> None:
        bus = getattr(self.engine, "bus", None)
        if bus is not None:
            bus.publish(name, node=self.name, **fields)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self.state is not ProcessState.DEAD:
            raise RuntimeError(f"{self.name}: start while {self.state}")
        self.state = ProcessState.RUNNING
        self.incarnation += 1
        self.death_reason = None
        if self.incarnation > 1:
            self._publish(PROCESS_RESTART, incarnation=self.incarnation)
        for hook in list(self.on_start):
            hook()

    def exit(self, reason: str) -> None:
        """The process terminates itself (fail-fast) or is killed."""
        if self.state is ProcessState.DEAD:
            return
        self.state = ProcessState.DEAD
        self.death_reason = reason
        self._publish(PROCESS_EXIT, reason=reason, incarnation=self.incarnation)
        for hook in list(self.on_death):
            hook(reason)

    # -- signals ------------------------------------------------------------
    def sigstop(self) -> None:
        if self.state is not ProcessState.RUNNING:
            return
        self.state = ProcessState.STOPPED
        for hook in list(self.on_stop):
            hook()

    def sigcont(self) -> None:
        if self.state is not ProcessState.STOPPED:
            return
        self.state = ProcessState.RUNNING
        for hook in list(self.on_cont):
            hook()

    def sigkill(self) -> None:
        self.exit("killed")

    @property
    def running(self) -> bool:
        return self.state is ProcessState.RUNNING

    @property
    def alive(self) -> bool:
        return self.state is not ProcessState.DEAD

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimProcess {self.name} {self.state.value} gen={self.incarnation}>"


class RestartDaemon:
    """Per-node supervisor that restarts a dead process after a delay.

    ``restart_delay`` models the time to restart the application in a
    clean state.  The daemon only acts while ``enabled`` — it is disabled
    during a node crash (no OS to run it) and re-enabled at reboot.
    """

    def __init__(
        self,
        engine: Engine,
        process: SimProcess,
        restart_delay: float = 5.0,
    ):
        self.engine = engine
        self.process = process
        self.restart_delay = restart_delay
        self.enabled = True
        self.restarts = 0
        process.on_death.append(self._schedule_restart)

    def _schedule_restart(self, reason: str) -> None:
        if not self.enabled:
            return
        expected = self.process.incarnation
        self.engine.call_after(self.restart_delay, self._restart, expected)

    def _restart(self, expected_incarnation: int) -> None:
        if not self.enabled:
            return
        if self.process.alive or self.process.incarnation != expected_incarnation:
            return  # somebody else already restarted it
        self.restarts += 1
        self.process.start()

    def disable(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True
        if not self.process.alive:
            self._schedule_restart("daemon-enabled")
