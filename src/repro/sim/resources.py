"""Shared-resource primitives for the simulation.

These model the contention points in the reproduction:

* :class:`Resource` — counted capacity with FIFO waiters (disk threads,
  connection slots).
* :class:`Store` — a FIFO of items with blocking get (message queues).
* :class:`Gate` — open/closed flag processes can wait on (node frozen,
  link down).
* :class:`TokenBucket` — credit pools (VIA flow-control credits).

All primitives hand out :class:`~repro.sim.engine.Event` objects so they can
be awaited from processes or chained with callbacks.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Engine, Event, SimulationError


class ResourceClosed(Exception):
    """The resource was closed while a request was queued."""


class Resource:
    """Counted capacity with FIFO granting.

    ``acquire`` returns an event that succeeds when a unit is granted; the
    holder must call ``release`` exactly once per grant.
    """

    def __init__(self, engine: Engine, capacity: int):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Event] = deque()
        self._closed = False

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        ev = self.engine.event()
        if self._closed:
            ev.fail(ResourceClosed())
        elif self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True when a unit was granted."""
        if self._closed or self.in_use >= self.capacity:
            return False
        self.in_use += 1
        return True

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError("release without matching acquire")
        if self._waiters:
            # Hand the unit straight to the next waiter: in_use stays flat.
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    def close(self) -> None:
        """Fail all queued waiters and reject future acquires."""
        self._closed = True
        while self._waiters:
            self._waiters.popleft().fail(ResourceClosed())


class Store:
    """FIFO of items with blocking ``get`` and optional capacity bound."""

    def __init__(self, engine: Engine, capacity: Optional[int] = None):
        self.engine = engine
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> bool:
        """Add ``item``; returns False (dropping it) when full or closed."""
        if self._closed or self.full:
            return False
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)
        return True

    def get(self) -> Event:
        ev = self.engine.event()
        if self._items:
            ev.succeed(self._items.popleft())
        elif self._closed:
            ev.fail(ResourceClosed())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Any:
        """Pop the head item or return None when empty."""
        return self._items.popleft() if self._items else None

    def drain(self) -> list:
        """Remove and return all queued items."""
        items = list(self._items)
        self._items.clear()
        return items

    def close(self) -> None:
        """Fail blocked getters and reject future puts."""
        self._closed = True
        while self._getters:
            self._getters.popleft().fail(ResourceClosed())


class Gate:
    """A level-triggered open/closed flag.

    ``wait_open`` returns an event that succeeds immediately when the gate
    is open, otherwise when it next opens.  Used to model frozen nodes and
    downed links: work paths wait on the gate instead of polling.
    """

    def __init__(self, engine: Engine, open_: bool = True):
        self.engine = engine
        self._open = open_
        self._waiters: Deque[Event] = deque()

    @property
    def is_open(self) -> bool:
        return self._open

    def open(self) -> None:
        self._open = True
        while self._waiters:
            self._waiters.popleft().succeed()

    def close(self) -> None:
        self._open = False

    def wait_open(self) -> Event:
        ev = self.engine.event()
        if self._open:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev


class TokenBucket:
    """A pool of discrete credits with blocking take.

    Models VIA's receive-descriptor credits: a sender consumes one credit
    per message and blocks when none remain; the receiver returns credits
    as it reposts buffers.
    """

    def __init__(self, engine: Engine, tokens: int, capacity: Optional[int] = None):
        if tokens < 0:
            raise SimulationError("initial tokens must be >= 0")
        self.engine = engine
        self.tokens = tokens
        self.capacity = capacity if capacity is not None else tokens
        self._waiters: Deque[Event] = deque()

    def take(self) -> Event:
        ev = self.engine.event()
        if self.tokens > 0:
            self.tokens -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_take(self) -> bool:
        if self.tokens > 0:
            self.tokens -= 1
            return True
        return False

    def give(self, n: int = 1) -> None:
        for _ in range(n):
            if self._waiters:
                self._waiters.popleft().succeed()
            elif self.tokens < self.capacity:
                self.tokens += 1

    def fail_waiters(self, exc: Exception) -> None:
        """Abort blocked takers (e.g. the peer's connection broke)."""
        while self._waiters:
            self._waiters.popleft().fail(exc)

    @property
    def queued(self) -> int:
        return len(self._waiters)
