"""Process-global id sources that snapshots can capture and restore.

Several modules hand out monotonically increasing ids from module-level
counters: HTTP request ids, transport message ids, TCP connection
generations, VIA channel generations.  The ids are *labels* — nothing
branches on their absolute value — so ordinary runs may start them at
any offset (which is why serial and pool-worker campaigns agree even
though their counters sit at different positions).

Warm-state checkpoints break that innocence.  A restored simulation
carries ids *embedded in live state* (in-flight requests in a client's
pending table, unacked messages, connection generations), while fresh
ids keep coming from the **restoring** process's counter.  When the
restoring counter happens to sit just below the captured in-flight
window, newly issued ids collide with restored ones — a client's
pending entry is silently overwritten and request outcomes are
misattributed, so the continuation diverges from the cold run.  This is
exactly the pool-worker divergence documented in ROADMAP item 3: pool
workers restore with whatever counter position their previous cells
left behind.

The cure is to treat the counters as simulation state: an
:class:`IdSource` is a drop-in replacement for ``itertools.count(1)``
whose position can be read (:func:`global_id_state`) and re-applied
(:func:`restore_global_id_state`).  The warm-start layer embeds the
positions in every checkpoint and restores them before the continuation
runs, so a warm-started cell draws the same ids a cold run would —
warm == cold holds unconditionally, regardless of which process restores.

Only one simulation runs at a time in any process (cells are
process-parallel, not thread-parallel), so rewinding a counter on
restore cannot collide with a concurrent run.
"""

from __future__ import annotations

from typing import Dict

#: Registry of every IdSource by name (import order fixes the contents).
_sources: Dict[str, "IdSource"] = {}


class IdSource:
    """A named, snapshot-aware replacement for ``itertools.count(1)``.

    Supports the iterator protocol (``next(source)``) so call sites keep
    their ``itertools.count`` idiom.  ``peek`` is the value the next
    ``next()`` will return; ``jump(value)`` repositions the counter (the
    restore path).
    """

    __slots__ = ("name", "_next")

    def __init__(self, name: str, start: int = 1):
        if name in _sources:
            raise ValueError(f"duplicate IdSource name {name!r}")
        self.name = name
        self._next = start
        _sources[name] = self

    def __iter__(self) -> "IdSource":
        return self

    def __next__(self) -> int:
        value = self._next
        self._next = value + 1
        return value

    @property
    def peek(self) -> int:
        return self._next

    def jump(self, value: int) -> None:
        """Reposition the counter (used when restoring a checkpoint)."""
        self._next = int(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<IdSource {self.name} next={self._next}>"


def global_id_state() -> Dict[str, int]:
    """Position of every registered id source, keyed by name.

    Captured alongside a simulation snapshot so the restoring process
    can continue the id streams exactly where the captured run stood.
    """
    return {name: src.peek for name, src in sorted(_sources.items())}


def reset_global_ids() -> None:
    """Rewind every registered id source to 1 (a fresh-run boundary).

    The phase-1 drivers call this before building a cluster so the ids a
    run draws are a function of the run alone, not of how many runs the
    process executed before it.  That is what lets exported traces and
    span files embed *raw* request/message ids and still be byte-identical
    across processes, campaign orderings, and warm/cold paths (warm
    restores then overwrite the positions with the captured ones, which
    were themselves produced from a reset).
    """
    for src in _sources.values():
        src.jump(1)


def restore_global_id_state(state: Dict[str, int]) -> None:
    """Re-apply captured counter positions in the restoring process.

    Unknown names are ignored (a checkpoint from a build with fewer
    sources restores cleanly); sources absent from ``state`` keep their
    current position.
    """
    for name, value in state.items():
        src = _sources.get(name)
        if src is not None:
            src.jump(value)
