"""Generator-coroutine processes on top of the event engine.

A process is a generator that ``yield``s things to wait on:

* a float/int — sleep that many simulated seconds,
* an :class:`~repro.sim.engine.Event` — resume when it triggers (the yield
  expression evaluates to the event's value; a failed event re-raises its
  exception inside the generator),
* another :class:`Process` — wait for it to finish (its return value is the
  yield result),
* ``None`` — yield the scheduler for one event-loop turn.

Processes are used for control-flow-heavy logic: client sessions, fault
scenarios, server recovery sequences.  The per-message data path stays on
plain callbacks for speed.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .engine import Engine, Event, SimulationError


class Interrupted(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process:
    """A running generator coroutine.

    A ``Process`` is itself awaitable by other processes: it exposes the
    same ``add_callback`` interface as :class:`Event` and triggers when the
    generator returns (value = the generator's return value) or raises
    (failure).
    """

    __slots__ = ("engine", "name", "_gen", "_done", "_waiting_on", "_defunct")

    def __init__(self, engine: Engine, gen: Generator, name: str = "?"):
        self.engine = engine
        self.name = name
        self._gen = gen
        self._done = Event(engine)
        self._waiting_on: Optional[Event] = None
        self._defunct = False
        engine.call_soon(self._resume, None, None)

    # -- awaitable interface ------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._done.triggered

    @property
    def ok(self) -> bool:
        return self._done.ok

    @property
    def value(self) -> Any:
        return self._done.value

    @property
    def alive(self) -> bool:
        return not self._done.triggered

    def add_callback(self, fn) -> None:
        self._done.add_callback(fn)

    # -- control -------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at its wait point."""
        if not self.alive:
            return
        # Detach from whatever we were waiting on; the stale event callback
        # checks ``_defunct`` via the token object pattern below.
        self._waiting_on = None
        self.engine.call_soon(self._throw, Interrupted(cause))

    def _throw(self, exc: BaseException) -> None:
        if not self.alive:
            return
        try:
            target = self._gen.throw(exc)
        except StopIteration as stop:
            self._done.succeed(stop.value)
            return
        except Interrupted as leaked:
            self._done.fail(leaked)
            return
        except Exception as err:
            self._done.fail(err)
            return
        self._wait_on(target)

    # -- scheduling internals -------------------------------------------
    def _resume(self, event: Optional[Event], token: Any) -> None:
        # A stale wake-up: the process moved on (e.g. was interrupted while
        # sleeping).  ``token`` identifies the wait this callback belongs to.
        if token is not None and token is not self._waiting_on:
            return
        if not self.alive:
            return
        self._waiting_on = None
        try:
            if event is None:
                target = self._gen.send(None)
            elif event.ok:
                target = self._gen.send(event.value)
            else:
                target = self._gen.throw(event.value)
        except StopIteration as stop:
            self._done.succeed(stop.value)
            return
        except Exception as err:
            self._done.fail(err)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        engine = self.engine
        if target is None:
            self._waiting_on = wait = engine.event()
            wait.add_callback(lambda ev, tok=wait: self._resume(ev, tok))
            engine.call_soon(wait.succeed, None)
        elif isinstance(target, (int, float)):
            if target < 0:
                self._fail_now(SimulationError(f"negative sleep {target!r}"))
                return
            self._waiting_on = wait = engine.event()
            wait.add_callback(lambda ev, tok=wait: self._resume(ev, tok))
            engine.call_after(target, wait.succeed, None)
        elif isinstance(target, Event):
            self._waiting_on = target
            target.add_callback(lambda ev, tok=target: self._resume(ev, tok))
        elif isinstance(target, Process):
            self._waiting_on = target._done
            target._done.add_callback(
                lambda ev, tok=target._done: self._resume(ev, tok)
            )
        else:
            self._fail_now(
                SimulationError(f"process {self.name!r} yielded {target!r}")
            )

    def _fail_now(self, exc: Exception) -> None:
        self._gen.close()
        self._done.fail(exc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.triggered else "alive"
        return f"<Process {self.name} {state}>"


def spawn(engine: Engine, gen: Generator, name: str = "?") -> Process:
    """Start ``gen`` as a process on ``engine``."""
    return Process(engine, gen, name=name)


def all_of(engine: Engine, waitables: list) -> Event:
    """Event that succeeds when every waitable has triggered successfully.

    Fails fast with the first failure.  The success value is the list of
    individual values, in input order.
    """
    done = engine.event()
    remaining = len(waitables)
    values: list[Any] = [None] * remaining
    if remaining == 0:
        return done.succeed(values)

    def on_done(index: int, ev) -> None:
        nonlocal remaining
        if done.triggered:
            return
        if not ev.ok:
            done.fail(ev.value)
            return
        values[index] = ev.value
        remaining -= 1
        if remaining == 0:
            done.succeed(values)

    for i, w in enumerate(waitables):
        w.add_callback(lambda ev, i=i: on_done(i, ev))
    return done


def any_of(engine: Engine, waitables: list) -> Event:
    """Event that succeeds with ``(index, value)`` of the first success."""
    done = engine.event()
    if not waitables:
        raise SimulationError("any_of needs at least one waitable")

    def on_done(index: int, ev) -> None:
        if done.triggered:
            return
        if ev.ok:
            done.succeed((index, ev.value))
        else:
            done.fail(ev.value)

    for i, w in enumerate(waitables):
        w.add_callback(lambda ev, i=i: on_done(i, ev))
    return done
