"""Discrete-event simulation engine.

The engine owns the virtual clock and an event heap.  Everything in the
reproduction — network links, TCP retransmission timers, heartbeat protocols,
fault injection schedules, client request streams — is driven by callbacks
scheduled on a single :class:`Engine`.

Two scheduling styles are supported:

* **Callbacks** (`call_at` / `call_after`) — the hot path.  Per-message
  plumbing in the network and transport layers uses plain callbacks to keep
  per-event overhead low.
* **Processes** (:mod:`repro.sim.process`) — generator coroutines layered on
  top of :class:`Event`, used for control logic that reads better as
  sequential code (client sessions, fault scenarios, server recovery).

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a run is
a pure function of its configuration and RNG seed.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Optional


class SimulationError(Exception):
    """Base class for errors raised by the simulation machinery."""


class StopSimulation(Exception):
    """Raised inside a callback to halt :meth:`Engine.run` immediately."""


class Timer:
    """Handle for a scheduled callback.

    A ``Timer`` can be cancelled until it fires; cancellation is O(1) — the
    heap entry is tombstoned rather than removed.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True
        # Drop references so cancelled timers do not pin large objects
        # while they wait to be popped from the heap.
        self.fn = None
        self.args = ()

    @property
    def active(self) -> bool:
        """Still pending: neither cancelled nor already fired."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "Timer") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        return f"<Timer t={self.time:.6f} seq={self.seq} {state}>"


class Event:
    """A one-shot occurrence that callbacks can wait on.

    An event is *triggered* at most once, with either a value (``succeed``)
    or an exception (``fail``).  Callbacks added after triggering fire
    immediately (synchronously), which keeps waiter logic free of
    time-of-check races.
    """

    __slots__ = ("engine", "_callbacks", "triggered", "ok", "value")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._callbacks: Optional[list] = []
        self.triggered = False
        self.ok = False
        self.value: Any = None

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event triggers (now, if already has)."""
        if self.triggered:
            fn(self)
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        self._trigger(True, value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception for waiters to re-raise."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.ok = ok
        self.value = value
        callbacks, self._callbacks = self._callbacks, None
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.triggered:
            return "<Event pending>"
        kind = "ok" if self.ok else "failed"
        return f"<Event {kind} value={self.value!r}>"


class Engine:
    """The simulation core: a virtual clock plus an event heap."""

    def __init__(self, start_time: float = 0.0):
        self.now: float = start_time
        self._heap: list[Timer] = []
        self._seq: int = 0
        self._running = False
        self._events_processed: int = 0
        # Observability attach points (see repro.obs).  Components guard
        # hot paths with ``if engine.bus is not None`` so an unobserved
        # run pays one attribute load per would-be event.
        self.bus: Optional[Any] = None
        self.metrics: Optional[Any] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, fn: Callable, *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute virtual ``time``.

        Scheduling in the past is an error: it would silently reorder
        causality.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} < now={self.now:.6f}"
            )
        if math.isnan(time):
            raise SimulationError("cannot schedule at NaN time")
        self._seq += 1
        timer = Timer(time, self._seq, fn, args)
        heapq.heappush(self._heap, timer)
        return timer

    def call_after(self, delay: float, fn: Callable, *args: Any) -> Timer:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self.now + delay, fn, *args)

    def call_soon(self, fn: Callable, *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at the current time, after pending events."""
        return self.call_at(self.now, fn, *args)

    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event` bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that succeeds ``delay`` seconds from now."""
        ev = Event(self)
        self.call_after(delay, ev.succeed, value)
        return ev

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if none remain."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else math.inf

    def step(self) -> bool:
        """Run the single next event.  Returns False when the heap is empty."""
        heap = self._heap
        while heap:
            timer = heapq.heappop(heap)
            if timer.cancelled:
                continue
            self.now = timer.time
            self._events_processed += 1
            timer.fired = True
            timer.fn(*timer.args)
            return True
        return False

    def run(self, until: float = math.inf) -> None:
        """Run events in order until the heap drains or ``until`` is reached.

        The clock is advanced to ``until`` (if finite) even when the heap
        drains earlier, so back-to-back ``run`` calls observe a continuous
        timeline.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        try:
            heap = self._heap
            while heap:
                timer = heap[0]
                if timer.cancelled:
                    heapq.heappop(heap)
                    continue
                if timer.time > until:
                    break
                heapq.heappop(heap)
                self.now = timer.time
                self._events_processed += 1
                timer.fired = True
                try:
                    timer.fn(*timer.args)
                except StopSimulation:
                    return
            if until is not math.inf and until > self.now:
                self.now = until
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Number of events executed so far (profiling / test aid)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Count of live (non-cancelled) timers in the heap."""
        return sum(1 for t in self._heap if not t.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self.now:.6f} pending={self.pending}>"
