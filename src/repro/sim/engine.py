"""Discrete-event simulation engine.

The engine owns the virtual clock and an event heap.  Everything in the
reproduction — network links, TCP retransmission timers, heartbeat protocols,
fault injection schedules, client request streams — is driven by callbacks
scheduled on a single :class:`Engine`.

Two scheduling styles are supported:

* **Callbacks** (`call_at` / `call_after`) — the hot path.  Per-message
  plumbing in the network and transport layers uses plain callbacks to keep
  per-event overhead low.
* **Processes** (:mod:`repro.sim.process`) — generator coroutines layered on
  top of :class:`Event`, used for control logic that reads better as
  sequential code (client sessions, fault scenarios, server recovery).

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a run is
a pure function of its configuration and RNG seed.

Hot-loop design (this is the wall-clock bottleneck of the campaign):

* Heap entries are ``(time, seq, timer)`` tuples, so ordering is resolved
  by C-level tuple comparison — ``seq`` is unique, so the ``timer`` slot is
  never compared.
* The earliest entry is kept in a one-entry ``_next`` slot *outside* the
  heap.  Schedule-then-fire ping-pong (the dominant pattern: a callback
  schedules the next callback) never touches ``heapq`` at all.
* Fired and tombstoned :class:`Timer` objects are recycled through a
  freelist, eliminating per-event allocation.  A handle is therefore only
  meaningful until its callback has run or it has been cancelled — holders
  must drop their reference at that point (every in-tree holder does).
* Cancellation is O(1) tombstoning, but tombstones no longer linger: a
  live-count integer makes :attr:`pending` O(1), and the heap is compacted
  in place whenever cancelled entries outnumber live ones.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

#: Upper bound on recycled Timer objects kept for reuse.
_FREELIST_MAX = 4096
#: Compaction fires when the heap holds more tombstones than this *and*
#: they outnumber live entries.
_COMPACT_MIN = 64


class SimulationError(Exception):
    """Base class for errors raised by the simulation machinery."""


class StopSimulation(Exception):
    """Raised inside a callback to halt :meth:`Engine.run` immediately."""


class Timer:
    """Handle for a scheduled callback.

    A ``Timer`` can be cancelled until it fires; cancellation is O(1) — the
    heap entry is tombstoned rather than removed, and reclaimed by the
    engine's incremental compaction.

    Lifecycle contract: once a timer has fired or been cancelled its object
    may be recycled for a future ``call_at``, so holders must drop their
    reference at that point (the idiomatic pattern — null the attribute in
    the callback / right after ``cancel()`` — does this naturally).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired", "engine")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable,
        args: tuple,
        engine: Optional["Engine"] = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self.engine = engine

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references so cancelled timers do not pin large objects
        # while they wait to be compacted out of the heap.
        self.fn = None
        self.args = ()
        if not self.fired:
            engine = self.engine
            if engine is not None:
                engine._note_cancel(self)

    @property
    def active(self) -> bool:
        """Still pending: neither cancelled nor already fired."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "Timer") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "active"
        return f"<Timer t={self.time:.6f} seq={self.seq} {state}>"


class Event:
    """A one-shot occurrence that callbacks can wait on.

    An event is *triggered* at most once, with either a value (``succeed``)
    or an exception (``fail``).  Callbacks added after triggering fire
    immediately (synchronously), which keeps waiter logic free of
    time-of-check races.
    """

    __slots__ = ("engine", "_callbacks", "triggered", "ok", "value")

    def __init__(self, engine: "Engine"):
        self.engine = engine
        self._callbacks: Optional[list] = []
        self.triggered = False
        self.ok = False
        self.value: Any = None

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event triggers (now, if already has)."""
        if self.triggered:
            fn(self)
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        self._trigger(True, value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception for waiters to re-raise."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.ok = ok
        self.value = value
        callbacks, self._callbacks = self._callbacks, None
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.triggered:
            return "<Event pending>"
        kind = "ok" if self.ok else "failed"
        return f"<Event {kind} value={self.value!r}>"


class Engine:
    """The simulation core: a virtual clock plus an event heap."""

    def __init__(self, start_time: float = 0.0):
        self.now: float = start_time
        self._heap: list = []  # (time, seq, Timer) tuples
        self._next: Optional[tuple] = None  # earliest entry, kept off-heap
        self._seq: int = 0
        self._running = False
        self._events_processed: int = 0
        self._live: int = 0  # scheduled, neither fired nor cancelled
        self._tombstones: int = 0  # cancelled entries still queued
        self._freelist: list = []
        # Heap-churn counters for the flight recorder: Timer objects
        # actually allocated (vs recycled) and tombstone compactions.
        self._timer_allocs: int = 0
        self._compactions: int = 0
        # Observability attach points (see repro.obs).  Components guard
        # hot paths with ``if engine.bus is not None`` so an unobserved
        # run pays one attribute load per would-be event.
        self.bus: Optional[Any] = None
        self.metrics: Optional[Any] = None
        #: request-scoped span collector (repro.obs.spans), same
        #: zero-subscriber discipline: ``if engine.spans is not None``.
        self.spans: Optional[Any] = None
        #: wall-clock flight recorder (repro.obs.profiler), same
        #: one-attribute-load guard; ``run`` checks it once per call and
        #: dispatches to the instrumented loop, so the unprofiled hot
        #: loop is untouched.
        self.profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, fn: Callable, *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute virtual ``time``.

        Scheduling in the past is an error: it would silently reorder
        causality.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} < now={self.now:.6f}"
            )
        if time != time:  # NaN (cheaper than math.isnan on the hot path)
            raise SimulationError("cannot schedule at NaN time")
        self._seq = seq = self._seq + 1
        freelist = self._freelist
        if freelist:
            timer = freelist.pop()
            timer.time = time
            timer.seq = seq
            timer.fn = fn
            timer.args = args
            timer.cancelled = False
            timer.fired = False
        else:
            timer = Timer(time, seq, fn, args, self)
            self._timer_allocs += 1
        entry = (time, seq, timer)
        nxt = self._next
        if nxt is None:
            # The slot may only hold the globally earliest entry; if the
            # heap head is earlier, the new entry queues behind it.
            heap = self._heap
            if heap and heap[0] < entry:
                heappush(heap, entry)
            else:
                self._next = entry
        elif entry < nxt:
            heappush(self._heap, nxt)
            self._next = entry
        else:
            heappush(self._heap, entry)
        self._live += 1
        return timer

    def call_after(self, delay: float, fn: Callable, *args: Any) -> Timer:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        # Body duplicated from call_at (minus the past-check, which
        # ``delay >= 0`` already implies): this is the hottest scheduling
        # entry point and the extra call frame is measurable.
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self.now + delay
        if time != time:
            raise SimulationError("cannot schedule at NaN time")
        self._seq = seq = self._seq + 1
        freelist = self._freelist
        if freelist:
            timer = freelist.pop()
            timer.time = time
            timer.seq = seq
            timer.fn = fn
            timer.args = args
            timer.cancelled = False
            timer.fired = False
        else:
            timer = Timer(time, seq, fn, args, self)
            self._timer_allocs += 1
        entry = (time, seq, timer)
        nxt = self._next
        if nxt is None:
            heap = self._heap
            if heap and heap[0] < entry:
                heappush(heap, entry)
            else:
                self._next = entry
        elif entry < nxt:
            heappush(self._heap, nxt)
            self._next = entry
        else:
            heappush(self._heap, entry)
        self._live += 1
        return timer

    def call_soon(self, fn: Callable, *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at the current time, after pending events."""
        return self.call_at(self.now, fn, *args)

    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event` bound to this engine."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that succeeds ``delay`` seconds from now."""
        ev = Event(self)
        self.call_after(delay, ev.succeed, value)
        return ev

    # ------------------------------------------------------------------
    # Tombstone bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self, timer: Timer) -> None:
        """A live timer was cancelled (called by :meth:`Timer.cancel`)."""
        self._live -= 1
        self._tombstones = tombstones = self._tombstones + 1
        if tombstones > _COMPACT_MIN and tombstones * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (in place, O(n)).

        In-place so that a ``run`` loop holding a local reference to the
        heap list keeps seeing the live structure.
        """
        heap = self._heap
        freelist = self._freelist
        self._compactions += 1
        live = []
        for entry in heap:
            timer = entry[2]
            if timer.cancelled:
                if len(freelist) < _FREELIST_MAX:
                    freelist.append(timer)
            else:
                live.append(entry)
        heap[:] = live
        heapify(heap)
        nxt = self._next
        self._tombstones = 1 if nxt is not None and nxt[2].cancelled else 0

    def _recycle(self, timer: Timer) -> None:
        freelist = self._freelist
        if len(freelist) < _FREELIST_MAX:
            timer.fn = None
            timer.args = ()
            freelist.append(timer)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if none remain."""
        heap = self._heap
        while True:
            nxt = self._next
            if nxt is None:
                if not heap:
                    return math.inf
                self._next = nxt = heappop(heap)
            timer = nxt[2]
            if timer.cancelled:
                self._next = None
                self._tombstones -= 1
                self._recycle(timer)
                continue
            return nxt[0]

    def step(self) -> bool:
        """Run the single next event.  Returns False when the heap is empty."""
        heap = self._heap
        while True:
            nxt = self._next
            if nxt is None:
                if not heap:
                    return False
                nxt = heappop(heap)
            timer = nxt[2]
            self._next = None
            if timer.cancelled:
                self._tombstones -= 1
                self._recycle(timer)
                continue
            self.now = nxt[0]
            self._events_processed += 1
            self._live -= 1
            timer.fired = True
            fn = timer.fn
            args = timer.args
            timer.fn = None
            timer.args = ()
            fn(*args)
            if not timer.cancelled:
                self._recycle(timer)
            return True

    def run(self, until: float = math.inf) -> None:
        """Run events in order until the heap drains or ``until`` is reached.

        The clock is advanced to ``until`` (if finite) even when the heap
        drains earlier, so back-to-back ``run`` calls observe a continuous
        timeline.
        """
        if self.profiler is not None:
            return self._run_profiled(until)
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        heap = self._heap
        freelist = self._freelist
        processed = 0
        try:
            while True:
                nxt = self._next
                if nxt is None:
                    if not heap:
                        break
                    nxt = heappop(heap)
                timer = nxt[2]
                if timer.cancelled:
                    self._next = None
                    self._tombstones -= 1
                    if len(freelist) < _FREELIST_MAX:
                        freelist.append(timer)
                    continue
                time = nxt[0]
                if time > until:
                    self._next = nxt
                    break
                self._next = None
                self.now = time
                processed += 1
                timer.fired = True
                try:
                    timer.fn(*timer.args)
                except StopSimulation:
                    return
                # Recycle unless the callback (or someone it called)
                # cancelled the fired handle — a holder doing that still
                # has a live reference, so the object must not be reused.
                if not timer.cancelled and len(freelist) < _FREELIST_MAX:
                    freelist.append(timer)
            if until is not math.inf and until > self.now:
                self.now = until
        finally:
            # Fired events drop the live count in one batch; `pending` is
            # only meaningful between runs (no in-tree callback reads it
            # mid-run, and cancel() stays exact because it decrements
            # directly).
            self._events_processed += processed
            self._live -= processed
            self._running = False

    def _run_profiled(self, until: float = math.inf) -> None:
        """Flight-recorder variant of :meth:`run` (``profiler`` attached).

        Mirrors the unprofiled loop exactly — same dispatch order, same
        freelist recycling, same counter batching — and additionally
        brackets every callback with ``perf_counter`` reads, charging
        the measured interval to the callback's site.  The loop is flat
        (a callback runs to completion before the next event fires), so
        the interval *is* the event's self-time.  The callback and args
        are captured before firing because the fired handle may be
        recycled and rearmed by code the callback itself runs.
        """
        from repro.obs.profiler import perf_counter

        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        heap = self._heap
        freelist = self._freelist
        record = self.profiler.record
        processed = 0
        try:
            while True:
                nxt = self._next
                if nxt is None:
                    if not heap:
                        break
                    nxt = heappop(heap)
                timer = nxt[2]
                if timer.cancelled:
                    self._next = None
                    self._tombstones -= 1
                    if len(freelist) < _FREELIST_MAX:
                        freelist.append(timer)
                    continue
                time = nxt[0]
                if time > until:
                    self._next = nxt
                    break
                self._next = None
                self.now = time
                processed += 1
                timer.fired = True
                fn = timer.fn
                args = timer.args
                start = perf_counter()
                try:
                    fn(*args)
                except StopSimulation:
                    record(fn, perf_counter() - start)
                    return
                record(fn, perf_counter() - start)
                if not timer.cancelled and len(freelist) < _FREELIST_MAX:
                    freelist.append(timer)
            if until is not math.inf and until > self.now:
                self.now = until
        finally:
            self._events_processed += processed
            self._live -= processed
            self._running = False

    # ------------------------------------------------------------------
    # Snapshot support (see repro.sim.snapshot)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle support for deterministic checkpoints.

        Capturing mid-callback is forbidden: the in-flight event's
        continuation lives on the C stack, not in the heap.  The timer
        freelist is dropped — recycled handles are reachable only from
        the engine and carry no simulation state, so shedding them
        shrinks the blob without affecting determinism (object *reuse*
        patterns differ after restore, object *behaviour* does not).
        """
        if self._running:
            raise SimulationError("cannot snapshot a running engine")
        state = self.__dict__.copy()
        state["_freelist"] = []
        # The flight recorder holds wall-clock accumulations — host
        # noise, not simulation state — so it never enters a blob; the
        # runner re-attaches a fresh recorder after restore.
        state["profiler"] = None
        return state

    def snapshot_state(self) -> dict:
        """Deterministic-state digest input (see Snapshottable)."""
        return {
            "now": self.now,
            "seq": self._seq,
            "events_processed": self._events_processed,
            "pending": self._live,
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Number of events executed so far (profiling / test aid)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Count of live (non-cancelled) timers in the heap.  O(1)."""
        return self._live

    @property
    def queued_tombstones(self) -> int:
        """Cancelled entries awaiting compaction (test/diagnostic aid)."""
        return self._tombstones

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self.now:.6f} pending={self.pending}>"
