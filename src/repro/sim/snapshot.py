"""Deterministic snapshot/restore of a live simulation.

A snapshot captures the *entire* object graph of a run — engine clock and
event heap, RNG streams, fabric/link serializer clocks, transports,
nodes, servers, caches, membership, the event bus with its subscribers —
so that a restored simulation resumes **bit-identically**: same event
order, same timestamps, same RNG draws, same published events.  The
campaign warm-start layer (:mod:`repro.experiments.warmstart`) uses this
to pay a version's warmup once instead of once per cell.

Why pickling is sufficient
--------------------------

The simulation is deterministic by construction (seq-numbered event
heap, named RNG streams) and single-threaded, and holds no handles to
anything outside itself: no file descriptors, no wall-clock reads, no
real I/O.  Its full state therefore *is* its object graph, and Python's
pickle machinery already round-trips that graph faithfully — including
``random.Random`` internals, bound methods, heap tuples and reference
cycles.  Only two constructs need help:

* **Closures and lambdas** are not picklable by reference.  The hot
  paths schedule only bound methods and ``__slots__`` callables (see the
  fabric's ``_DeliverCb``), but defensive coverage matters more than
  style: :class:`SnapshotPickler` serializes any non-importable function
  by value — ``marshal``-ed code object plus captured cell contents —
  and rebuilds it against its module's globals on load.
* **Live generators** cannot be serialized at all (their frame is
  interpreter state).  The live simulation graph does not contain any
  (the generator-based :mod:`repro.sim.process` framework is unused by
  the cluster assembly); if one ever leaks in, capture fails loudly
  rather than producing a checkpoint that cannot resume.

Checkpoints are an internal format: they are only valid for the exact
interpreter and code that wrote them, which is why
:func:`checkpoint_digest` folds in the snapshot :data:`FORMAT_VERSION`,
the Python version and the marshal format (see the warm-start cache for
the visible-invalidation behaviour built on top).

Verification
------------

Components that carry deterministic state implement the
:class:`Snapshottable` protocol: ``snapshot_state()`` returns a JSON-safe
digest of the state that must survive a round trip.  :func:`state_digest`
hashes that digest; the warm-start layer compares it before capture and
after restore, so a checkpoint that silently dropped state is detected
at restore time, not three stages later as a diverged profile.
"""

from __future__ import annotations

import hashlib
import importlib
import io
import json
import marshal
import pickle
import pickletools
import sys
import types
from typing import Any, Protocol, runtime_checkable

from .engine import SimulationError

#: Bump when the snapshot encoding (this module) or any snapshotted
#: component changes its pickled layout in a way that invalidates
#: existing checkpoints.  Folded into :func:`checkpoint_digest`, so stale
#: checkpoints miss instead of resuming wrongly.
#:
#: v2: warm checkpoints carry the global id-counter positions
#:     (``repro.sim.ids``) alongside the (cluster, observatory) pair, and
#:     ``Frame`` grew a ``trace_id`` slot for request-scoped tracing.
#:
#: v3: the engine may be a :class:`repro.sim.lp.ShardedEngine` (per-LP
#:     event queues + shard map + channel clocks in the pickled layout),
#:     and ``Link`` carries its owner's LP affinity.
#:
#: v4: the engine carries flight-recorder churn counters
#:     (``_timer_allocs``/``_compactions``, plus the sharded engine's
#:     per-LP accounting) in its pickled layout; v3 blobs restored by v4
#:     code would lack them and die on first digest.
#:
#: v5: the sharded engine carries its execution backend and per-worker
#:     wall-clock slots (``backend``/``_proto``/``_worker_*``) in its
#:     pickled layout; parallel-backend workers rebuild their LP-slice
#:     mirrors from the restored queues at the next ``run()``, so a v4
#:     blob restored by v5 code would lack the slots those workers and
#:     ``lp_stats()`` read.
FORMAT_VERSION = 5

#: Protocol 4 is the newest protocol supported by every interpreter in
#: the CI matrix; the digest pins the writer's Python anyway, this just
#: keeps the choice explicit and stable.
_PICKLE_PROTOCOL = 4


class SnapshotError(SimulationError):
    """A simulation could not be captured or restored faithfully."""


@runtime_checkable
class Snapshottable(Protocol):
    """A component whose deterministic state can be digested.

    ``snapshot_state()`` must return a JSON-serializable structure that
    covers every piece of state that influences future event order or
    values — clocks, sequence counters, RNG positions, queue depths.
    Equal digests before capture and after restore certify the round
    trip (see :func:`state_digest`).
    """

    def snapshot_state(self) -> dict: ...


def _rebuild_function(
    code_bytes: bytes,
    module: str,
    name: str,
    defaults,
    kwdefaults,
    n_cells,
):
    """Reconstruct the *skeleton* of a by-value-pickled function.

    Closure cells are created empty and filled afterwards by
    :func:`_fill_closure` (the reduce tuple's state setter).  The
    two-phase build lets the pickler memoize the function object before
    its closure values are serialized, so self-referential closures — a
    local function whose cell holds the function itself — round-trip
    instead of recursing forever.
    """
    code = marshal.loads(code_bytes)
    mod = importlib.import_module(module)
    if n_cells is None:
        cells = None
    else:
        cells = tuple(types.CellType() for _ in range(n_cells))
    fn = types.FunctionType(code, mod.__dict__, name, defaults, cells)
    if kwdefaults:
        fn.__kwdefaults__ = kwdefaults
    return fn


def _fill_closure(fn, closure_values) -> None:
    """State setter: pour captured values into the skeleton's cells."""
    if closure_values is not None:
        for cell, value in zip(fn.__closure__, closure_values):
            cell.cell_contents = value


def _lookup_qualname(module: str, qualname: str):
    """The object ``module.qualname`` refers to, or None."""
    try:
        obj = importlib.import_module(module)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        return obj
    except Exception:
        return None


class SnapshotPickler(pickle.Pickler):
    """Pickler that serializes closures by value and rejects generators.

    Importable functions still pickle by reference (cheap, and they pick
    up code fixes on restore — which is fine, because the checkpoint
    digest already invalidates checkpoints across code changes).  Only
    functions that *cannot* be found under their qualified name — local
    functions, lambdas, decorated wrappers — are encoded by value.
    """

    def reducer_override(self, obj):
        if isinstance(obj, types.FunctionType):
            if _lookup_qualname(obj.__module__, obj.__qualname__) is obj:
                return NotImplemented  # importable: pickle by reference
            closure = obj.__closure__
            if closure is None:
                values = None
            else:
                values = tuple(cell.cell_contents for cell in closure)
            return (
                _rebuild_function,
                (
                    marshal.dumps(obj.__code__),
                    obj.__module__,
                    obj.__name__,
                    obj.__defaults__,
                    obj.__kwdefaults__,
                    None if closure is None else len(closure),
                ),
                values,  # state, applied after memoization ...
                None,
                None,
                _fill_closure,  # ... by this setter (see _rebuild_function)
            )
        if isinstance(obj, types.GeneratorType):
            raise pickle.PicklingError(
                f"cannot snapshot live generator {obj!r}: generator frames "
                "are interpreter state; schedule callbacks instead"
            )
        return NotImplemented


def capture(root: Any) -> bytes:
    """Serialize the simulation graph rooted at ``root`` to bytes.

    ``root`` is typically a tuple of every top-level object the resumed
    run needs (cluster, observatory, ...); shared references inside it
    are preserved, so the restored graph has the same shape.
    """
    buf = io.BytesIO()
    try:
        SnapshotPickler(buf, protocol=_PICKLE_PROTOCOL).dump(root)
    except SnapshotError:
        raise
    except (pickle.PicklingError, SimulationError, TypeError, ValueError) as exc:
        raise SnapshotError(f"cannot capture simulation state: {exc}") from exc
    return buf.getvalue()


def restore(blob: bytes) -> Any:
    """Rebuild the simulation graph from :func:`capture` output.

    The result is a deep, independent copy: restoring twice yields two
    simulations that can be driven divergently (that is the point).
    """
    try:
        return pickle.loads(blob)
    except Exception as exc:
        raise SnapshotError(f"cannot restore snapshot: {exc}") from exc


def state_digest(obj: Snapshottable) -> str:
    """Stable short hash of a component's ``snapshot_state()``.

    Compared across a capture/restore round trip to certify that no
    deterministic state was dropped; also cheap enough to log.
    """
    state = obj.snapshot_state()
    payload = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def rng_digest(rng) -> str:
    """Short stable hash of a ``random.Random`` position."""
    return hashlib.sha256(repr(rng.getstate()).encode()).hexdigest()[:12]


def checkpoint_digest(*parts: Any) -> str:
    """Content address for a checkpoint derived from ``parts``.

    Always folds in everything that changes the meaning of the stored
    bytes: the snapshot format, the interpreter (marshal output is
    version-specific) — callers add the simulation inputs (version name,
    settings cache key, seed).
    """
    hasher = hashlib.sha256()
    hasher.update(
        f"snapshot-v{FORMAT_VERSION}"
        f"|py{sys.version_info[0]}.{sys.version_info[1]}"
        f"|marshal{marshal.version}".encode()
    )
    for part in parts:
        hasher.update(b"\x00")
        hasher.update(repr(part).encode())
    return hasher.hexdigest()


def blob_summary(blob: bytes) -> dict:
    """Size/opcode statistics for a snapshot blob (diagnostic aid)."""
    n_ops = 0
    for _op, _arg, _pos in pickletools.genops(blob):
        n_ops += 1
    return {"bytes": len(blob), "pickle_ops": n_ops}
