"""Parallel execution backends for :class:`~repro.sim.lp.ShardedEngine`.

PR 8 decomposed the simulation into logical processes under conservative
(Chandy–Misra–Bryant) null-message synchronization, but the exact-merge
scheduler still executed every LP serially inside one interpreter.  This
module adds the worker transports: the already-modeled protocol traffic —
EOT announcements, null messages (burst-bound lowerings), and cross-LP
frame deliveries — now flows over explicit worker channels instead of the
in-process merge loop.  Three backends share one contract:

``serial``
    The PR 8 merge loop, unchanged (it lives in ``lp.py``; this module is
    never imported).  Default, and the reference every other backend must
    match byte for byte.

``threads``
    One worker thread per LP plus the coordinator.  The coordinator runs
    the same LBTS scan as the serial merge, then *grants* the burst to the
    owning worker thread over a queue; the granted worker executes its
    LP's callbacks exclusively (exactly one grant is outstanding at any
    instant, so callbacks still run in the serial total order against the
    shared object graph).  A debug fallback: every protocol hop is
    observable in-process, and each worker measures its own wall-clock
    exec / idle / blocked-on-null split.

``processes``
    One OS worker process per LP (``multiprocessing`` pipes, fork when
    available).  Each worker owns a live **mirror of its LP's event
    queue** at the ``(time, seq)`` key level: the coordinator streams it
    schedule / cancel / burst records (batched; see :data:`FLUSH_RECORDS`)
    and the worker replays its queue independently — popping executed
    keys, verifying every one stays below the granted burst bound, and
    announcing its EOT (earliest output time) back on request.  The
    coordinator cross-checks those EOT announcements against its own
    heads, so the worker fleet is a distributed checker of the merge.
    Callback *bodies* still execute in the coordinator: the simulated
    components share one object graph (monitors and membership read
    across nodes) and the engine's global sequence counter is assigned in
    execution order, so byte-identical results force the serial total
    order of callback execution.  What the workers take off-loop is the
    queue replay, protocol verification, and wall-clock accounting — and
    they die loudly: a killed worker surfaces as :class:`LpWorkerError`
    at the next flush or sync, never as a hang (see :data:`SYNC_TIMEOUT`).

Determinism is non-negotiable and holds by construction for every
backend: cross-LP messages are applied in the same ``(time, seq)`` total
order as the serial merge, so stores, traces, and span exports are
byte-identical for every shard count and backend (enforced by
``tests/sim/test_lp_backends.py`` and the CI ``lp-parallel-smoke`` job).

The pure-protocol core (:func:`merge_order`, :class:`LpMirror`,
:class:`MergeProtocol`) is deliberately free of transport details so the
hypothesis property suite can drive arbitrary interleavings of EOT /
null / frame messages through it and compare against the serial order.
"""

from __future__ import annotations

import math
import threading
from heapq import heapify, heappop, heappush
from queue import SimpleQueue
from typing import Dict, Iterable, List, Optional, Tuple

from .engine import SimulationError, StopSimulation, _FREELIST_MAX

#: Sentinel burst bound / empty-queue EOT: nothing earlier can exist.
_INF_KEY = (math.inf, 0)

#: The selectable execution backends (``--lp-backend``).
BACKENDS = ("serial", "threads", "processes")

#: Records buffered per LP before a pipe flush (processes backend).
#: Batching amortizes pickling: one flush carries hundreds of protocol
#: records, so transport cost scales with flushes, not events.
FLUSH_RECORDS = 512

#: Every Nth flush carries a sync token the worker must acknowledge —
#: bounding pipe backlog and turning a dead worker into a prompt error.
SYNC_FLUSHES = 16

#: Seconds to wait on a worker acknowledgment before declaring it dead.
SYNC_TIMEOUT = 60.0

#: Test hook: ``(lp, flush_index)`` — the coordinator kills that LP's
#: worker process just before the given flush, to prove a mid-run worker
#: death is a clean :class:`LpWorkerError`, not a hang.  Never set
#: outside the test suite.
_TEST_KILL_BEFORE_FLUSH: Optional[Tuple[int, int]] = None


class LpWorkerError(SimulationError):
    """A parallel-backend worker died or broke protocol mid-run."""


# ----------------------------------------------------------------------
# Pure protocol core (transport-free; driven by the hypothesis suite)
# ----------------------------------------------------------------------


def merge_order(streams: Iterable[Iterable[Tuple[float, int]]]) -> list:
    """The serial merge's total order over per-LP key streams.

    ``(time, seq)`` keys are globally unique (the engine's sequence
    counter never repeats), so the total order is simply the sorted
    union — this is the reference every protocol reduction must match.
    """
    return sorted(key for stream in streams for key in stream)


class LpMirror:
    """Worker-side replica of one LP's event queue, at the key level.

    Holds ``(time, seq)`` keys only — callback bodies stay with the
    coordinator.  The coordinator streams it protocol records:

    ``("s", time, seq)``
        frame/schedule: an entry entered this LP's queue (a cross-LP
        frame delivery or a local schedule during a burst);
    ``("c", seq)``
        cancel: the entry with sequence ``seq`` became a tombstone
        (broadcast — mirrors skip seqs they never held);
    ``("b", n, bound_time, bound_seq)``
        burst: this LP executed its ``n`` earliest live entries, all of
        which must lie strictly below the granted bound (the bound is
        the net of the initial LBTS grant and every mid-burst null
        message that lowered it).

    :meth:`apply` raises :class:`LpWorkerError` on any protocol
    violation — a popped key at/above the bound, or a burst against an
    empty mirror — which is exactly the distributed check the processes
    backend ships out of the merge loop.
    """

    __slots__ = ("lp", "heap", "cancelled", "executed", "keep", "order")

    def __init__(
        self,
        lp: int,
        keys: Iterable[Tuple[float, int]] = (),
        keep_order: bool = False,
    ):
        self.lp = lp
        self.heap: List[Tuple[float, int]] = list(keys)
        heapify(self.heap)
        self.cancelled: set = set()
        self.executed = 0
        self.keep = keep_order
        #: executed keys in order (tests only; off by default)
        self.order: List[Tuple[float, int]] = []

    def head(self) -> Tuple[float, int]:
        """Earliest live key (the LP's EOT announcement), or ``_INF_KEY``."""
        heap = self.heap
        cancelled = self.cancelled
        while heap and heap[0][1] in cancelled:
            cancelled.discard(heappop(heap)[1])
        return heap[0] if heap else _INF_KEY

    def apply(self, rec: tuple) -> None:
        tag = rec[0]
        if tag == "s":
            heappush(self.heap, (rec[1], rec[2]))
        elif tag == "c":
            self.cancelled.add(rec[1])
        elif tag == "b":
            n, bound = rec[1], (rec[2], rec[3])
            for _ in range(n):
                key = self.head()
                if key >= bound:
                    raise LpWorkerError(
                        f"LP {self.lp} mirror: executed key {key} is not "
                        f"below the granted bound {bound}"
                    )
                heappop(self.heap)
                self.executed += 1
                if self.keep:
                    self.order.append(key)
        else:  # pragma: no cover - defensive
            raise LpWorkerError(f"LP {self.lp} mirror: unknown record {rec!r}")


class MergeProtocol:
    """Executable specification of the coordinator's merge decisions.

    Consumes the worker-side messages — EOT announcements, null messages
    (bound lowerings caused by cross-LP frames), and frame deliveries —
    and emits grants exactly the way the serial merge loop picks bursts:
    grant the LP with the globally minimal announced EOT, bounded by the
    second-best announcement, with mid-burst frames only ever *lowering*
    the bound.  The backends implement this procedure against their
    transports; the hypothesis suite drives this class directly with
    arbitrary message interleavings and checks the executed order equals
    :func:`merge_order`.
    """

    def __init__(self, mirrors: List[LpMirror]):
        self.mirrors = mirrors

    def eot(self, lp: int) -> Tuple[float, int]:
        """LP ``lp``'s current EOT announcement."""
        return self.mirrors[lp].head()

    def next_grant(self) -> Optional[Tuple[int, Tuple[float, int]]]:
        """The next ``(lp, bound)`` grant, or None when all queues drain.

        The grant goes to the minimal announced EOT; the bound is the
        second-best EOT — the exact LBTS the serial merge computes.
        """
        best_lp = -1
        best = _INF_KEY
        second = _INF_KEY
        for mirror in self.mirrors:
            key = mirror.head()
            if key < best:
                second = best
                best = key
                best_lp = mirror.lp
            elif key < second:
                second = key
        if best_lp < 0:
            return None
        return best_lp, second

    def run(self, frames: Dict[Tuple[float, int], List[tuple]]) -> list:
        """Drain every queue; returns the executed keys in grant order.

        ``frames`` maps an executed key to the cross-LP frame records
        ``("s", t, seq, dst_lp)`` it emits when executed (each such frame
        is also the null message that may lower the active bound).  The
        burst semantics mirror the engine: execute the granted LP's head
        while it stays strictly below the (possibly lowered) bound.
        """
        out: list = []
        while True:
            grant = self.next_grant()
            if grant is None:
                return out
            lp, bound = grant
            mirror = self.mirrors[lp]
            while True:
                key = mirror.head()
                if key >= bound:
                    break
                mirror.apply(("b", 1, bound[0], bound[1]))
                out.append(key)
                for frame in frames.get(key, ()):
                    _, t, seq, dst = frame
                    self.mirrors[dst].apply(("s", t, seq))
                    if dst != lp and (t, seq) < bound:
                        bound = (t, seq)  # the null message, consumed


# ----------------------------------------------------------------------
# Shared coordinator pieces
# ----------------------------------------------------------------------


def _scan(engine) -> Tuple[Optional[object], tuple, tuple]:
    """One LBTS round: the best/second head keys across every LP queue.

    Same scan as the serial merge loop (``lp.py`` keeps its own inlined
    copy on the unprofiled hot path); factored here for the parallel
    coordinators.
    """
    best_q = None
    best_key = _INF_KEY
    second_key = _INF_KEY
    for q in engine._queues:
        entry = engine._head(q)
        if entry is None:
            continue
        key = (entry[0], entry[1])
        if key < best_key:
            second_key = best_key
            best_key = key
            best_q = q
        elif key < second_key:
            second_key = key
    return best_q, best_key, second_key


def _queue_keys(engine, q) -> List[Tuple[float, int]]:
    """The live ``(time, seq)`` keys of one LP queue — its snapshot slice.

    This is what a worker receives to (re)construct its mirror, both at
    run start and after a checkpoint restore (the backend is rebuilt per
    ``run()``, so a restored engine re-ships each worker its LP slice).
    """
    keys = [
        (entry[0], entry[1]) for entry in q.heap if not entry[2].cancelled
    ]
    nxt = q.next
    if nxt is not None and not nxt[2].cancelled:
        keys.append((nxt[0], nxt[1]))
    return keys


def run_parallel(engine, until: float = math.inf) -> None:
    """Entry point: dispatch ``engine.run(until)`` to its backend."""
    backend = engine.backend
    if backend == "threads":
        return _run_threads(engine, until)
    if backend == "processes":
        return _run_processes(engine, until)
    raise SimulationError(f"unknown LP backend {backend!r}")


# ----------------------------------------------------------------------
# threads backend
# ----------------------------------------------------------------------

_STOP = object()


class _LpWorkerThread(threading.Thread):
    """One LP's executor: blocks on grants, bursts its queue exclusively.

    Exactly one grant is outstanding at any instant (the coordinator
    blocks on the shared outbox until the burst completes), so the
    worker's burst body is the serial inner loop verbatim — same event
    order, same clock advance, same freelist recycling — just running on
    a different OS thread.  Wall-clock is measured where it happens: the
    worker splits its own life into exec (bursting), blocked-on-null
    (waiting with a live head — synchronization, not load), and idle
    (waiting with an empty queue).
    """

    def __init__(self, engine, q, outbox: SimpleQueue, profiled: bool):
        super().__init__(
            name=f"lp-worker-{q.lp}", daemon=True
        )
        self.engine = engine
        self.q = q
        self.lp = q.lp
        self.inbox: SimpleQueue = SimpleQueue()
        self.outbox = outbox
        self.profiled = profiled
        self.exec_s = 0.0
        self.idle_s = 0.0
        self.blocked_s = 0.0
        #: did this LP have a live head when it last went to sleep?
        self.had_work = False

    def run(self) -> None:
        from repro.obs.profiler import perf_counter

        engine = self.engine
        q = self.q
        lp = self.lp
        freelist = engine._freelist
        record = engine.profiler.record if self.profiled else None
        inbox = self.inbox
        outbox = self.outbox
        while True:
            wait0 = perf_counter()
            msg = inbox.get()
            waited = perf_counter() - wait0
            if self.had_work:
                self.blocked_s += waited
            else:
                self.idle_s += waited
            if msg is _STOP:
                return
            until = msg
            processed = 0
            status = "bound"
            error = None
            burst0 = perf_counter()
            try:
                while True:
                    nxt = engine._head(q)
                    if nxt is None:
                        break
                    time = nxt[0]
                    if (time, nxt[1]) >= engine._min_other:
                        break
                    if time > until:
                        status = "until"
                        break
                    q.next = None
                    timer = nxt[2]
                    engine.now = time
                    processed += 1
                    timer.fired = True
                    engine._cur = lp
                    if record is None:
                        try:
                            timer.fn(*timer.args)
                        except StopSimulation:
                            status = "stopsim"
                            break
                    else:
                        fn = timer.fn
                        args = timer.args
                        start = perf_counter()
                        try:
                            fn(*args)
                        except StopSimulation:
                            record(fn, perf_counter() - start)
                            status = "stopsim"
                            break
                        record(fn, perf_counter() - start)
                    if not timer.cancelled and len(freelist) < _FREELIST_MAX:
                        freelist.append(timer)
            except BaseException as exc:  # noqa: BLE001 - relayed
                status = "error"
                error = exc
            burst_s = perf_counter() - burst0
            self.exec_s += burst_s
            # Read while still exclusive: the coordinator is blocked on
            # the outbox until this reply lands.
            self.had_work = q.next is not None or bool(q.heap)
            outbox.put((lp, processed, burst_s, status, error))


def _run_threads(engine, until: float) -> None:
    """Coordinator for the threads backend.

    The LBTS scan and burst bookkeeping are the serial merge's, but the
    burst itself executes on the owning LP's worker thread.  Strict
    grant/reply alternation keeps the execution order — and therefore
    every observable byte — identical to the serial loop.
    """
    from repro.obs.profiler import perf_counter

    if engine._running:
        raise SimulationError("engine is not reentrant")
    engine._running = True
    profiled = engine.profiler is not None
    outbox: SimpleQueue = SimpleQueue()
    workers = [
        _LpWorkerThread(engine, q, outbox, profiled) for q in engine._queues
    ]
    # Seed the blocked/idle classification before any thread runs (the
    # queues are quiescent here; once threads start, only the granted
    # worker may touch them).
    for w in workers:
        w.had_work = w.q.next is not None or bool(w.q.heap)
        w.start()
    processed = 0
    stop = False
    error: Optional[BaseException] = None
    merge_s = 0.0
    try:
        while not stop:
            scan0 = perf_counter() if profiled else 0.0
            best_q, best_key, second_key = _scan(engine)
            if profiled:
                merge_s += perf_counter() - scan0
            if best_q is None:
                break
            if best_key[0] > until:
                break
            lp = best_q.lp
            engine._active = lp
            engine._min_other = second_key
            engine._bursts += 1
            if best_key[0] > engine._eot_time:
                engine._eot_time = best_key[0]
                engine._eot_advances += 1
            workers[lp].inbox.put(until)
            _, n, burst_s, status, exc = outbox.get()
            processed += n
            if profiled:
                engine._exec_s[lp] += burst_s
            engine._active = -1
            # The serial loop skips the per-LP burst count when the
            # burst aborts (StopSimulation return / raised exception);
            # match it so lp_stats is backend-invariant.
            if status == "stopsim":
                return
            if status == "error":
                error = exc
                break
            engine._lp_exec[lp] += n
            if status == "until":
                stop = True
        if until is not math.inf and until > engine.now:
            engine.now = until
    finally:
        for w in workers:
            w.inbox.put(_STOP)
        for w in workers:
            w.join()
            engine._worker_exec[w.lp] += w.exec_s
            engine._worker_idle[w.lp] += w.idle_s
            engine._worker_blocked[w.lp] += w.blocked_s
        engine._active = -1
        engine._min_other = _INF_KEY
        engine._events_processed += processed
        engine._live -= processed
        engine._running = False
        if profiled:
            engine._merge_s += merge_s
    if error is not None:
        raise error


# ----------------------------------------------------------------------
# processes backend
# ----------------------------------------------------------------------


def _mirror_main(conn, lp: int) -> None:
    """Worker-process body: replay one LP's queue from protocol records.

    The first message is ``("init", keys)`` — the LP's snapshot slice.
    Subsequent messages are record batches (lists); ``("e", token)``
    inside a batch requests an EOT acknowledgment, ``("f", token)`` is
    the final one.  The worker measures its own wall clocks: exec while
    applying records, blocked-on-null while sleeping with a live head,
    idle while sleeping empty.
    """
    from repro.obs.profiler import perf_counter

    mirror: Optional[LpMirror] = None
    exec_s = idle_s = blocked_s = 0.0
    try:
        while True:
            had_work = mirror is not None and mirror.head() is not _INF_KEY
            wait0 = perf_counter()
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return  # coordinator died; nothing left to report to
            waited = perf_counter() - wait0
            if had_work:
                blocked_s += waited
            else:
                idle_s += waited
            t0 = perf_counter()
            if isinstance(msg, tuple) and msg[0] == "init":
                mirror = LpMirror(lp, msg[1])
                exec_s += perf_counter() - t0
                continue
            for rec in msg:
                tag = rec[0]
                if tag == "e" or tag == "f":
                    head = mirror.head() if mirror is not None else _INF_KEY
                    conn.send(
                        (
                            "eot",
                            lp,
                            rec[1],
                            head[0],
                            head[1],
                            mirror.executed if mirror is not None else 0,
                            exec_s + (perf_counter() - t0),
                            idle_s,
                            blocked_s,
                        )
                    )
                    if tag == "f":
                        return
                else:
                    mirror.apply(rec)
            exec_s += perf_counter() - t0
    except LpWorkerError as exc:
        try:
            conn.send(("err", lp, str(exc)))
        except (BrokenPipeError, OSError):
            pass
    except Exception as exc:  # pragma: no cover - defensive relay
        try:
            conn.send(("err", lp, f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass


class _WorkerTransport:
    """Coordinator-side channel fleet for the processes backend.

    Owns one pipe + OS process per LP, the per-LP record buffers the
    engine's scheduling hooks append to, and the sync bookkeeping that
    turns worker death into a prompt :class:`LpWorkerError`.
    """

    def __init__(self, engine):
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self.engine = engine
        self.buffers: List[list] = [[] for _ in engine._queues]
        self.conns = []
        self.procs = []
        self._flushes = [0] * engine.shards
        self._pending_ack = [0] * engine.shards  # outstanding sync tokens
        self._token = 0
        self.clocks: List[Tuple[float, float, float]] = [
            (0.0, 0.0, 0.0)
        ] * engine.shards
        self.executed = [0] * engine.shards
        self.final_head: List[tuple] = [_INF_KEY] * engine.shards
        try:
            for q in engine._queues:
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_mirror_main,
                    args=(child, q.lp),
                    name=f"lp-worker-{q.lp}",
                    daemon=True,
                )
                proc.start()
                child.close()
                self.conns.append(parent)
                self.procs.append(proc)
                parent.send(("init", _queue_keys(engine, q)))
        except BaseException:
            self.abort()
            raise

    # -- failure surface ------------------------------------------------
    def _dead(self, lp: int, context: str) -> LpWorkerError:
        code = self.procs[lp].exitcode
        return LpWorkerError(
            f"LP {lp} worker process died ({context}; exit code {code!r}) "
            "— the campaign cell fails cleanly instead of hanging"
        )

    def _receive(self, lp: int, context: str) -> tuple:
        conn = self.conns[lp]
        if not conn.poll(SYNC_TIMEOUT):
            self.abort()
            raise self._dead(lp, f"no reply within {SYNC_TIMEOUT}s {context}")
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            self.abort()
            raise self._dead(lp, context)
        if msg[0] == "err":
            self.abort()
            raise LpWorkerError(f"LP {lp} worker: {msg[2]}")
        return msg

    def _drain_acks(self, lp: int, block: bool) -> None:
        conn = self.conns[lp]
        while self._pending_ack[lp] and (block or conn.poll(0)):
            msg = self._receive(lp, "at sync")
            self._pending_ack[lp] -= 1
            self._note_eot(msg)

    def _note_eot(self, msg: tuple) -> None:
        _, lp, _tok, head_t, head_s, executed, ex, idl, blk = msg
        self.final_head[lp] = (head_t, head_s)
        self.executed[lp] = executed
        self.clocks[lp] = (ex, idl, blk)

    # -- record stream ----------------------------------------------------
    def flush(self, lp: int) -> None:
        buf = self.buffers[lp]
        if not buf:
            return
        self._flushes[lp] += 1
        if (
            _TEST_KILL_BEFORE_FLUSH is not None
            and _TEST_KILL_BEFORE_FLUSH == (lp, self._flushes[lp])
        ):
            self.procs[lp].terminate()
            self.procs[lp].join()
        if self._flushes[lp] % SYNC_FLUSHES == 0:
            self._token += 1
            buf.append(("e", self._token))
            self._pending_ack[lp] += 1
        try:
            self.conns[lp].send(buf)
        except (BrokenPipeError, OSError):
            self.abort()
            raise self._dead(lp, "at flush")
        self.buffers[lp] = []
        # Opportunistic, non-blocking ack drain keeps the reply pipe
        # shallow without ever stalling the merge loop on a worker.
        self._drain_acks(lp, block=False)

    # -- shutdown ---------------------------------------------------------
    def finish(self) -> None:
        """Flush, final-sync, verify, and reap every worker.

        Verification is the distributed check: each worker's replayed
        head and executed count must match the coordinator's own queue —
        any divergence means a protocol bug, and fails the run loudly.
        """
        engine = self.engine
        for q in engine._queues:
            lp = q.lp
            self._token += 1
            self.buffers[lp].append(("f", self._token))
            try:
                self.conns[lp].send(self.buffers[lp])
            except (BrokenPipeError, OSError):
                self.abort()
                raise self._dead(lp, "at finish")
            self.buffers[lp] = []
        for q in engine._queues:
            lp = q.lp
            self._drain_acks(lp, block=True)
            msg = self._receive(lp, "at finish")
            self._note_eot(msg)
            entry = engine._head(q)
            local = (entry[0], entry[1]) if entry is not None else _INF_KEY
            if self.final_head[lp] != local:
                self.abort()
                raise LpWorkerError(
                    f"LP {lp} mirror diverged: worker EOT "
                    f"{self.final_head[lp]} != coordinator head {local}"
                )
            engine._worker_exec[lp] += self.clocks[lp][0]
            engine._worker_idle[lp] += self.clocks[lp][1]
            engine._worker_blocked[lp] += self.clocks[lp][2]
        self.abort()  # everything verified; reap the (exited) workers

    def abort(self) -> None:
        """Tear the fleet down without verification (error paths too)."""
        for conn in self.conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
            proc.join()


def _run_processes(engine, until: float) -> None:
    """Coordinator for the processes backend.

    The merge loop is the serial one — callbacks execute here, in the
    exact global order — with the protocol stream layered on: schedules
    and cancels are captured by the engine's ``_proto`` hook as they
    happen, burst records are appended per LBTS round, and batches flush
    to the worker pipes at burst boundaries.
    """
    from repro.obs.profiler import perf_counter

    if engine._running:
        raise SimulationError("engine is not reentrant")
    engine._running = True
    profiled = engine.profiler is not None
    record = engine.profiler.record if profiled else None
    transport = _WorkerTransport(engine)
    engine._proto = buffers = transport.buffers
    freelist = engine._freelist
    processed = 0
    stop = False
    clean = False
    merge_s = 0.0
    exec_s = [0.0] * engine.shards if profiled else None
    try:
        while not stop:
            scan0 = perf_counter() if profiled else 0.0
            best_q, best_key, second_key = _scan(engine)
            if profiled:
                merge_s += perf_counter() - scan0
            if best_q is None:
                break
            if best_key[0] > until:
                break
            lp = best_q.lp
            engine._active = lp
            engine._min_other = second_key
            engine._bursts += 1
            if best_key[0] > engine._eot_time:
                engine._eot_time = best_key[0]
                engine._eot_advances += 1
            burst_start = processed
            burst0 = perf_counter() if profiled else 0.0
            stopsim = False
            while True:
                nxt = engine._head(best_q)
                if nxt is None:
                    break
                time = nxt[0]
                if (time, nxt[1]) >= engine._min_other:
                    break
                if time > until:
                    stop = True
                    break
                best_q.next = None
                timer = nxt[2]
                engine.now = time
                processed += 1
                timer.fired = True
                engine._cur = lp
                if record is None:
                    try:
                        timer.fn(*timer.args)
                    except StopSimulation:
                        stopsim = True
                        break
                else:
                    fn = timer.fn
                    args = timer.args
                    start = perf_counter()
                    try:
                        fn(*args)
                    except StopSimulation:
                        record(fn, perf_counter() - start)
                        stopsim = True
                        break
                    record(fn, perf_counter() - start)
                if not timer.cancelled and len(freelist) < _FREELIST_MAX:
                    freelist.append(timer)
            if profiled:
                exec_s[lp] += perf_counter() - burst0
            n = processed - burst_start
            engine._active = -1
            if n:
                # Every key executed this burst lies strictly below the
                # final (possibly mid-burst-lowered) bound — schedules
                # never land in the past, so lowerings stay above all
                # previously executed keys.
                bound = engine._min_other
                buffers[lp].append(("b", n, bound[0], bound[1]))
            if stopsim:
                # Serial semantics: StopSimulation returns without the
                # per-LP burst count; the burst record was still shipped
                # so the mirror verifies the keys that did execute.
                clean = True
                return
            engine._lp_exec[lp] += n
            if len(buffers[lp]) >= FLUSH_RECORDS:
                transport.flush(lp)
        if until is not math.inf and until > engine.now:
            engine.now = until
        clean = True
    finally:
        engine._proto = None
        engine._active = -1
        engine._min_other = _INF_KEY
        engine._events_processed += processed
        engine._live -= processed
        engine._running = False
        if profiled:
            engine._merge_s += merge_s
            for i, s in enumerate(exec_s):
                engine._exec_s[i] += s
        if clean:
            transport.finish()
        else:
            transport.abort()
