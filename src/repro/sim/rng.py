"""Deterministic, named random-number streams.

Every stochastic component (client arrival process, trace generation, fault
schedules, link loss) draws from its own named stream so that changing one
component's consumption pattern does not perturb the others.  Streams are
derived from a master seed with a stable hash, making whole experiments
reproducible from a single integer.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(master_seed: int, name: str) -> int:
    """Stable 64-bit seed for stream ``name`` under ``master_seed``.

    Uses SHA-256 rather than ``hash()`` because the latter is salted per
    interpreter run.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose master seed is derived from ``name``.

        Useful for giving each experiment repetition an independent but
        reproducible universe of streams.
        """
        return RngRegistry(derive_seed(self.master_seed, name))

    def snapshot_state(self) -> dict:
        """Deterministic-state digest input (see repro.sim.snapshot).

        Each stream's Mersenne Twister position is hashed, so a restored
        registry that would produce even one different draw produces a
        different digest.
        """
        from .snapshot import rng_digest

        return {
            "master_seed": self.master_seed,
            "streams": {
                name: rng_digest(rng) for name, rng in sorted(self._streams.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RngRegistry seed={self.master_seed}"
            f" streams={sorted(self._streams)}>"
        )
