"""Discrete-event simulation substrate.

Public surface:

* :class:`Engine`, :class:`Event`, :class:`Timer` — the core loop.
* :class:`Process`, :func:`spawn`, :func:`all_of`, :func:`any_of` —
  generator coroutines.
* :class:`Resource`, :class:`Store`, :class:`Gate`, :class:`TokenBucket` —
  contention primitives.
* :class:`RngRegistry` — deterministic named random streams.
* :class:`ThroughputMonitor`, :class:`Annotations`, :class:`Timeline` —
  measurement instruments.
"""

from .engine import Engine, Event, SimulationError, StopSimulation, Timer
from .monitor import Annotation, Annotations, ThroughputMonitor, Timeline
from .process import Interrupted, Process, all_of, any_of, spawn
from .resources import Gate, Resource, ResourceClosed, Store, TokenBucket
from .rng import RngRegistry, derive_seed

__all__ = [
    "Engine",
    "Event",
    "Timer",
    "SimulationError",
    "StopSimulation",
    "Process",
    "Interrupted",
    "spawn",
    "all_of",
    "any_of",
    "Resource",
    "Store",
    "Gate",
    "TokenBucket",
    "ResourceClosed",
    "RngRegistry",
    "derive_seed",
    "ThroughputMonitor",
    "Annotations",
    "Annotation",
    "Timeline",
]
