"""Logical-process sharding of the event engine (conservative synchronization).

:class:`ShardedEngine` partitions the single event heap of
:class:`~repro.sim.engine.Engine` into per-LP (logical process) queues and
advances them under classic Chandy–Misra–Bryant *conservative*
synchronization, specialized to a shared-memory setting:

* Every simulated component has an **affinity**: the LP whose queue its
  events land on.  Affinity is inherited — an event scheduled from inside a
  callback goes to the callback's LP — and redirected at cross-node
  boundaries by :meth:`pin` (the fabric pins the destination node's LP
  around each frame-delivery schedule, so a frame handed to ``node3``
  continues on ``node3``'s queue).  The directed LP pairs this creates are
  exactly CMB's channels.

* In a distributed CMB each LP blocks on a channel until a message or a
  null message raises that channel's clock; the **lookahead** (here the
  per-link minimum latency, plus the fabric fast path's closed-form frame
  delivery, which advances channel knowledge all the way to the delivery
  instant at submit time) bounds how far ahead a null message may promise.
  In shared memory no LP ever has to *wait*: the scheduler runs the LP
  whose head event is the global minimum and lets it **burst** — execute
  events back-to-back from its own queue — for as long as its head stays
  below a conservative lower bound on every other LP's next event (the
  LBTS, lower bound on timestamp).  Cross-LP schedules that land below the
  current bound *lower* it mid-burst; these bound updates are the
  shared-memory analogue of null messages and are counted as such.  The
  bound is never raised mid-burst (a cancellation elsewhere can only raise
  the true minimum, so the bound stays safe), which keeps the burst check
  one tuple comparison.  Deadlock freedom is structural: picking the
  global-minimum head needs no channel round trip.

The non-negotiable property is **exact equivalence**: a sharded run
executes the same events in the same global ``(time, seq)`` order as the
single-loop engine, assigns the same sequence numbers (scheduling order is
itself preserved, by induction), and therefore produces byte-identical
traces, spans, metrics, and store payloads for any shard count.  Sharding
changes only which heap an entry waits in.  This mirrors the
``--no-fastpath`` contract: ``--shards N`` is a performance knob that is
required to be invisible in every observable output.

Statistics (:meth:`lp_stats`) are deliberately kept out of
``snapshot_state`` and the metrics registry: cell payloads embed both, and
LP accounting differs across shard counts by design.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, Optional, Tuple

from .engine import _COMPACT_MIN, _FREELIST_MAX, Engine, SimulationError, StopSimulation, Timer

#: Sentinel burst bound: no other LP has (or can acquire) an earlier event.
_INF_KEY = (math.inf, 0)


class _LpQueue:
    """One logical process's event queue: a heap plus an off-heap head slot.

    Mirrors the parent engine's ``_heap``/``_next`` pair so the dominant
    schedule-then-fire ping-pong stays heap-free *within* each LP.
    """

    __slots__ = ("lp", "heap", "next")

    def __init__(self, lp: int):
        self.lp = lp
        self.heap: list = []  # (time, seq, Timer) tuples
        self.next: Optional[tuple] = None  # earliest entry, kept off-heap

    def __getstate__(self) -> tuple:
        return (self.lp, self.heap, self.next)

    def __setstate__(self, state: tuple) -> None:
        self.lp, self.heap, self.next = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        depth = len(self.heap) + (1 if self.next is not None else 0)
        return f"<_LpQueue lp={self.lp} depth={depth}>"


class ShardedEngine(Engine):
    """Engine with per-LP event queues under conservative synchronization.

    Drop-in for :class:`Engine`: the clock, sequence numbers, timer
    freelist, and live/tombstone accounting are global (shared by all
    LPs), so ``snapshot_state()`` and every observable output are
    byte-identical to a single-loop run.  See the module docstring for
    the synchronization model.
    """

    def __init__(
        self,
        shards: int = 2,
        start_time: float = 0.0,
        backend: str = "serial",
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        from .lpexec import BACKENDS

        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {backend!r}"
            )
        super().__init__(start_time)
        self.shards = shards
        #: Execution backend: "serial" (in-process exact merge), "threads"
        #: (per-LP worker threads under grant/reply alternation), or
        #: "processes" (per-LP OS workers mirroring their queue over
        #: pipes).  All three produce byte-identical observables; see
        #: lpexec's module docstring for the contract.
        self.backend = backend
        #: Protocol capture hook (processes backend): per-LP record
        #: buffers that call_at/call_after/_note_cancel append schedule
        #: and cancel records to while a parallel run is active.  None
        #: outside run_parallel, so the serial hot path pays one
        #: attribute test per schedule.
        self._proto: Optional[list] = None
        self._queues = [_LpQueue(i) for i in range(shards)]
        #: component name -> LP index (assembly-time partition record).
        self._shard_map: Dict[str, int] = {}
        #: LP that call_at/call_after route into (affinity; see pin()).
        self._cur = 0
        #: LP currently bursting inside run(), -1 otherwise.
        self._active = -1
        #: Conservative lower bound on every *other* LP's next event key
        #: during a burst; only lowered mid-burst (never raised).
        self._min_other: Tuple[float, int] = _INF_KEY
        #: CMB channel clocks: (src_lp, dst_lp) -> highest timestamp ever
        #: scheduled across that directed pair.
        self._chan: Dict[Tuple[int, int], float] = {}
        self._xlp = 0  # cross-LP events scheduled (channel messages)
        self._null_updates = 0  # mid-burst bound lowerings (null messages)
        self._bursts = 0  # scheduling rounds (LBTS recomputations)
        # Flight-recorder accounting.  The first three are deterministic
        # (pure functions of the event stream, updated per *burst*, so
        # the unprofiled loop pays a few integer ops per LBTS round);
        # the wall-clock accumulators below them are only advanced by
        # the profiled loop and are zeroed out of snapshots.
        self._lp_exec = [0] * shards  # events executed, per LP
        self._eot_advances = 0  # rounds where the global min time rose
        self._eot_time = -math.inf
        self._merge_s = 0.0  # outer-scan (merge/LBTS) wall-clock
        self._exec_s = [0.0] * shards  # burst wall-clock, per LP
        # Per-worker wall clocks, measured *inside* each worker by the
        # parallel backends (threads/processes) and merged here when the
        # fleet is reaped; all-zero under the serial backend.
        self._worker_exec = [0.0] * shards
        self._worker_idle = [0.0] * shards
        self._worker_blocked = [0.0] * shards

    # ------------------------------------------------------------------
    # Partitioning / affinity
    # ------------------------------------------------------------------
    def assign_shard(self, name: str, lp: int) -> None:
        """Record that component ``name`` lives on LP ``lp``."""
        if not 0 <= lp < self.shards:
            raise ValueError(f"LP {lp} out of range for {self.shards} shards")
        self._shard_map[name] = lp

    def shard_of(self, name: str) -> Optional[int]:
        """LP index of component ``name``, or None if never assigned."""
        return self._shard_map.get(name)

    @property
    def shard_map(self) -> Dict[str, int]:
        return dict(self._shard_map)

    def pin(self, lp: int) -> int:
        """Route subsequent schedules into LP ``lp``; returns the previous
        affinity (callers restore it, pin/unpin style).

        This is the cross-LP hand-off point: the fabric pins the
        destination node's LP around each frame-delivery ``call_at`` so
        the delivery — and everything the receiver then schedules —
        continues on the receiver's queue.
        """
        prev = self._cur
        self._cur = lp
        return prev

    # ------------------------------------------------------------------
    # Scheduling (routed to the current LP's queue)
    # ------------------------------------------------------------------
    def call_at(self, time: float, fn: Callable, *args: Any) -> Timer:
        """Schedule ``fn(*args)`` at absolute virtual ``time``.

        Identical semantics (and sequence numbering) to the base engine;
        the entry lands on the current-affinity LP's queue, and a
        cross-LP schedule during a burst additionally updates the channel
        clock and may lower the burst bound (the null-message analogue).
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f} < now={self.now:.6f}"
            )
        if time != time:  # NaN (cheaper than math.isnan on the hot path)
            raise SimulationError("cannot schedule at NaN time")
        self._seq = seq = self._seq + 1
        freelist = self._freelist
        if freelist:
            timer = freelist.pop()
            timer.time = time
            timer.seq = seq
            timer.fn = fn
            timer.args = args
            timer.cancelled = False
            timer.fired = False
        else:
            timer = Timer(time, seq, fn, args, self)
            self._timer_allocs += 1
        entry = (time, seq, timer)
        q = self._queues[self._cur]
        nxt = q.next
        if nxt is None:
            heap = q.heap
            if heap and heap[0] < entry:
                heappush(heap, entry)
            else:
                q.next = entry
        elif entry < nxt:
            heappush(q.heap, nxt)
            q.next = entry
        else:
            heappush(q.heap, entry)
        self._live += 1
        proto = self._proto
        if proto is not None:
            proto[q.lp].append(("s", time, seq))
        active = self._active
        if active >= 0 and q.lp != active:
            chan = self._chan
            pair = (active, q.lp)
            prev = chan.get(pair)
            if prev is None or time > prev:
                chan[pair] = time
            self._xlp += 1
            if (time, seq) < self._min_other:
                self._min_other = (time, seq)
                self._null_updates += 1
        return timer

    def call_after(self, delay: float, fn: Callable, *args: Any) -> Timer:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        # Body duplicated from call_at (same rationale as the base
        # engine: this is the hottest scheduling entry point).
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        time = self.now + delay
        if time != time:
            raise SimulationError("cannot schedule at NaN time")
        self._seq = seq = self._seq + 1
        freelist = self._freelist
        if freelist:
            timer = freelist.pop()
            timer.time = time
            timer.seq = seq
            timer.fn = fn
            timer.args = args
            timer.cancelled = False
            timer.fired = False
        else:
            timer = Timer(time, seq, fn, args, self)
            self._timer_allocs += 1
        entry = (time, seq, timer)
        q = self._queues[self._cur]
        nxt = q.next
        if nxt is None:
            heap = q.heap
            if heap and heap[0] < entry:
                heappush(heap, entry)
            else:
                q.next = entry
        elif entry < nxt:
            heappush(q.heap, nxt)
            q.next = entry
        else:
            heappush(q.heap, entry)
        self._live += 1
        proto = self._proto
        if proto is not None:
            proto[q.lp].append(("s", time, seq))
        active = self._active
        if active >= 0 and q.lp != active:
            chan = self._chan
            pair = (active, q.lp)
            prev = chan.get(pair)
            if prev is None or time > prev:
                chan[pair] = time
            self._xlp += 1
            if (time, seq) < self._min_other:
                self._min_other = (time, seq)
                self._null_updates += 1
        return timer

    # ------------------------------------------------------------------
    # Tombstone bookkeeping (global count, all-queue compaction)
    # ------------------------------------------------------------------
    def _note_cancel(self, timer: Timer) -> None:
        proto = self._proto
        if proto is not None:
            # A timer does not know which LP queue holds it, so cancels
            # are broadcast; mirrors hold seqs they never see, which is
            # bounded by the run's cancel count (see lpexec.LpMirror).
            rec = ("c", timer.seq)
            for buf in proto:
                buf.append(rec)
        self._live -= 1
        self._tombstones = tombstones = self._tombstones + 1
        if tombstones > _COMPACT_MIN and tombstones * 2 > sum(
            len(q.heap) for q in self._queues
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild every LP heap without tombstones (in place, O(n))."""
        self._compactions += 1
        freelist = self._freelist
        remaining = 0
        for q in self._queues:
            heap = q.heap
            live = []
            for entry in heap:
                timer = entry[2]
                if timer.cancelled:
                    if len(freelist) < _FREELIST_MAX:
                        freelist.append(timer)
                else:
                    live.append(entry)
            heap[:] = live
            heapify(heap)
            nxt = q.next
            if nxt is not None and nxt[2].cancelled:
                remaining += 1
        self._tombstones = remaining

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _head(self, q: _LpQueue) -> Optional[tuple]:
        """Live head entry of ``q`` (left in its slot), or None when empty.

        Tombstones encountered on the way are reclaimed, exactly as the
        base engine's run/peek loops do.
        """
        nxt = q.next
        heap = q.heap
        freelist = self._freelist
        while True:
            if nxt is None:
                if not heap:
                    q.next = None
                    return None
                nxt = heappop(heap)
            timer = nxt[2]
            if not timer.cancelled:
                q.next = nxt
                return nxt
            self._tombstones -= 1
            if len(freelist) < _FREELIST_MAX:
                freelist.append(timer)
            nxt = None

    def peek(self) -> float:
        """Time of the next live event across all LPs, or ``inf``."""
        best = math.inf
        for q in self._queues:
            entry = self._head(q)
            if entry is not None and entry[0] < best:
                best = entry[0]
        return best

    def step(self) -> bool:
        """Run the single globally-next event.  False when all queues are
        empty.  The callback runs with its LP as the scheduling affinity
        (no burst, so no channel accounting — stats cover run() only)."""
        best_q = None
        best_entry = None
        for q in self._queues:
            entry = self._head(q)
            if entry is not None and (best_entry is None or entry < best_entry):
                best_q = q
                best_entry = entry
        if best_q is None:
            return False
        best_q.next = None
        timer = best_entry[2]
        self.now = best_entry[0]
        self._events_processed += 1
        self._live -= 1
        timer.fired = True
        fn = timer.fn
        args = timer.args
        timer.fn = None
        timer.args = ()
        prev = self._cur
        self._cur = best_q.lp
        try:
            fn(*args)
        finally:
            self._cur = prev
        if not timer.cancelled:
            self._recycle(timer)
        return True

    def run(self, until: float = math.inf) -> None:
        """Run events in global ``(time, seq)`` order until the queues
        drain or ``until`` is reached.

        Outer loop: scan the LP head keys for the global minimum (the
        LBTS round).  Inner loop: burst that LP — execute its events
        back-to-back while its head key stays below the conservative
        bound on every other LP (initialized to the second-best head key,
        lowered by cross-LP schedules, never raised).  Semantics match
        the base engine exactly: same stop conditions, same clock
        advance, same StopSimulation and live-count handling.

        The parallel backends dispatch to :mod:`repro.sim.lpexec`; the
        serial merge below stays probe-free.
        """
        if self.backend != "serial":
            from .lpexec import run_parallel

            return run_parallel(self, until)
        if self.profiler is not None:
            return self._run_profiled(until)
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        queues = self._queues
        freelist = self._freelist
        processed = 0
        stop = False
        try:
            while not stop:
                best_q = None
                best_key: Tuple[float, int] = _INF_KEY
                second_key: Tuple[float, int] = _INF_KEY
                for q in queues:
                    entry = self._head(q)
                    if entry is None:
                        continue
                    key = (entry[0], entry[1])
                    if key < best_key:
                        second_key = best_key
                        best_key = key
                        best_q = q
                    elif key < second_key:
                        second_key = key
                if best_q is None:
                    break
                if best_key[0] > until:
                    break
                lp = best_q.lp
                self._active = lp
                self._min_other = second_key
                self._bursts += 1
                if best_key[0] > self._eot_time:
                    self._eot_time = best_key[0]
                    self._eot_advances += 1
                burst_start = processed
                while True:
                    nxt = self._head(best_q)
                    if nxt is None:
                        break
                    time = nxt[0]
                    # _min_other may have been lowered by a cross-LP
                    # schedule during this burst; the head is only safe
                    # to run while it stays strictly below the bound
                    # (keys are unique, so no tie is possible).
                    if (time, nxt[1]) >= self._min_other:
                        break
                    if time > until:
                        stop = True
                        break
                    best_q.next = None
                    timer = nxt[2]
                    self.now = time
                    processed += 1
                    timer.fired = True
                    self._cur = lp
                    try:
                        timer.fn(*timer.args)
                    except StopSimulation:
                        return
                    if not timer.cancelled and len(freelist) < _FREELIST_MAX:
                        freelist.append(timer)
                self._lp_exec[lp] += processed - burst_start
                self._active = -1
            if until is not math.inf and until > self.now:
                self.now = until
        finally:
            self._active = -1
            self._min_other = _INF_KEY
            self._events_processed += processed
            self._live -= processed
            self._running = False

    def _run_profiled(self, until: float = math.inf) -> None:
        """Flight-recorder variant of :meth:`run` (``profiler`` attached).

        Same event order, recycling, and accounting as the unprofiled
        loop, plus wall-clock attribution: per-callback self-time to the
        recorder, outer-scan (merge) time to ``_merge_s`` and per-LP
        burst time to ``_exec_s`` — the serial-backend overhead split
        that ROADMAP item 4's parallel-backend decision needs.
        """
        from repro.obs.profiler import perf_counter

        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        queues = self._queues
        freelist = self._freelist
        record = self.profiler.record
        processed = 0
        stop = False
        merge_s = 0.0
        exec_s = [0.0] * self.shards
        try:
            while not stop:
                scan0 = perf_counter()
                best_q = None
                best_key: Tuple[float, int] = _INF_KEY
                second_key: Tuple[float, int] = _INF_KEY
                for q in queues:
                    entry = self._head(q)
                    if entry is None:
                        continue
                    key = (entry[0], entry[1])
                    if key < best_key:
                        second_key = best_key
                        best_key = key
                        best_q = q
                    elif key < second_key:
                        second_key = key
                merge_s += perf_counter() - scan0
                if best_q is None:
                    break
                if best_key[0] > until:
                    break
                lp = best_q.lp
                self._active = lp
                self._min_other = second_key
                self._bursts += 1
                if best_key[0] > self._eot_time:
                    self._eot_time = best_key[0]
                    self._eot_advances += 1
                burst_start = processed
                burst0 = perf_counter()
                while True:
                    nxt = self._head(best_q)
                    if nxt is None:
                        break
                    time = nxt[0]
                    if (time, nxt[1]) >= self._min_other:
                        break
                    if time > until:
                        stop = True
                        break
                    best_q.next = None
                    timer = nxt[2]
                    self.now = time
                    processed += 1
                    timer.fired = True
                    self._cur = lp
                    fn = timer.fn
                    args = timer.args
                    start = perf_counter()
                    try:
                        fn(*args)
                    except StopSimulation:
                        record(fn, perf_counter() - start)
                        return
                    record(fn, perf_counter() - start)
                    if not timer.cancelled and len(freelist) < _FREELIST_MAX:
                        freelist.append(timer)
                exec_s[lp] += perf_counter() - burst0
                self._lp_exec[lp] += processed - burst_start
                self._active = -1
            if until is not math.inf and until > self.now:
                self.now = until
        finally:
            self._active = -1
            self._min_other = _INF_KEY
            self._events_processed += processed
            self._live -= processed
            self._running = False
            self._merge_s += merge_s
            for i, s in enumerate(exec_s):
                self._exec_s[i] += s

    # ------------------------------------------------------------------
    # Snapshot support
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Zero the wall-clock accumulators out of checkpoints.

        They are host noise, not simulation state: a warm blob captured
        by a profiled run must be indistinguishable from one captured by
        an unprofiled run.
        """
        state = super().__getstate__()
        state["_merge_s"] = 0.0
        state["_exec_s"] = [0.0] * self.shards
        state["_worker_exec"] = [0.0] * self.shards
        state["_worker_idle"] = [0.0] * self.shards
        state["_worker_blocked"] = [0.0] * self.shards
        # Backend runtime (worker fleets, pipes, buffers) lives entirely
        # in run_parallel locals, so a checkpoint never carries it; the
        # capture hook is forced off for the same reason.
        state["_proto"] = None
        return state

    # ------------------------------------------------------------------
    # Introspection (kept out of snapshot_state/metrics: LP accounting
    # differs across shard counts by design, observable state must not)
    # ------------------------------------------------------------------
    def lbts(self) -> float:
        """Lower bound on the timestamp of the next event anywhere.

        In shared memory every in-flight cross-LP message is already a
        queue entry, so the LBTS is simply the minimum head time — no
        channel-clock term is needed (the clocks in ``_chan`` are
        descriptive statistics of past traffic).
        """
        return self.peek()

    def lp_stats(self) -> dict:
        """Synchronization statistics (diagnostics; see PERFORMANCE.md).

        ``nulls_sent``/``nulls_received`` name the CMB view of the
        shared-memory analogues: every cross-LP schedule transmits a
        channel-clock promise (sent), and the ones that lower the
        bursting LP's bound are the promises it consumed (received).
        ``merge_idle_s``/``lp_exec_s`` are wall-clock and stay zero
        unless a flight recorder was attached (``engine.profiler``);
        ``worker_exec_s``/``worker_idle_s``/``worker_blocked_s`` are
        measured *inside* each worker by the parallel backends
        (always-on there, all-zero under ``serial``), and
        ``worker_imbalance`` is the load-imbalance index over those real
        per-worker clocks.  Everything else is deterministic.
        """
        lp_events = list(self._lp_exec)
        total = sum(lp_events)
        # None (rendered "n/a") when no events ran: a ratio over zero
        # events is undefined, not "perfectly balanced".
        imbalance = (
            max(lp_events) * self.shards / total if total else None
        )
        worker_exec = list(self._worker_exec)
        worker_total = sum(worker_exec)
        worker_imbalance = (
            max(worker_exec) * self.shards / worker_total
            if worker_total
            else None
        )
        return {
            "shards": self.shards,
            "backend": self.backend,
            "bursts": self._bursts,
            "cross_lp_events": self._xlp,
            "null_updates": self._null_updates,
            "nulls_sent": self._xlp,
            "nulls_received": self._null_updates,
            "lp_events": lp_events,
            "eot_advances": self._eot_advances,
            "imbalance": imbalance,
            "merge_idle_s": self._merge_s,
            "lp_exec_s": list(self._exec_s),
            "worker_exec_s": worker_exec,
            "worker_idle_s": list(self._worker_idle),
            "worker_blocked_s": list(self._worker_blocked),
            "worker_imbalance": worker_imbalance,
            "channel_clocks": {
                f"{src}->{dst}": clock
                for (src, dst), clock in sorted(self._chan.items())
            },
            "queue_depths": [
                len(q.heap) + (1 if q.next is not None else 0)
                for q in self._queues
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedEngine t={self.now:.6f} shards={self.shards} "
            f"pending={self.pending}>"
        )


def partition_nodes(node_ids: list, shards: int) -> Dict[str, int]:
    """Contiguous block partition of ``node_ids`` over ``shards`` LPs.

    Node ``i`` of ``n`` goes to LP ``i * shards // n``: blocks differ in
    size by at most one and the assignment is stable under the node
    ordering, so a given (n_nodes, shards) pair always produces the same
    partition.
    """
    n = len(node_ids)
    if n == 0:
        return {}
    return {name: i * shards // n for i, name in enumerate(node_ids)}
