"""Measurement instruments: throughput buckets, annotated timelines.

Phase 1 of the paper's methodology is entirely about *throughput as a
function of time* around a fault-injection event (Figures 2-5).  The
:class:`ThroughputMonitor` bins request completions into fixed-width
buckets; the :class:`Annotations` log records the instants the system
detected/reconfigured/recovered, which phase 2 uses to delimit the seven
stages without curve fitting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..obs.events import ANNOTATION, MONITOR_BUCKET
from ..obs.metrics import bound_counter
from .engine import Engine


@dataclass(frozen=True)
class Annotation:
    """A named instant on the experiment timeline."""

    time: float
    label: str
    detail: str = ""


class Annotations:
    """Ordered log of named instants (fault injected, detected, ...).

    When constructed with an event bus, every ``mark`` is routed through
    the bus as a ``sim.annotation`` event and the log repopulates itself
    from the delivery — so stage extraction and exported traces read the
    same timeline, and any other subscriber (a trace recorder, a live
    printer) sees annotations interleaved with the rest of the event
    stream in engine order.  Without a bus the log appends directly; the
    public API is identical either way.
    """

    def __init__(self, engine: Engine, bus=None):
        self.engine = engine
        self.entries: List[Annotation] = []
        self.bus = bus
        if bus is not None:
            bus.subscribe(self._on_event, names=[ANNOTATION])

    def mark(self, label: str, detail: str = "") -> None:
        if self.bus is not None:
            self.bus.publish(ANNOTATION, label=label, detail=detail)
        else:
            self.entries.append(Annotation(self.engine.now, label, detail))

    def _on_event(self, event) -> None:
        self.entries.append(
            Annotation(
                event.time,
                event.fields.get("label", ""),
                event.fields.get("detail", ""),
            )
        )

    def first(self, label: str) -> Optional[Annotation]:
        for entry in self.entries:
            if entry.label == label:
                return entry
        return None

    def last(self, label: str) -> Optional[Annotation]:
        for entry in reversed(self.entries):
            if entry.label == label:
                return entry
        return None

    def all(self, label: str) -> List[Annotation]:
        return [e for e in self.entries if e.label == label]

    def times(self, label: str) -> List[float]:
        return [e.time for e in self.entries if e.label == label]

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


class ThroughputMonitor:
    """Bins successes and failures into fixed-width time buckets.

    ``success``/``failure`` record one completed or failed request at the
    current simulation time.  ``series`` converts the bins into
    (bucket_start, requests_per_second) pairs — the exact data behind the
    paper's timeline figures.

    When the engine carries an event bus, every *closed* bucket is also
    published as a ``sim.monitor.bucket`` event, so live subscribers (the
    online stage detector, the health watchdog) see the same stream the
    post-hoc series is built from.  Publication is lazy — a bucket is
    emitted on the first completion that lands in a *later* bucket, and
    stall gaps are emitted as explicit zero buckets — so no timer is ever
    scheduled and observation cannot perturb the run.  ``flush`` emits
    the remaining closed buckets at end of run.
    """

    def __init__(self, engine: Engine, bucket_width: float = 1.0):
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.engine = engine
        self.bucket_width = bucket_width
        self._ok: Dict[int, int] = {}
        self._failed: Dict[int, int] = {}
        self._pub_next = int(engine.now / bucket_width)
        self._total_ok = bound_counter(engine, "sim.monitor.requests_ok")
        self._total_failed = bound_counter(engine, "sim.monitor.requests_failed")

    @property
    def total_ok(self) -> int:
        return self._total_ok.value

    @property
    def total_failed(self) -> int:
        return self._total_failed.value

    def _bucket(self) -> int:
        return int(self.engine.now / self.bucket_width)

    def _publish_through(self, b: int) -> None:
        """Publish every closed bucket in [_pub_next, b) on the bus."""
        bus = getattr(self.engine, "bus", None)
        if bus is not None:
            width = self.bucket_width
            for i in range(self._pub_next, b):
                bus.publish(
                    MONITOR_BUCKET,
                    start=i * width,
                    ok=self._ok.get(i, 0),
                    failed=self._failed.get(i, 0),
                    width=width,
                )
        self._pub_next = b

    def flush(self, end: Optional[float] = None) -> None:
        """Publish every bucket fully closed at ``end`` (default: now)."""
        if end is None:
            end = self.engine.now
        b = int(end / self.bucket_width)
        if b > self._pub_next:
            self._publish_through(b)

    def success(self, n: int = 1) -> None:
        b = self._bucket()
        if b > self._pub_next:
            self._publish_through(b)
        self._ok[b] = self._ok.get(b, 0) + n
        self._total_ok.inc(n)

    def failure(self, n: int = 1) -> None:
        b = self._bucket()
        if b > self._pub_next:
            self._publish_through(b)
        self._failed[b] = self._failed.get(b, 0) + n
        self._total_failed.inc(n)

    @property
    def total(self) -> int:
        return self.total_ok + self.total_failed

    def availability(self) -> float:
        """Fraction of requests served successfully over the whole run."""
        if self.total == 0:
            return 1.0
        return self.total_ok / self.total

    def series(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """(bucket_start_time, throughput req/s) for every bucket in range.

        Buckets with no completions appear explicitly with rate 0 so stall
        periods are visible in the series.
        """
        if end is None:
            end = self.engine.now
        first = int(start / self.bucket_width)
        last = int(math.ceil(end / self.bucket_width))
        width = self.bucket_width
        return [
            (b * width, self._ok.get(b, 0) / width) for b in range(first, last)
        ]

    def failure_series(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        if end is None:
            end = self.engine.now
        first = int(start / self.bucket_width)
        last = int(math.ceil(end / self.bucket_width))
        width = self.bucket_width
        return [
            (b * width, self._failed.get(b, 0) / width)
            for b in range(first, last)
        ]

    def mean_rate(self, start: float, end: float) -> float:
        """Average successful throughput (req/s) over [start, end)."""
        if end <= start:
            return 0.0
        first = int(start / self.bucket_width)
        last = int(math.ceil(end / self.bucket_width))
        count = sum(self._ok.get(b, 0) for b in range(first, last))
        return count / ((last - first) * self.bucket_width)


@dataclass
class Timeline:
    """A completed phase-1 measurement: series + annotations + metadata."""

    version: str
    fault: str
    bucket_width: float
    series: List[Tuple[float, float]] = field(default_factory=list)
    failures: List[Tuple[float, float]] = field(default_factory=list)
    annotations: List[Annotation] = field(default_factory=list)
    normal_throughput: float = 0.0
    availability: float = 1.0

    def annotation_time(self, label: str) -> Optional[float]:
        for entry in self.annotations:
            if entry.label == label:
                return entry.time
        return None

    def annotation_times(self, label: str) -> List[float]:
        return [e.time for e in self.annotations if e.label == label]

    def rate_at(self, time: float) -> float:
        """Throughput of the bucket containing ``time`` (0 outside range)."""
        for start, rate in self.series:
            if start <= time < start + self.bucket_width:
                return rate
        return 0.0

    def mean_rate(self, start: float, end: float) -> float:
        picked = [
            rate
            for t, rate in self.series
            if t + self.bucket_width > start and t < end
        ]
        if not picked:
            return 0.0
        return sum(picked) / len(picked)
