"""CPU cost models for the communication paths.

These constants are the calibration knobs that make the simulated PRESS
versions saturate at Table 1's throughputs.  They encode the *mechanisms*
the paper describes — kernel crossings and two copies for TCP, user-level
sends for VIA, interrupt-driven vs. polled receives, zero-copy transfers —
with magnitudes fitted so the 4-node cluster peaks near the published
requests/second.

The absolute values are per-operation CPU seconds on the simulated
PIII-800-class node.  Experiments may scale them uniformly
(``ExperimentScale``) to trade fidelity for wall-clock speed; scaling
preserves every ratio and therefore every conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .base import Message


@dataclass(frozen=True)
class TransportCosts:
    """Per-message CPU costs on the send and receive paths.

    Attributes:
        send_overhead: fixed cost to initiate a send (syscall + protocol
            for TCP; descriptor post for VIA).
        send_copy_per_byte: data-touching cost at the sender (user→kernel
            copy for TCP, user→registered-buffer copy for VIA with copies,
            0 for zero-copy).
        recv_overhead: fixed cost to take delivery (interrupt + syscall
            for TCP; interrupt for VIA-0; poll pickup for remote-write
            versions).
        recv_copy_per_byte: data-touching cost at the receiver.
    """

    send_overhead: float
    send_copy_per_byte: float
    recv_overhead: float
    recv_copy_per_byte: float

    def send_cost(self, msg: Message) -> float:
        return self.send_overhead + self.send_copy_per_byte * msg.size

    def recv_cost(self, msg: Message) -> float:
        return self.recv_overhead + self.recv_copy_per_byte * msg.size

    def scaled(self, factor: float) -> "TransportCosts":
        """Rescale for an ``ExperimentScale`` of ``factor``.

        Fixed costs scale by ``factor`` (time stretches); per-byte costs
        scale by ``factor**2`` because message *sizes* shrink by the same
        factor — the product keeps every message's data-touching cost in
        constant proportion to its fixed cost.
        """
        return replace(
            self,
            send_overhead=self.send_overhead * factor,
            send_copy_per_byte=self.send_copy_per_byte * factor * factor,
            recv_overhead=self.recv_overhead * factor,
            recv_copy_per_byte=self.recv_copy_per_byte * factor * factor,
        )


#: Copy bandwidth of the testbed-era memory system, ~400 MB/s.
COPY_SECONDS_PER_BYTE = 2.5e-9

#: Kernel TCP: syscall + checksum + protocol on both sides, interrupt-driven
#: receive, one copy each way on top of protocol work.  The 47us/side
#: fixed cost calibrates the 4-node cluster to Table 1's 4965 req/s.
TCP_COSTS = TransportCosts(
    send_overhead=47e-6,
    send_copy_per_byte=2 * COPY_SECONDS_PER_BYTE,
    recv_overhead=47e-6,
    recv_copy_per_byte=2 * COPY_SECONDS_PER_BYTE,
)

#: VIA with regular descriptors: user-level send (no syscall), one copy into
#: the registered buffer; interrupt-driven receive with one copy out.
VIA0_COSTS = TransportCosts(
    send_overhead=9e-6,
    send_copy_per_byte=COPY_SECONDS_PER_BYTE,
    recv_overhead=16e-6,
    recv_copy_per_byte=COPY_SECONDS_PER_BYTE,
)

#: VIA with remote memory writes and polling: no receive interrupt, the
#: poll loop picks completed buffers out of the ring.
VIA3_COSTS = TransportCosts(
    send_overhead=9e-6,
    send_copy_per_byte=COPY_SECONDS_PER_BYTE,
    recv_overhead=3e-6,
    recv_copy_per_byte=COPY_SECONDS_PER_BYTE,
)

#: VIA remote writes + zero-copy: file data leaves straight from the pinned
#: file cache and is forwarded to the client right out of the communication
#: buffer — no data touching on either side.
VIA5_COSTS = TransportCosts(
    send_overhead=9e-6,
    send_copy_per_byte=0.0,
    recv_overhead=3e-6,
    recv_copy_per_byte=0.0,
)
