"""The per-node kernel TCP stack.

Owns the connection endpoints, dispatches frames, implements connection
setup/teardown, and — critically for the paper — implements the *kernel's*
behaviour that outlives the application process:

* when the **process** dies but the machine is up, the kernel closes its
  sockets, so peers learn of the crash almost immediately (RST/FIN);
* when the **machine** crashes, nothing is sent; peers keep retransmitting
  into the void, and only discover the failure when the rebooted kernel
  answers a stale segment with an RST — "the other nodes do not detect the
  reboot until a little while later";
* a **hung** process keeps its connections alive (the kernel still ACKs),
  so TCP-PRESS correctly sees no fault during a hang while everything
  stalls on full buffers.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ...net.nic import Nic
from ...net.packet import Frame
from ...obs.events import TCP_ENDPOINT_BROKEN, TCP_FRAMING_ERROR
from ...obs.metrics import bound_counter
from ...osim.node import Node
from ...sim.engine import Engine
from ..base import Message, Transport
from ..costs import TCP_COSTS, TransportCosts
from .connection import (
    AckPayload,
    CtrlPayload,
    SegPayload,
    StreamRecord,
    TcpEndpoint,
    next_generation,
)
from .params import DEFAULT_TCP_PARAMS, TcpParams

#: CPU cost of fielding an application-level datagram (heartbeats, joins).
_DGRAM_BYTES = 64
#: CPU cost charged for error-path notifications delivered to the app.
_NOTIFY_COST = 5e-6


class TcpTransport(Transport):
    """Kernel TCP + PRESS framing for one cluster node."""

    preserves_boundaries = False

    def __init__(
        self,
        engine: Engine,
        node: Node,
        costs: TransportCosts = TCP_COSTS,
        params: TcpParams = DEFAULT_TCP_PARAMS,
    ):
        super().__init__(engine, node.node_id)
        self.node = node
        self.nic: Nic = node.nic
        self.costs = costs
        self.params = params
        self.endpoints: Dict[str, TcpEndpoint] = {}
        self.on_accept: Optional[Callable[[str], None]] = None
        self.on_datagram: Optional[Callable[[str, Message], None]] = None
        self._framing_errors = bound_counter(
            engine, "transport.tcp.framing_errors", node=node.node_id
        )

        # The NIC routes by frame kind already — register each handler
        # directly rather than re-dispatching through an if-chain (data
        # segments and ACKs dominate the event stream).
        for kind, handler in (
            ("tcp-seg", self._on_segment),
            ("tcp-ack", self._on_ack),
            ("tcp-syn", self._on_syn),
            ("tcp-synack", self._on_synack),
            ("tcp-rst", self._on_rst),
            ("tcp-close", self._on_close),
            ("tcp-dgram", self._on_dgram),
        ):
            self.nic.register(kind, handler)
        node.process.on_death.append(self._on_process_death)
        node.process.on_cont.append(self._on_process_cont)

    @property
    def framing_errors(self) -> int:
        return self._framing_errors.value

    def _record_framing_error(self, ep: TcpEndpoint) -> None:
        self._framing_errors.inc()
        bus = self.engine.bus
        if bus is not None:
            bus.publish(TCP_FRAMING_ERROR, node=self.node_id, peer=ep.peer)

    # ------------------------------------------------------------------
    # Kernel memory access (re-read per call: a reboot replaces the object)
    # ------------------------------------------------------------------
    @property
    def kernel_memory(self):
        return self.node.kernel_memory

    def _charge_cpu(self, cost: float) -> None:
        self.node.cpu.charge(cost)

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def connect(
        self, peer: str, on_result: Optional[Callable[[bool], None]] = None
    ) -> TcpEndpoint:
        """Open a connection to ``peer``; SYN retries then success/failure."""
        existing = self.endpoints.get(peer)
        if existing is not None and not existing.broken:
            if on_result is not None:
                self.engine.call_soon(on_result, True)
            return existing
        ep = TcpEndpoint(self, peer, next_generation(), self.params)
        ep.connect_cb = on_result
        self.endpoints[peer] = ep
        self._syn_attempt(ep, 0)
        return ep

    def _finish_connect(self, ep: TcpEndpoint, ok: bool) -> None:
        cb, ep.connect_cb = ep.connect_cb, None
        if cb is not None:
            cb(ok)

    def _syn_attempt(self, ep: TcpEndpoint, attempt: int) -> None:
        if ep.broken or ep.established:
            return
        if self.endpoints.get(ep.peer) is not ep:
            return  # superseded
        if attempt >= self.params.syn_max_retries:
            self._endpoint_broken(ep, "connect-timeout", notify=False)
            self._finish_connect(ep, False)
            return
        if self.kernel_memory.probe(64):
            self.nic.send(
                Frame(
                    src=self.node_id,
                    dst=ep.peer,
                    size=64,
                    kind="tcp-syn",
                    payload=CtrlPayload(gen=ep.gen),
                )
            )
        self.engine.call_after(
            self.params.syn_retry_interval, self._syn_attempt, ep, attempt + 1
        )

    def channel(self, peer: str) -> Optional[TcpEndpoint]:
        return self.endpoints.get(peer)

    def close_channel(self, peer: str) -> None:
        """Application-initiated close (graceful, FIN-like)."""
        ep = self.endpoints.pop(peer, None)
        if ep is None:
            return
        self._send_ctrl(peer, "tcp-close", ep.gen)
        ep.mark_broken("closed-locally")

    def shutdown(self) -> None:
        """Tear down every connection (used by operator resets)."""
        for peer in list(self.endpoints):
            self.close_channel(peer)

    # ------------------------------------------------------------------
    # Kernel reactions to process/machine death
    # ------------------------------------------------------------------
    def _on_process_death(self, reason: str) -> None:
        if self.node.up:
            # Kernel survives: close sockets, peers get FIN/RST quickly.
            for peer, ep in list(self.endpoints.items()):
                self._send_ctrl(peer, "tcp-close", ep.gen)
                ep.mark_broken("process-died")
        else:
            # Machine crash: connection state evaporates silently.
            for ep in self.endpoints.values():
                ep.mark_broken("node-crashed")
        self.endpoints.clear()

    def _send_ctrl(self, peer: str, kind: str, gen: int) -> None:
        if not self.kernel_memory.probe(64):
            return
        self.nic.send(
            Frame(
                src=self.node_id,
                dst=peer,
                size=64,
                kind=kind,
                payload=CtrlPayload(gen=gen),
            )
        )

    # ------------------------------------------------------------------
    # Datagrams (heartbeats, join protocol)
    # ------------------------------------------------------------------
    def send_datagram(self, peer: str, msg: Message) -> None:
        self._charge_cpu(self.costs.send_cost(msg))
        if not self.kernel_memory.probe(msg.size + _DGRAM_BYTES):
            return  # no skbuf: datagram silently dropped
        self.nic.send(
            Frame(
                src=self.node_id,
                dst=peer,
                size=msg.size + _DGRAM_BYTES,
                kind="tcp-dgram",
                payload=msg,
            )
        )

    # ------------------------------------------------------------------
    # Frame dispatch (handlers registered per kind on the NIC)
    # ------------------------------------------------------------------
    def _on_segment(self, frame: Frame) -> None:
        payload: SegPayload = frame.payload
        ep = self.endpoints.get(frame.src)
        if ep is None or ep.gen != payload.gen or ep.broken:
            # No such connection here (e.g. we rebooted): answer RST.
            self._send_ctrl(frame.src, "tcp-rst", payload.gen)
            return
        ep.handle_segment(payload)

    def _on_ack(self, frame: Frame) -> None:
        payload: AckPayload = frame.payload
        ep = self.endpoints.get(frame.src)
        if ep is not None and ep.gen == payload.gen and not ep.broken:
            ep.handle_ack(payload)

    def _on_syn(self, frame: Frame) -> None:
        gen = frame.payload.gen
        if not self.node.process.alive:
            self._send_ctrl(frame.src, "tcp-rst", gen)
            return
        old = self.endpoints.get(frame.src)
        if old is not None:
            if old.gen == gen:
                self._send_ctrl(frame.src, "tcp-synack", gen)
                return  # duplicate SYN
            old.mark_broken("superseded")
        ep = TcpEndpoint(self, frame.src, gen, self.params)
        ep.established = True
        self.endpoints[frame.src] = ep
        self._send_ctrl(frame.src, "tcp-synack", gen)
        if self.on_accept is not None:
            self.node.cpu.submit(_NOTIFY_COST, self._notify_accept, frame.src)

    def _notify_accept(self, peer: str) -> None:
        if self.on_accept is not None:
            self.on_accept(peer)

    def _on_synack(self, frame: Frame) -> None:
        ep = self.endpoints.get(frame.src)
        if ep is None or ep.gen != frame.payload.gen or ep.broken:
            return
        if not ep.established:
            ep.established = True
            ep._pump()
            self._finish_connect(ep, True)

    def _on_rst(self, frame: Frame) -> None:
        ep = self.endpoints.get(frame.src)
        if ep is not None and ep.gen == frame.payload.gen:
            if not ep.established:
                del self.endpoints[frame.src]
                ep.mark_broken("connection-refused")
                self._finish_connect(ep, False)
                return
            self._endpoint_broken(ep, "connection-reset")

    def _on_close(self, frame: Frame) -> None:
        ep = self.endpoints.get(frame.src)
        if ep is not None and ep.gen == frame.payload.gen:
            self._endpoint_broken(ep, "peer-closed")

    def _on_dgram(self, frame: Frame) -> None:
        # Datagrams (heartbeats, join control) are fielded by PRESS's
        # dedicated receive thread, so they bypass the main work queue —
        # a blocked main loop must not delay heartbeat receipt.  A hung
        # process (all threads stopped) receives nothing.
        if not self.node.process.running:
            return
        if self.on_datagram is not None:
            self.on_datagram(frame.src, frame.payload)

    # ------------------------------------------------------------------
    # Upcalls from endpoints
    # ------------------------------------------------------------------
    def _endpoint_broken(
        self, ep: TcpEndpoint, reason: str, notify: bool = True
    ) -> None:
        if self.endpoints.get(ep.peer) is ep:
            del self.endpoints[ep.peer]
        already_broken = ep.broken
        ep.mark_broken(reason)
        if not already_broken:
            bus = self.engine.bus
            if bus is not None:
                bus.publish(
                    TCP_ENDPOINT_BROKEN,
                    node=self.node_id,
                    peer=ep.peer,
                    reason=reason,
                )
        if notify and not already_broken:
            self.node.cpu.submit(_NOTIFY_COST, self._break_up, ep.peer, reason)

    def _deliver_record(self, ep: TcpEndpoint, record: StreamRecord) -> None:
        """A complete framed message sits in the receive buffer.

        PRESS's receive thread read()s it out promptly — freeing socket
        buffer space so the sender's window keeps moving — and queues the
        application work.  When the process is stopped no thread runs:
        the bytes stay in the kernel receive buffer, ACKs stop once it
        fills, and the sender stalls (the hang-fault behaviour).
        """
        if self.node.process.running:
            self._read_out(ep, record)
        else:
            ep.frozen_records.append(record)

    def _read_out(self, ep: TcpEndpoint, record: StreamRecord) -> None:
        ep.consume(record)
        msg = record.msg
        self.node.cpu.submit(
            self.costs.recv_cost(msg), self._deliver_up, ep.peer, msg
        )

    def _on_process_cont(self) -> None:
        """SIGCONT: the receive thread catches up on buffered records."""
        for ep in list(self.endpoints.values()):
            while ep.frozen_records and not ep.broken:
                self._read_out(ep, ep.frozen_records.popleft())

    def _framing_violation(self, ep: TcpEndpoint, record: StreamRecord) -> None:
        """Garbage framing header: the byte stream is unrecoverable."""
        self._record_framing_error(ep)
        ep.consume(record)
        self.node.cpu.submit(
            _NOTIFY_COST, self._fatal_up, f"framing-corruption:{ep.peer}"
        )

    # -- cost model (used by the server for sizing its work items) --------
    def send_cost(self, msg: Message) -> float:
        return self.costs.send_cost(msg)

    def recv_cost(self, msg: Message) -> float:
        return self.costs.recv_cost(msg)
