"""Simulated kernel TCP: byte streams, retransmission, skbuf dependence."""

from .connection import StreamRecord, TcpEndpoint, next_generation
from .params import DEFAULT_TCP_PARAMS, TcpParams
from .transport import TcpTransport

__all__ = [
    "TcpTransport",
    "TcpEndpoint",
    "TcpParams",
    "DEFAULT_TCP_PARAMS",
    "StreamRecord",
    "next_generation",
]
