"""TCP connection endpoints: byte-stream framing, windows, retransmission.

The model keeps TCP's *behavioural* contract rather than its exact wire
format:

* messages are framed onto a byte stream (header + body); the stream is
  segmented, windowed, and cumulatively ACKed;
* loss is detected only by retransmission timeout, with exponential
  backoff — during a fail-stop fault the connection simply stalls,
  buffers fill, and the sending application blocks (the paper's Figure 2
  behaviour for TCP-PRESS);
* every data segment and ACK needs a kernel buffer (skbuf); the injected
  kernel-memory fault makes outbound segments queue in the OS and inbound
  segments drop (Figure 4 behaviour);
* a corrupted send (off-by-N pointer/size) poisons the *stream*: framing
  desynchronizes and the receiver sees garbage headers on subsequent
  messages — TCP's byte-stream vulnerability the paper calls out.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from ...net.packet import Frame
from ...obs.events import TCP_RETRANSMIT
from ...obs.metrics import bound_counter
from ...sim.engine import Engine, Event, Timer
from ...sim.ids import IdSource
from ..base import (
    Channel,
    CorruptionKind,
    Message,
    SendResult,
    SendStatus,
    SyncParameterError,
)
from .params import TcpParams

_conn_gens = IdSource("transports.tcp.conn_gens")


def next_generation() -> int:
    """A cluster-unique connection generation (ISN analogue)."""
    return next(_conn_gens)


@dataclass(slots=True)
class SegPayload:
    """Payload of a ``tcp-seg`` frame."""

    gen: int
    seq: int
    length: int
    completed: List["StreamRecord"] = field(default_factory=list)


@dataclass(slots=True)
class AckPayload:
    gen: int
    ack_seq: int


@dataclass(slots=True)
class CtrlPayload:
    """SYN / SYNACK / RST / CLOSE control payload."""

    gen: int


@dataclass(slots=True)
class StreamRecord:
    """One framed application message within the byte stream.

    ``declared`` is the length written in the framing header; ``actual``
    is how many body bytes the (possibly corrupted) send call really
    produced.  A mismatch shifts every subsequent header — the stream
    skew.
    """

    msg: Message
    declared: int
    actual: int
    end_seq: int = 0  # stream offset one past this record's last byte

    @property
    def wire_bytes(self) -> int:
        return self.actual

    @property
    def skew(self) -> int:
        return self.actual - self.declared


class FramingViolation(Exception):
    """Receiver-side: a framing header failed validation."""


class TcpEndpoint(Channel):
    """One side of a TCP connection between two cluster nodes."""

    def __init__(self, transport, peer: str, gen: int, params: TcpParams):
        super().__init__(transport, peer)
        self.params = params
        self.gen = gen
        self.established = False
        self.connect_cb = None  # set by Transport.connect

        # -- transmit state ------------------------------------------------
        self.stream_len = 0  # bytes enqueued so far
        self.sent_seq = 0  # next byte to transmit
        self.acked_seq = 0  # cumulative ACK from peer
        self.sndbuf_used = 0
        self._unacked: Deque[StreamRecord] = deque()
        self._pending_boundaries: Deque[StreamRecord] = deque()
        self._blocked_waiters: List[Event] = []
        self._rto_timer: Optional[Timer] = None
        self._rto_timer_at = 0.0  # fire time of the physical timer
        self._rto_deadline: Optional[float] = None  # None = not armed
        self._rto = params.rto_initial
        self._stalled_since: Optional[float] = None
        self._alloc_retry: Optional[Timer] = None
        self._retransmissions = bound_counter(
            self.engine, "transport.tcp.retransmissions", node=self.local, peer=peer
        )

        # -- receive state ----------------------------------------------------
        self.expected_seq = 0
        self.rcvbuf_used = 0
        self.rx_skew = 0
        self.frozen_records: Deque[StreamRecord] = deque()

    @property
    def retransmissions(self) -> int:
        return self._retransmissions.value

    # ------------------------------------------------------------------
    # Application send path
    # ------------------------------------------------------------------
    def send(self, msg: Message) -> SendResult:
        """Frame ``msg`` onto the stream.

        NULL-pointer corruption is caught synchronously by the kernel
        (copy_from_user faults → EFAULT) and the message never enters the
        stream.  Off-by-N corruptions are *valid* reads of wrong bytes —
        the kernel cannot tell, so the poisoned bytes go out.
        """
        if self.broken:
            return SendResult(SendStatus.BROKEN)

        msg = self.transport._apply_interposers(msg)
        self.transport._charge_cpu(self.transport.costs.send_cost(msg))

        if msg.corruption is CorruptionKind.NULL_POINTER:
            return SendResult(
                SendStatus.SYNC_ERROR, error=SyncParameterError("EFAULT")
            )

        header = self.params.header_size
        declared = header + msg.size
        if declared > self.params.rcvbuf_bytes:
            # A framed message must fit the peer's receive buffer to be
            # assembled — applications stream anything bigger (as PRESS
            # does with caching info).
            raise ValueError(
                f"message of {declared} bytes exceeds the receive buffer"
                f" ({self.params.rcvbuf_bytes}); chunk it"
            )
        if msg.corruption is CorruptionKind.OFF_BY_N_SIZE:
            actual = max(0, declared + msg.skew)
        else:
            actual = declared
        record = StreamRecord(msg=msg, declared=declared, actual=actual)
        self.stream_len += record.wire_bytes
        record.end_seq = self.stream_len
        self.sndbuf_used += record.wire_bytes
        self._unacked.append(record)
        self._pending_boundaries.append(record)
        spans = self.engine.spans
        if spans is not None and msg.trace_id:
            # Open to close at the receiver's delivery (_deliver_up);
            # retransmission rewinds bump a counter on the open span.
            spans.start(
                msg.trace_id,
                "tcp.msg",
                self.engine.now,
                node=self.local,
                key=("msg", msg.msg_id),
                peer=self.peer,
                msg_type=msg.msg_type,
            )
        self._pump()

        if self.sndbuf_used > self.params.sndbuf_bytes:
            waiter = self.engine.event()
            self._blocked_waiters.append(waiter)
            return SendResult(SendStatus.BLOCKED, unblock_event=waiter)
        return SendResult(SendStatus.SENT)

    # ------------------------------------------------------------------
    # Segment pump (kernel TX path)
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self.broken or not self.established:
            return
        sent = self.sent_seq
        stream_len = self.stream_len
        if sent >= stream_len:
            self._arm_rto()  # nothing to send: same fall-through as below
            return
        # Everything the per-segment loop touches is hoisted to locals:
        # no simulated event runs inside the loop, so none of these can
        # change under it (a synchronous SAN error report may mark the
        # endpoint broken, but that never touched the cursor either).
        params = self.params
        transport = self.transport
        window = params.window_bytes
        seg_size = params.segment_size
        acked = self.acked_seq
        probe = transport.kernel_memory.probe
        nic_send = transport.nic.send
        local = self.local
        peer = self.peer
        gen = self.gen
        first_sent = sent
        # Message boundaries not yet covered by a transmitted segment, in
        # stream order.  Consuming from the front replaces a scan of the
        # whole unacked deque per segment (quadratic in window size).
        boundaries = self._pending_boundaries
        # On a clean fabric path, collect the whole burst and submit it in
        # one fabric call; timing and loss behaviour are identical (the
        # fabric serializes the train with the same arithmetic), there are
        # just fewer heap events.  ``fast_path_clear`` is re-checked every
        # pump because faults flip it between calls, never within one.
        train: Optional[List[Frame]] = (
            [] if transport.nic.fast_path_clear(peer) else None
        )
        alloc_failed = False
        while sent < stream_len:
            inflight = sent - acked
            if inflight >= window:
                break
            seg_len = min(seg_size, stream_len - sent, window - inflight)
            if not probe(seg_len):
                alloc_failed = True
                break
            while boundaries and boundaries[0].end_seq <= sent:
                boundaries.popleft()  # already behind the send cursor
            end = sent + seg_len
            completed: List[StreamRecord] = []
            while boundaries and boundaries[0].end_seq <= end:
                completed.append(boundaries.popleft())
            frame = Frame(
                src=local,
                dst=peer,
                size=seg_len,
                kind="tcp-seg",
                payload=SegPayload(
                    gen=gen, seq=sent, length=seg_len, completed=completed
                ),
            )
            if train is None:
                nic_send(frame)  # silent loss: TCP learns via RTO
            else:
                train.append(frame)
            sent = end
        self.sent_seq = sent
        if sent != first_sent and self._stalled_since is None:
            self._stalled_since = self.engine.now
        if train:
            if len(train) == 1:
                # ACK-clocked steady state: one window slot opened, one
                # segment out.  send() is the same submission with less
                # train bookkeeping.
                nic_send(train[0])
            else:
                transport.nic.send_train(train)
        if alloc_failed:
            # Out of kernel memory: the packet waits inside the OS and the
            # stack retries allocation later.
            self._schedule_alloc_retry()
            return
        self._arm_rto()

    def _schedule_alloc_retry(self) -> None:
        if self._alloc_retry is not None and self._alloc_retry.active:
            return
        self._alloc_retry = self.engine.call_after(
            self.params.alloc_retry_interval, self._alloc_retry_fire
        )

    def _alloc_retry_fire(self) -> None:
        self._alloc_retry = None
        if not self.broken:
            self._pump()

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        if self.sent_seq == self.acked_seq:
            self._rto_deadline = None
            self._stalled_since = None
            return
        if self._rto_deadline is not None:
            return  # already armed; keep the earlier deadline
        self._rto_deadline = deadline = self.engine.now + self._rto
        # Lazy timer: each ACK merely clears the deadline; a ticking
        # physical timer is left in the heap and re-arms itself to the
        # live deadline when it fires.  Cancelling + reallocating a heap
        # entry per ACK would dominate the steady-state data path.
        if self._rto_timer is None or not self._rto_timer.active:
            self._rto_timer = self.engine.call_after(self._rto, self._rto_fire)
            self._rto_timer_at = deadline
        elif self._rto_timer_at > deadline:
            # Backoff just got reset: the ticking timer would fire too
            # late for the fresh deadline, so it must be replaced.
            self._rto_timer.cancel()
            self._rto_timer = self.engine.call_after(self._rto, self._rto_fire)
            self._rto_timer_at = deadline

    def _cancel_rto(self) -> None:
        self._rto_deadline = None
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None

    def _rto_fire(self) -> None:
        self._rto_timer = None
        deadline = self._rto_deadline
        if deadline is None:
            return  # disarmed since the timer was set
        now = self.engine.now
        if deadline > now:
            self._rto_timer = self.engine.call_after(
                deadline - now, self._rto_fire
            )
            self._rto_timer_at = deadline
            return
        self._rto_deadline = None
        self._on_rto()

    def _on_rto(self) -> None:
        if self.broken:
            return
        if (
            self._stalled_since is not None
            and self.engine.now - self._stalled_since
            >= self.params.connection_timeout
        ):
            # Minutes of failed retries: the kernel finally gives up.
            self.transport._endpoint_broken(self, "etimedout")
            return
        # Go-back-N: everything past the cumulative ACK was (potentially)
        # lost; rewind and resend with a doubled timeout.
        self._retransmissions.inc()
        bus = self.engine.bus
        if bus is not None:
            bus.publish(
                TCP_RETRANSMIT, node=self.local, peer=self.peer, rto=self._rto
            )
        spans = self.engine.spans
        if spans is not None:
            # Every unacked record is rewound; charge the retransmission
            # to each traced message still in flight.
            for record in self._unacked:
                if record.msg.trace_id:
                    spans.bump(
                        spans.find(("msg", record.msg.msg_id)), "retransmits"
                    )
        self.sent_seq = self.acked_seq
        # The rewound range will be re-segmented: every unacked record's
        # boundary is pending again (``_unacked`` holds exactly the records
        # past the cumulative ACK, in stream order).
        self._pending_boundaries = deque(self._unacked)
        self._rto = min(self._rto * 2, self.params.rto_max)
        self._pump()
        self._arm_rto()

    # ------------------------------------------------------------------
    # Inbound (kernel RX path) — called by the owning transport
    # ------------------------------------------------------------------
    def handle_segment(self, payload: SegPayload) -> None:
        length = payload.length
        if not self.transport.kernel_memory.probe(length):
            return  # inbound packet dropped: no skbuf at the faulty node
        if payload.seq != self.expected_seq:
            if payload.seq < self.expected_seq:
                self._send_ack()  # duplicate: re-ACK to resync the sender
            return  # out-of-order after loss: dropped, sender will rewind
        if self.rcvbuf_used + length > self.params.rcvbuf_bytes:
            return  # receiver application is not draining; exert backpressure
        self.expected_seq += length
        self.rcvbuf_used += length
        completed = payload.completed
        if completed:
            for record in completed:
                self._record_complete(record)
        self._send_ack()

    def _send_ack(self) -> None:
        transport = self.transport
        ack_bytes = self.params.ack_bytes
        if not transport.kernel_memory.probe(ack_bytes):
            return  # even ACKs need buffers; the faulty node goes mute
        transport.nic.send(
            Frame(
                src=self.local,
                dst=self.peer,
                size=ack_bytes,
                kind="tcp-ack",
                payload=AckPayload(gen=self.gen, ack_seq=self.expected_seq),
            )
        )

    def _record_complete(self, record: StreamRecord) -> None:
        """A whole framed message has been assembled in the receive buffer."""
        msg = record.msg
        if self.params.boundary_preserving:
            # Ablation mode: message boundaries contain the damage — the
            # corrupted message is detected (length check) and dropped;
            # the connection and the process survive.
            if (
                record.skew != 0
                or msg.corruption is CorruptionKind.OFF_BY_N_POINTER
            ):
                self.transport._record_framing_error(self)
                self.consume(record)
                return
            self.transport._deliver_record(self, record)
            return
        if self.rx_skew != 0 or msg.corruption is CorruptionKind.OFF_BY_N_POINTER:
            # The framing header either sits at a shifted offset (stream
            # skew) or was read from a bogus pointer: its magic fails
            # validation.  The byte stream is garbage from here on.
            self.transport._framing_violation(self, record)
            return
        self.rx_skew += record.skew
        self.transport._deliver_record(self, record)

    def consume(self, record: StreamRecord) -> None:
        """The application took delivery; free the receive-buffer bytes."""
        self.rcvbuf_used = max(0, self.rcvbuf_used - record.wire_bytes)

    def handle_ack(self, payload: AckPayload) -> None:
        if payload.ack_seq <= self.acked_seq:
            return
        self.acked_seq = min(payload.ack_seq, self.stream_len)
        while self._unacked and self._unacked[0].end_seq <= self.acked_seq:
            record = self._unacked.popleft()
            self.sndbuf_used -= record.wire_bytes
        # Forward progress: reset backoff and the stall clock.  Disarm the
        # RTO logically only — the physical timer re-arms itself (see
        # :meth:`_arm_rto`).
        self._rto = self.params.rto_initial
        self._stalled_since = None
        self._rto_deadline = None
        if self.sent_seq < self.acked_seq:
            self.sent_seq = self.acked_seq
        self._maybe_unblock()
        self._pump()

    def _maybe_unblock(self) -> None:
        lowwater = self.params.sndbuf_bytes * self.params.unblock_lowwater
        if self.sndbuf_used <= lowwater and self._blocked_waiters:
            waiters, self._blocked_waiters = self._blocked_waiters, []
            for w in waiters:
                w.succeed()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def mark_broken(self, reason: str) -> None:
        """Local bookkeeping for a dead connection (no wire activity)."""
        if self.broken:
            return
        self.broken = True
        self.break_reason = reason
        spans = self.engine.spans
        if spans is not None:
            # Messages still unacknowledged die with the connection — the
            # receiver may have assembled some, but this sender can no
            # longer know; any span the receiver already closed is a
            # no-op here.
            for record in self._unacked:
                if record.msg.trace_id:
                    spans.end_key(
                        ("msg", record.msg.msg_id),
                        self.engine.now,
                        "broken",
                        reason=reason,
                    )
        self._cancel_rto()
        if self._alloc_retry is not None:
            self._alloc_retry.cancel()
            self._alloc_retry = None
        # Blocked senders wake up; their next send() sees BROKEN.
        waiters, self._blocked_waiters = self._blocked_waiters, []
        for w in waiters:
            w.succeed()

    def close(self) -> None:
        self.transport.close_channel(self.peer)
