"""Tunables of the simulated kernel TCP stack."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TcpParams:
    """Kernel TCP knobs, defaulted to a Linux-2.2-era configuration.

    The values that drive the paper's observed behaviour:

    * ``rto_initial``/``rto_max``/``connection_timeout`` — TCP assumes
      packet loss is transient congestion, so it retries with exponential
      backoff for *minutes* before giving up; connection death (the
      reconfiguration trigger for TCP-PRESS) takes ``connection_timeout``
      (the paper: "on order of 10-15 minutes").
    * ``sndbuf_bytes``/``rcvbuf_bytes`` — socket buffering; once a peer
      stalls these fill and the sending main loop blocks.
    * per-segment kernel buffer (skbuf) allocation — the hook the
      kernel-memory fault trips.
    """

    segment_size: int = 8192
    header_size: int = 8  # PRESS framing header: magic + type + length
    sndbuf_bytes: int = 65536
    rcvbuf_bytes: int = 65536
    window_bytes: int = 65536
    rto_initial: float = 0.2
    # Exponential-backoff cap (Linux 2.2 caps at 120s; 60s keeps the
    # compressed experiment windows readable).  This cap is what makes
    # TCP-PRESS resume only "slightly after the component recovers"
    # (Figure 2) and what delays RST-based crash detection long enough
    # for a rebooted node's rejoin attempts to be disregarded (Figure 3).
    rto_max: float = 60.0
    connection_timeout: float = 720.0  # ~12 minutes of failed retries
    ack_bytes: int = 40
    alloc_retry_interval: float = 0.05
    syn_retry_interval: float = 1.0
    syn_max_retries: int = 5
    unblock_lowwater: float = 0.5  # fraction of sndbuf to unblock senders
    # ABLATION KNOB (default off = faithful TCP): pretend the transport
    # preserved message boundaries, so an off-by-N fault corrupts only
    # the affected message instead of desynchronizing the whole stream —
    # quantifying the paper's byte-stream lesson (§7).
    boundary_preserving: bool = False


DEFAULT_TCP_PARAMS = TcpParams()
