"""Intra-cluster communication substrates: the common API, TCP, and VIA."""

from .base import (
    Channel,
    CommError,
    CorruptionKind,
    FatalTransportError,
    Message,
    SendResult,
    SendStatus,
    SyncParameterError,
    Transport,
)
from .costs import (
    TCP_COSTS,
    VIA0_COSTS,
    VIA3_COSTS,
    VIA5_COSTS,
    TransportCosts,
)
from .tcp import TcpParams, TcpTransport
from .via import ViaParams, ViaTransport

__all__ = [
    "Transport",
    "Channel",
    "Message",
    "SendResult",
    "SendStatus",
    "CorruptionKind",
    "CommError",
    "SyncParameterError",
    "FatalTransportError",
    "TransportCosts",
    "TCP_COSTS",
    "VIA0_COSTS",
    "VIA3_COSTS",
    "VIA5_COSTS",
    "TcpTransport",
    "TcpParams",
    "ViaTransport",
    "ViaParams",
]
