"""A VIA channel: a VI pair with pre-allocated, pinned resources.

Compared to the TCP endpoint the data path is radically simpler — that is
the point of user-level communication — but the *error model* is richer:

* message boundaries are preserved (one descriptor per message);
* all buffers and descriptors are allocated and pinned at setup, so the
  data path cannot fail for lack of kernel memory;
* errors are fail-stop: a fabric-level problem (dead link, dead peer)
  breaks the connection immediately, and descriptor errors are reported
  with error status in completions — which PRESS treats as fatal;
* for remote-memory-write channels (VIA-PRESS-3/5), a bad descriptor is
  reported on **both** nodes involved in the transfer, so one injected
  fault takes down two processes (Figure 5).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ...net.packet import Frame
from ...obs.events import VIA_QUEUE_SHED
from ...obs.metrics import bound_counter
from ...sim.engine import Event, Timer
from ..base import (
    Channel,
    CorruptionKind,
    Message,
    SendResult,
    SendStatus,
)
from .params import ViaParams


class ViaChannel(Channel):
    """One side of a VI connection."""

    def __init__(self, transport, peer: str, gen: int, params: ViaParams):
        super().__init__(transport, peer)
        self.params = params
        self.gen = gen
        self.established = False
        self.connect_cb = None
        self.credits = params.credits
        self.backlog: Deque[Message] = deque()
        self._blocked_waiters: List[Event] = []
        self.pending_return_credits = 0
        self._credit_flush_timer: Optional[Timer] = None
        self.frozen_backlog: Deque[Message] = deque()
        self.pinned_bytes = 0  # registered at setup by the transport
        self._messages_sent = bound_counter(
            self.engine, "transport.via.messages_sent", node=self.local, peer=peer
        )
        self._messages_received = bound_counter(
            self.engine, "transport.via.messages_received", node=self.local, peer=peer
        )
        self._messages_shed = bound_counter(
            self.engine, "transport.via.messages_shed", node=self.local, peer=peer
        )

    @property
    def messages_sent(self) -> int:
        return self._messages_sent.value

    @property
    def messages_received(self) -> int:
        return self._messages_received.value

    @property
    def messages_shed(self) -> int:
        return self._messages_shed.value

    # ------------------------------------------------------------------
    # Send path (VipPostSend)
    # ------------------------------------------------------------------
    def send(self, msg: Message) -> SendResult:
        """Post a message (VipPostSend).

        Unlike TCP — where a full kernel socket buffer blocks PRESS's
        single send thread and thereby the whole node — the VIA versions
        implement flow control *in the server*, so the main loop is never
        blocked by one stalled peer: messages queue per-channel in user
        memory and the oldest are shed when the queue overflows (those
        requests simply time out at their clients).
        """
        if self.broken:
            return SendResult(SendStatus.BROKEN)

        transport = self.transport
        msg = transport._apply_interposers(msg)
        transport._charge_cpu(transport.costs.send_cost(msg))

        if msg.corruption is not CorruptionKind.NONE:
            # Bad descriptor parameters.  The provider decides how the
            # error surfaces: stock VIA accepts the post and reports
            # through completion status — asynchronously, and for remote
            # memory writes at *both* endpoints; the ideal layer (§7)
            # validates at post time and rejects synchronously.
            return transport._handle_corrupted_post(self, msg)

        spans = self.engine.spans
        if spans is not None and msg.trace_id:
            # Open to close at the receiver's delivery (_deliver_up) or
            # right below if the queue sheds it.
            spans.start(
                msg.trace_id,
                "via.msg",
                self.engine.now,
                node=self.local,
                key=("msg", msg.msg_id),
                peer=self.peer,
                msg_type=msg.msg_type,
            )
        self.backlog.append(msg)
        while len(self.backlog) > self.params.app_queue_limit:
            dropped = self.backlog.popleft()
            self._messages_shed.inc()
            if spans is not None and dropped.trace_id:
                spans.end_key(
                    ("msg", dropped.msg_id), self.engine.now, "shed"
                )
            bus = self.engine.bus
            if bus is not None:
                bus.publish(VIA_QUEUE_SHED, node=self.local, peer=self.peer)
        self._drain()
        return SendResult(SendStatus.SENT)

    def _drain(self) -> None:
        transport = self.transport
        # On a clean fabric path a post cannot fail — or synchronously
        # report an error that breaks the channel mid-loop — so the whole
        # credit window is collected into one train: same frames, same
        # timing, fewer heap events.  Any fault condition falls back to
        # the per-frame loop, whose per-iteration ``broken`` check
        # handles the SAN NIC's synchronous error upcall.
        train: Optional[List[Frame]] = (
            [] if transport.nic.fast_path_clear(self.peer) else None
        )
        while self.backlog and self.credits > 0 and not self.broken:
            if not self.established:
                return
            if self.params.dynamic_buffers and not (
                transport.node.kernel_memory.probe(self.backlog[0].size)
            ):
                # Ablation mode: without pre-allocation the send path
                # starves under a kernel-memory fault, exactly like TCP.
                if train:
                    transport.nic.send_train(train)
                self.engine.call_after(0.05, self._drain)
                return
            msg = self.backlog.popleft()
            self.credits -= 1
            self._messages_sent.inc()
            frame = Frame(
                src=self.local,
                dst=self.peer,
                size=msg.size,
                kind=transport.data_frame_kind,
                payload=(self.gen, msg),
            )
            if train is None:
                transport.nic.send(frame)
            else:
                train.append(frame)
        if train:
            if len(train) == 1:
                # Common case (one credit, one message): same submission,
                # less train bookkeeping.
                transport.nic.send(train[0])
            else:
                transport.nic.send_train(train)
        if not self.backlog:
            self._wake_blocked()

    def _wake_blocked(self) -> None:
        if self._blocked_waiters:
            waiters, self._blocked_waiters = self._blocked_waiters, []
            for w in waiters:
                w.succeed()

    # ------------------------------------------------------------------
    # Receive path — called by the transport on frame arrival
    # ------------------------------------------------------------------
    def handle_message(self, msg: Message) -> None:
        """A message landed in one of our pre-posted receive buffers.

        PRESS's receive thread drains it promptly — copying it out and
        reposting the descriptor (returning the credit) — and queues the
        application work.  When the process is stopped, no thread runs:
        the message sits in the buffer and the credit is withheld, which
        is how a hung peer eventually blocks its senders.
        """
        self._messages_received.inc()
        if self.transport.node.process.running:
            self._credit_and_deliver(msg)
        else:
            self.frozen_backlog.append(msg)

    def _credit_and_deliver(self, msg: Message) -> None:
        transport = self.transport
        self._return_credit()
        transport.node.cpu.submit(
            transport.costs.recv_cost(msg), self._consume, msg
        )

    def drain_frozen(self) -> None:
        """The process resumed: the receive thread catches up."""
        while self.frozen_backlog and not self.broken:
            self._credit_and_deliver(self.frozen_backlog.popleft())

    def _consume(self, msg: Message) -> None:
        if self.broken:
            return
        self.transport._deliver_up(self.peer, msg)

    def _return_credit(self) -> None:
        """Repost the buffer and (batched) tell the sender."""
        self.pending_return_credits += 1
        if self.pending_return_credits >= self.params.credit_batch:
            self._flush_credits()
        elif self._credit_flush_timer is None or not self._credit_flush_timer.active:
            self._credit_flush_timer = self.engine.call_after(
                self.params.credit_flush_interval, self._flush_credits
            )

    def _flush_credits(self) -> None:
        self._credit_flush_timer = None
        if self.broken or self.pending_return_credits == 0:
            return
        n, self.pending_return_credits = self.pending_return_credits, 0
        self.transport.nic.send(
            Frame(
                src=self.local,
                dst=self.peer,
                size=self.params.credit_frame_bytes,
                kind="via-credit",
                payload=(self.gen, n),
            )
        )

    def handle_credits(self, n: int) -> None:
        self.credits = min(self.params.credits, self.credits + n)
        self._drain()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def mark_broken(self, reason: str) -> None:
        if self.broken:
            return
        self.broken = True
        self.break_reason = reason
        spans = self.engine.spans
        if spans is not None:
            # Queued messages die with the VI (fail-stop: nothing else
            # ever touches them).
            for msg in self.backlog:
                if msg.trace_id:
                    spans.end_key(
                        ("msg", msg.msg_id),
                        self.engine.now,
                        "broken",
                        reason=reason,
                    )
        self.backlog.clear()
        self.frozen_backlog.clear()
        if self._credit_flush_timer is not None:
            self._credit_flush_timer.cancel()
            self._credit_flush_timer = None
        self._wake_blocked()  # blocked senders resume; next send sees BROKEN

    def close(self) -> None:
        self.transport.close_channel(self.peer)
