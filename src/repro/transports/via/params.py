"""Tunables of the simulated VIA (VIPL over cLAN) layer."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ViaParams:
    """VIA channel parameters.

    The availability-relevant properties:

    * ``credits`` receive descriptors and their buffers are **pre-allocated
      and pinned at channel setup** — the data path never touches the
      kernel allocator, which is why VIA shrugs off the kernel-memory
      fault (Figure 4).
    * ``buffer_bytes`` bounds the message size a descriptor can take;
      PRESS sizes it to fit a whole file-data message (message
      boundaries!).
    * flow control is credit-based and implemented by the communication
      library; when a peer stops returning credits (hang), senders block —
      VIA's analogue of TCP's full socket buffers.
    * ``connect_timeout``/retries govern VipConnectRequest.
    """

    credits: int = 32
    buffer_bytes: int = 32768
    credit_batch: int = 8
    credit_flush_interval: float = 0.002
    connect_retry_interval: float = 0.5
    connect_max_retries: int = 5
    completion_delay: float = 10e-6  # descriptor completion latency
    credit_frame_bytes: int = 16
    ctrl_frame_bytes: int = 64
    send_ring_bytes: int = 262144
    # PRESS's user-level per-peer send queue: when a peer stops
    # returning credits, up to this many messages wait in application
    # memory before the oldest are shed (their requests time out).
    app_queue_limit: int = 256
    # ABLATION KNOB (default off = faithful VIA): allocate send buffers
    # dynamically from kernel memory instead of the pre-registered pool.
    # Turning this on hands VIA exactly TCP's kernel-memory-exhaustion
    # vulnerability — quantifying the paper's pre-allocation lesson (§7).
    dynamic_buffers: bool = False


DEFAULT_VIA_PARAMS = ViaParams()
