"""Simulated VIA: user-level, message-based, pre-allocated, fail-stop."""

from .channel import ViaChannel
from .params import DEFAULT_VIA_PARAMS, ViaParams
from .transport import ViaRegistrationError, ViaTransport

__all__ = [
    "ViaTransport",
    "ViaChannel",
    "ViaParams",
    "DEFAULT_VIA_PARAMS",
    "ViaRegistrationError",
]
