"""The per-node VIA provider (VIPL over the cLAN NIC).

Implements the fail-stop error model the paper credits for VIA's
availability edge:

* the SAN NIC reports unreachable peers at the hardware level; the
  provider immediately breaks the affected connections ("a node assumes
  that another node has failed if the VIA connection between them is
  broken") — detection is near-instantaneous, no timeouts involved;
* bad descriptor parameters surface as completion errors, which PRESS
  treats as fatal; for remote-memory-write channels the error is reported
  at **both** endpoints, taking down two processes per injected fault;
* all channel resources are pre-allocated and **pinned** at connection
  setup through the node's pinnable-memory accounting, so the data path
  is immune to kernel-memory allocation faults, while dynamic pinning
  users (VIA-PRESS-5's zero-copy cache) remain exposed to pin faults.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ...net.nic import Nic
from ...net.packet import Frame
from ...obs.events import VIA_CHANNEL_BROKEN, VIA_DESCRIPTOR_ERROR
from ...obs.metrics import bound_counter
from ...osim.node import Node
from ...sim.engine import Engine
from ...sim.ids import IdSource
from ..base import (
    CorruptionKind,
    FatalTransportError,
    Message,
    Transport,
)
from ..costs import VIA0_COSTS, TransportCosts
from .channel import ViaChannel
from .params import DEFAULT_VIA_PARAMS, ViaParams

_NOTIFY_COST = 3e-6

_gen_counter = IdSource("transports.via.gen_counter")


def _next_gen() -> int:
    return next(_gen_counter)


class ViaRegistrationError(Exception):
    """Memory registration (pinning) failed at channel setup."""


class ViaTransport(Transport):
    """User-level VIA endpoint for one cluster node."""

    preserves_boundaries = True

    def __init__(
        self,
        engine: Engine,
        node: Node,
        costs: TransportCosts = VIA0_COSTS,
        params: ViaParams = DEFAULT_VIA_PARAMS,
        remote_writes: bool = False,
    ):
        super().__init__(engine, node.node_id)
        self.node = node
        self.nic: Nic = node.nic
        self.costs = costs
        self.params = params
        self.remote_writes = remote_writes
        self.data_frame_kind = "rdma-write" if remote_writes else "via-msg"
        self.channels: Dict[str, ViaChannel] = {}
        self.on_accept: Optional[Callable[[str], None]] = None
        self.on_datagram: Optional[Callable[[str, Message], None]] = None
        self._descriptor_errors = bound_counter(
            engine, "transport.via.descriptor_errors", node=node.node_id
        )

        # The NIC routes by frame kind already — register each handler
        # directly rather than re-dispatching through an if-chain (data
        # and credit frames dominate the event stream).
        for kind, handler in (
            ("via-msg", self._on_data),
            ("rdma-write", self._on_data),
            ("via-credit", self._on_credit),
            ("via-connect", self._on_connect_request),
            ("via-accept", self._on_accept_frame),
            ("via-reject", self._on_reject),
            ("via-close", self._on_close),
            ("via-dgram", self._on_dgram),
            ("via-remote-error", self._on_remote_error),
        ):
            self.nic.register(kind, handler)
        self.nic.on_error(self._on_nic_error)
        node.process.on_death.append(self._on_process_death)
        node.process.on_cont.append(self._on_process_cont)

    @property
    def descriptor_errors(self) -> int:
        return self._descriptor_errors.value

    # ------------------------------------------------------------------
    # CPU / resource plumbing
    # ------------------------------------------------------------------
    def _charge_cpu(self, cost: float) -> None:
        self.node.cpu.charge(cost)

    def _channel_pool_bytes(self) -> int:
        p = self.params
        return p.credits * p.buffer_bytes + p.send_ring_bytes

    # ------------------------------------------------------------------
    # Connection management (VipConnectRequest / Accept)
    # ------------------------------------------------------------------
    def connect(
        self, peer: str, on_result: Optional[Callable[[bool], None]] = None
    ) -> ViaChannel:
        existing = self.channels.get(peer)
        if existing is not None and not existing.broken:
            if on_result is not None:
                self.engine.call_soon(on_result, True)
            return existing
        try:
            channel = self._make_channel(peer, _next_gen())
        except ViaRegistrationError:
            # Out of pinnable memory (e.g. a pin fault is active while a
            # restarted node tries to rebuild its VIs): VipCreateVi fails
            # and the connection attempt is reported as unsuccessful.
            failed = ViaChannel(self, peer, _next_gen(), self.params)
            failed.mark_broken("registration-failed")
            if on_result is not None:
                self.engine.call_soon(on_result, False)
            return failed
        channel.connect_cb = on_result
        self.channels[peer] = channel
        self._connect_attempt(channel, 0)
        return channel

    def _make_channel(self, peer: str, gen: int) -> ViaChannel:
        """Create a VI and register (pin) its buffer pool.

        Registration failure is a *setup-time* error: the paper's pin
        fault only bites setup/dynamic pinning, never the data path.
        """
        channel = ViaChannel(self, peer, gen, self.params)
        pool = self._channel_pool_bytes()
        if not self.node.pinnable.pin(pool):
            raise ViaRegistrationError(
                f"{self.node_id}: cannot pin {pool} bytes for VI to {peer}"
            )
        channel.pinned_bytes = pool
        return channel

    def _connect_attempt(self, channel: ViaChannel, attempt: int) -> None:
        if channel.broken or channel.established:
            return
        if self.channels.get(channel.peer) is not channel:
            return
        if attempt >= self.params.connect_max_retries:
            self._channel_broken(channel, "connect-timeout", notify=False)
            self._finish_connect(channel, False)
            return
        self.nic.send(
            Frame(
                src=self.node_id,
                dst=channel.peer,
                size=self.params.ctrl_frame_bytes,
                kind="via-connect",
                payload=(channel.gen, None),
            )
        )
        self.engine.call_after(
            self.params.connect_retry_interval,
            self._connect_attempt,
            channel,
            attempt + 1,
        )

    def _finish_connect(self, channel: ViaChannel, ok: bool) -> None:
        cb, channel.connect_cb = channel.connect_cb, None
        if cb is not None:
            cb(ok)

    def close_channel(self, peer: str) -> None:
        channel = self.channels.pop(peer, None)
        if channel is None:
            return
        self._unpin(channel)
        self.nic.send(
            Frame(
                src=self.node_id,
                dst=peer,
                size=self.params.ctrl_frame_bytes,
                kind="via-close",
                payload=(channel.gen, None),
            )
        )
        channel.mark_broken("closed-locally")

    def shutdown(self) -> None:
        for peer in list(self.channels):
            self.close_channel(peer)

    def _unpin(self, channel: ViaChannel) -> None:
        if channel.pinned_bytes:
            self.node.pinnable.unpin(channel.pinned_bytes)
            channel.pinned_bytes = 0

    # ------------------------------------------------------------------
    # Process / machine death
    # ------------------------------------------------------------------
    def _on_process_death(self, reason: str) -> None:
        for peer, channel in list(self.channels.items()):
            self._unpin(channel)
            if self.node.up:
                # The provider tears down VIs; peers see broken connections
                # immediately (hardware disconnect notification).
                self.nic.send(
                    Frame(
                        src=self.node_id,
                        dst=peer,
                        size=self.params.ctrl_frame_bytes,
                        kind="via-close",
                        payload=(channel.gen, None),
                    )
                )
            channel.mark_broken("process-died")
        self.channels.clear()

    def _on_process_cont(self) -> None:
        """SIGCONT: the receive thread drains what piled up."""
        for channel in list(self.channels.values()):
            channel.drain_frozen()

    # ------------------------------------------------------------------
    # Hardware error reports (the SAN fault model)
    # ------------------------------------------------------------------
    def _on_nic_error(self, reason: str) -> None:
        """Fabric problem: break the affected connection(s), fail-stop."""
        if ":" in reason:
            tag, _, who = reason.partition(":")
        else:
            tag, who = reason, ""
        if tag in ("unreachable", "node-down", "link-down") and who not in (
            "",
            self.node_id,
        ):
            channel = self.channels.get(who)
            if channel is not None:
                self._channel_broken(channel, f"hw-{tag}")
        else:
            # Our own link or the switch died: every connection is gone.
            for channel in list(self.channels.values()):
                self._channel_broken(channel, f"hw-{tag}")

    # ------------------------------------------------------------------
    # Datagrams (join protocol; VIA uses unconnected sends for discovery)
    # ------------------------------------------------------------------
    def send_datagram(self, peer: str, msg: Message) -> None:
        self._charge_cpu(self.costs.send_cost(msg))
        self.nic.send(
            Frame(
                src=self.node_id,
                dst=peer,
                size=msg.size,
                kind="via-dgram",
                payload=msg,
            )
        )

    # ------------------------------------------------------------------
    # Frame dispatch
    # ------------------------------------------------------------------
    def _on_data(self, frame: Frame) -> None:
        gen, msg = frame.payload
        channel = self.channels.get(frame.src)
        if channel is not None and channel.gen == gen and not channel.broken:
            channel.handle_message(msg)

    def _on_credit(self, frame: Frame) -> None:
        gen, n = frame.payload
        channel = self.channels.get(frame.src)
        if channel is not None and channel.gen == gen and not channel.broken:
            channel.handle_credits(n)

    def _on_connect_request(self, frame: Frame) -> None:
        gen, _ = frame.payload
        if not self.node.process.running:
            self.nic.send(
                Frame(
                    src=self.node_id,
                    dst=frame.src,
                    size=self.params.ctrl_frame_bytes,
                    kind="via-reject",
                    payload=(gen, None),
                )
            )
            return
        old = self.channels.get(frame.src)
        if old is not None:
            if old.gen == gen:
                self._send_accept(frame.src, gen)
                return  # duplicate connect request
            self._unpin(old)
            old.mark_broken("superseded")
        try:
            channel = self._make_channel(frame.src, gen)
        except ViaRegistrationError:
            self.nic.send(
                Frame(
                    src=self.node_id,
                    dst=frame.src,
                    size=self.params.ctrl_frame_bytes,
                    kind="via-reject",
                    payload=(gen, None),
                )
            )
            return
        channel.established = True
        self.channels[frame.src] = channel
        self._send_accept(frame.src, gen)
        if self.on_accept is not None:
            self.node.cpu.submit(_NOTIFY_COST, self._notify_accept, frame.src)

    def _notify_accept(self, peer: str) -> None:
        if self.on_accept is not None:
            self.on_accept(peer)

    def _send_accept(self, peer: str, gen: int) -> None:
        self.nic.send(
            Frame(
                src=self.node_id,
                dst=peer,
                size=self.params.ctrl_frame_bytes,
                kind="via-accept",
                payload=(gen, None),
            )
        )

    def _on_accept_frame(self, frame: Frame) -> None:
        gen, _ = frame.payload
        channel = self.channels.get(frame.src)
        if channel is None or channel.gen != gen or channel.broken:
            return
        if not channel.established:
            channel.established = True
            channel._drain()
            self._finish_connect(channel, True)

    def _on_reject(self, frame: Frame) -> None:
        gen, _ = frame.payload
        channel = self.channels.get(frame.src)
        if channel is not None and channel.gen == gen and not channel.established:
            del self.channels[frame.src]
            self._unpin(channel)
            channel.mark_broken("connection-refused")
            self._finish_connect(channel, False)

    def _on_close(self, frame: Frame) -> None:
        gen, _ = frame.payload
        channel = self.channels.get(frame.src)
        if channel is not None and channel.gen == gen:
            self._channel_broken(channel, "peer-closed")

    def _on_dgram(self, frame: Frame) -> None:
        # Fielded by the dedicated receive thread; see TcpTransport._on_dgram.
        if not self.node.process.running:
            return
        if self.on_datagram is not None:
            self.on_datagram(frame.src, frame.payload)

    # ------------------------------------------------------------------
    # Descriptor errors (bad-parameter faults)
    # ------------------------------------------------------------------
    def _handle_corrupted_post(self, channel: ViaChannel, msg: Message):
        """Stock VIA: accept the post, report the error asynchronously."""
        from ..base import SendResult, SendStatus

        self._descriptor_error(channel, msg)
        return SendResult(SendStatus.SENT)

    def _descriptor_error(self, channel: ViaChannel, msg: Message) -> None:
        """Route a corrupted descriptor to the right endpoint(s).

        Single-descriptor channels (VIA-PRESS-0): the NIC validates at
        transfer time and exactly one side sees the error status — the
        sender for a bad *size* (descriptor length check), the receiver
        for a bad *pointer* (the transfer lands wrong).  Remote-write
        channels: the error is reported on **both** nodes involved.
        """
        self._descriptor_errors.inc()
        kind = msg.corruption
        bus = self.engine.bus
        if bus is not None:
            bus.publish(
                VIA_DESCRIPTOR_ERROR,
                node=self.node_id,
                peer=channel.peer,
                corruption=kind.value,
            )
        error_at_sender = self.remote_writes or kind in (
            CorruptionKind.NULL_POINTER,
            CorruptionKind.OFF_BY_N_SIZE,
        )
        error_at_receiver = self.remote_writes or kind is CorruptionKind.OFF_BY_N_POINTER

        if error_at_sender:
            self.engine.call_after(
                self.params.completion_delay,
                self._local_fatal,
                f"descriptor-error:{kind.value}",
            )
        if error_at_receiver and not channel.broken:
            self.nic.send(
                Frame(
                    src=self.node_id,
                    dst=channel.peer,
                    size=self.params.ctrl_frame_bytes,
                    kind="via-remote-error",
                    payload=(channel.gen, kind.value),
                )
            )

    def _on_remote_error(self, frame: Frame) -> None:
        gen, kind_value = frame.payload
        channel = self.channels.get(frame.src)
        if channel is not None and channel.gen == gen:
            self._local_fatal(f"remote-descriptor-error:{kind_value}")

    def _local_fatal(self, reason: str) -> None:
        self.node.cpu.submit(_NOTIFY_COST, self._fatal_up, reason)

    # ------------------------------------------------------------------
    # Upcalls
    # ------------------------------------------------------------------
    def _channel_broken(
        self, channel: ViaChannel, reason: str, notify: bool = True
    ) -> None:
        if self.channels.get(channel.peer) is channel:
            del self.channels[channel.peer]
        self._unpin(channel)
        already = channel.broken
        channel.mark_broken(reason)
        if not already:
            bus = self.engine.bus
            if bus is not None:
                bus.publish(
                    VIA_CHANNEL_BROKEN,
                    node=self.node_id,
                    peer=channel.peer,
                    reason=reason,
                )
        if notify and not already:
            self.node.cpu.submit(_NOTIFY_COST, self._break_up, channel.peer, reason)

    # -- cost model ----------------------------------------------------------
    def send_cost(self, msg: Message) -> float:
        return self.costs.send_cost(msg)

    def recv_cost(self, msg: Message) -> float:
        return self.costs.recv_cost(msg)
