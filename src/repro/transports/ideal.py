"""The paper's §7 speculative communication layer, made concrete.

The Discussion section argues the right layer for high-performance,
high-availability cluster services should be *message-based*,
*single-copy*, *pre-allocate channel resources*, and *report errors in a
manner consistent with the fabric's fault model*.  VIA already delivers
the first three and the fail-stop half of the fourth; its weakness in
the study is error *containment*: bad descriptor parameters surface as
asynchronous completion errors that PRESS can only treat as fatal — and
remote-memory writes diffuse them to both endpoints.

:class:`IdealTransport` closes that gap: descriptors are validated
synchronously at post time (pointer bounds and length checks against the
registered region — cheap, since all buffers are pre-registered), so a
bad parameter is returned to the *caller* like TCP's EFAULT while the
channel, the peer, and the process all survive.  Everything else is
inherited from the VIA provider: pre-allocated pinned channels,
credit flow control, hardware fail-stop connection breaks.

This is an extension beyond the paper (its future-work direction);
``benchmarks/test_ideal_layer.py`` quantifies what it buys.
"""

from __future__ import annotations

from .base import Message, SendResult, SendStatus, SyncParameterError
from .via.channel import ViaChannel
from .via.transport import ViaTransport


class IdealTransport(ViaTransport):
    """VIA plus synchronous descriptor validation (§7's wish list)."""

    preserves_boundaries = True

    def __init__(self, *args, **kwargs):
        # Remote writes stay available for performance; with post-time
        # validation a bad descriptor never reaches the wire, so the
        # both-endpoint error diffusion cannot happen.
        super().__init__(*args, **kwargs)
        self.rejected_posts = 0

    def _handle_corrupted_post(
        self, channel: ViaChannel, msg: Message
    ) -> SendResult:
        """Validate at post time: reject the call, keep everything alive."""
        self.rejected_posts += 1
        return SendResult(
            SendStatus.SYNC_ERROR,
            error=SyncParameterError("VIP_INVALID_PARAMETER"),
        )
