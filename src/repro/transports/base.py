"""Common intra-cluster transport interface used by PRESS.

PRESS is written against this narrow API so the TCP and VIA versions share
one server implementation (mirroring the paper: "The TCP version basically
has the same structure of its VIA counterpart").

Key semantic knobs the two implementations differ on — the entire subject
of the paper:

* **Message boundaries**: VIA preserves them; TCP is a byte stream with a
  framing layer on top, so parameter corruption can desynchronize
  *subsequent* messages.
* **Error reporting**: TCP detects some bad parameters synchronously
  (EFAULT) and detects dead peers only via timeouts/RSTs; VIA reports
  errors through completions and breaks connections fail-stop, almost
  instantly, on any fabric-level problem.
* **Resource allocation**: TCP allocates kernel buffers per packet; VIA
  pre-allocates everything at channel setup.

Backpressure protocol: :meth:`Channel.send` returns a :class:`SendResult`.
``BLOCKED`` means the message *was queued* but the caller must block its
main loop on ``unblock_event`` before submitting more work — this is how a
stalled peer freezes a whole node, the paper's central availability
mechanism.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..sim.engine import Engine, Event
from ..sim.ids import IdSource

_message_ids = IdSource("transports.message_ids")


class CommError(Exception):
    """Base for transport-level errors surfaced to the application."""


class SyncParameterError(CommError):
    """Synchronously detected bad parameter (TCP send() -> EFAULT)."""

    def __init__(self, errno_name: str = "EFAULT"):
        super().__init__(errno_name)
        self.errno_name = errno_name


class FatalTransportError(CommError):
    """Asynchronous fatal error (VIA descriptor completion with error).

    PRESS's fail-fast policy terminates the process on these.
    """


class CorruptionKind(enum.Enum):
    """How an interposed bad-parameter fault mangled a send/recv call."""

    NONE = "none"
    NULL_POINTER = "null-pointer"
    OFF_BY_N_POINTER = "off-by-n-pointer"
    OFF_BY_N_SIZE = "off-by-n-size"


@dataclass(slots=True)
class Message:
    """An application-level message between cluster nodes.

    ``trace_id`` names the client request this message works for
    (0 = none) — the PRESS server stamps it on forwards, file-data
    replies, and the cache-update broadcasts a traced request tipped,
    so transport spans land in the right request tree.
    """

    msg_type: str
    size: int
    payload: Any = None
    corruption: CorruptionKind = CorruptionKind.NONE
    skew: int = 0  # byte skew for OFF_BY_N_SIZE faults
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    trace_id: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("message size must be >= 0")


class SendStatus(enum.Enum):
    SENT = "sent"
    BLOCKED = "blocked"
    SYNC_ERROR = "sync-error"
    BROKEN = "broken"  # channel already broken; message dropped


@dataclass(slots=True)
class SendResult:
    status: SendStatus
    error: Optional[CommError] = None
    unblock_event: Optional[Event] = None

    @property
    def ok(self) -> bool:
        return self.status in (SendStatus.SENT, SendStatus.BLOCKED)


class Channel:
    """A connection between two cluster nodes, as seen from one side."""

    def __init__(self, transport: "Transport", peer: str):
        self.transport = transport
        self.engine: Engine = transport.engine
        self.local = transport.node_id
        self.peer = peer
        self.broken = False
        self.break_reason: Optional[str] = None

    def send(self, msg: Message) -> SendResult:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "broken" if self.broken else "open"
        return f"<{type(self).__name__} {self.local}->{self.peer} {state}>"


class Transport:
    """Per-node transport endpoint.

    Application wiring (set by the PRESS server):

    * ``on_message(peer, msg)`` — a complete message arrived and its
      receive CPU cost has already been charged.
    * ``on_break(peer, reason)`` — the channel to ``peer`` broke; for VIA
      this is the fail-stop signal PRESS uses for fault detection.
    * ``on_fatal(reason)`` — an error this transport reports as fatal to
      the local process (VIA descriptor errors, TCP framing corruption).
    """

    #: Subclasses override: does this transport preserve message boundaries?
    preserves_boundaries = True

    def __init__(self, engine: Engine, node_id: str):
        self.engine = engine
        self.node_id = node_id
        self.channels: Dict[str, Channel] = {}
        self.on_message: Optional[Callable[[str, Message], None]] = None
        self.on_break: Optional[Callable[[str, str], None]] = None
        self.on_fatal: Optional[Callable[[str], None]] = None
        self.send_interposers: List[Callable[[Message], Message]] = []

    # -- wiring ------------------------------------------------------------
    def connect(
        self, peer: str, on_result: Optional[Callable[[bool], None]] = None
    ) -> Channel:
        """Open (or return) the channel to ``peer``."""
        raise NotImplementedError

    def channel(self, peer: str) -> Optional[Channel]:
        return self.channels.get(peer)

    def close_channel(self, peer: str) -> None:
        """Tear down the channel to ``peer``."""
        raise NotImplementedError

    def send_datagram(self, peer: str, msg: Message) -> None:
        """Unconnected control message (heartbeats, join protocol)."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Tear down all channels (operator reset)."""
        raise NotImplementedError

    # -- cost model ----------------------------------------------------------
    def send_cost(self, msg: Message) -> float:
        """CPU seconds the *sender* burns to transmit ``msg``."""
        raise NotImplementedError

    def recv_cost(self, msg: Message) -> float:
        """CPU seconds the *receiver* burns to take delivery of ``msg``."""
        raise NotImplementedError

    # -- interposition (bad-parameter fault injection) -----------------------
    def interpose_send(self, fn: Callable[[Message], Message]) -> None:
        """Install a Mendosus-style interposer on the send path."""
        self.send_interposers.append(fn)

    def clear_interposers(self) -> None:
        self.send_interposers.clear()

    def _apply_interposers(self, msg: Message) -> Message:
        for fn in self.send_interposers:
            msg = fn(msg)
        return msg

    # -- snapshot support (see repro.sim.snapshot) ---------------------------
    def snapshot_state(self) -> dict:
        """Deterministic-state digest input (see Snapshottable).

        Message ids are deliberately absent: they come from a module
        counter whose absolute position is process-local and
        unobservable (serial/parallel campaign parity already relies on
        that), so folding them in would poison warm/cold comparisons.
        """
        return {
            "node": self.node_id,
            "channels": {
                peer: {"broken": ch.broken, "reason": ch.break_reason}
                for peer, ch in sorted(self.channels.items())
            },
            "interposers": len(self.send_interposers),
        }

    # -- helpers for subclasses ----------------------------------------------
    def _deliver_up(self, peer: str, msg: Message) -> None:
        spans = self.engine.spans
        if spans is not None and msg.trace_id:
            # Close the sender's message span: the message is now in the
            # application's hands (recv cost charged by the caller).
            spans.end_key(("msg", msg.msg_id), self.engine.now)
        if self.on_message is not None:
            self.on_message(peer, msg)

    def _break_up(self, peer: str, reason: str) -> None:
        if self.on_break is not None:
            self.on_break(peer, reason)

    def _fatal_up(self, reason: str) -> None:
        if self.on_fatal is not None:
            self.on_fatal(reason)
