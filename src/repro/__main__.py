"""Command-line interface: regenerate any exhibit of the paper.

Usage::

    python -m repro table1
    python -m repro figure 2
    python -m repro figure 6
    python -m repro timeline --version VIA-PRESS-5 --fault link-down
    python -m repro campaign --versions TCP-PRESS VIA-PRESS-5
    python -m repro dashboard .repro-cache
    python -m repro store-diff .cache-a .cache-b
    python -m repro --profile campaign --versions TCP-PRESS
    python -m repro perf-report .repro-cache
    python -m repro perf-compare .cache-a .cache-b
    python -m repro trace-validate traces/
    python -m repro crossover
    python -m repro validate

Add ``--scale N`` (CPU/byte scale factor; larger = faster, default 200),
``--seed N``, and ``--replications N`` to any subcommand.
"""

from __future__ import annotations

import argparse
import os
import sys

from .experiments.settings import (
    REPETITION_RULES,
    Phase1Settings,
    RepetitionPolicy,
)
from .experiments.store import CACHE_DIR_ENV
from .faults.spec import FaultKind
from .obs.exporters import TRACE_FORMATS
from .press.cluster import ExperimentScale
from .sim.lpexec import BACKENDS


def _repetition(args: argparse.Namespace):
    """The adaptive policy from --reps-policy/--reps-max/--rep-budget,
    or ``None`` (legacy fixed-``replications``)."""
    if args.reps_policy == "fixed":
        if args.rep_budget is not None:
            sys.exit(
                "repro: --rep-budget needs an adaptive --reps-policy "
                f"(one of {[r for r in REPETITION_RULES if r != 'fixed']})"
            )
        return None
    try:
        return RepetitionPolicy(
            rule=args.reps_policy,
            min_reps=min(args.replications, args.reps_max),
            max_reps=args.reps_max,
            rep_budget=args.rep_budget,
        )
    except ValueError as exc:
        sys.exit(f"repro: {exc}")


def _settings(args: argparse.Namespace) -> Phase1Settings:
    try:
        return Phase1Settings(
            scale=ExperimentScale(cpu_factor=args.scale),
            seed=args.seed,
            replications=args.replications,
            fastpath=not args.no_fastpath,
            n_nodes=args.nodes,
            shards=args.shards,
            lp_backend=args.lp_backend,
            repetition=_repetition(args),
        )
    except ValueError as exc:
        sys.exit(f"repro: {exc}")


def cmd_table1(args) -> None:
    from .experiments.table1 import format_table1, run_table1

    print(format_table1(run_table1(_settings(args))))


def cmd_figure(args) -> None:
    settings = _settings(args)
    if args.number in (2, 3, 4, 5):
        from .experiments import timelines as tl

        runner = {
            2: tl.run_figure2,
            3: tl.run_figure3,
            5: tl.run_figure5,
        }
        if args.number == 4:
            for label, fig in tl.run_figure4(settings).items():
                print(tl.format_timeline_figure(fig, title=f"Figure 4 — {label}"))
                print()
        else:
            fig = runner[args.number](settings)
            print(
                tl.format_timeline_figure(
                    fig, title=f"Figure {args.number} — {fig.fault.value}"
                )
            )
    elif args.number in (6, 7, 8, 9, 10):
        from .experiments import performability as pf

        if args.number == 6:
            print(pf.format_figure6(pf.run_figure6(settings)))
        else:
            runner = {
                7: pf.run_figure7,
                8: pf.run_figure8,
                9: pf.run_figure9,
                10: pf.run_figure10,
            }
            print(pf.format_sensitivity(runner[args.number](settings)))
    else:
        sys.exit(f"no figure {args.number}; the paper has figures 2-10")


def cmd_timeline(args) -> None:
    from .analysis.report import timeline_report
    from .experiments.phase1 import run_single_fault
    from .press.config import ALL_VERSIONS_EXTENDED

    kind = FaultKind(args.fault)
    recorder = None
    if args.trace_dir:
        from .obs.bus import EventRecorder

        recorder = EventRecorder(keep_events=True)
    spans = None
    if args.spans_dir:
        from .obs.spans import SpanCollector

        spans = SpanCollector(sample_every=args.span_sample)
    record, cluster = run_single_fault(
        ALL_VERSIONS_EXTENDED[args.version], kind, _settings(args),
        recorder=recorder, spans=spans,
    )
    print(timeline_report(record))
    label = f"{args.version}__{kind.value}__seed{args.seed}"
    if recorder is not None:
        from .obs.exporters import export_run, telemetry_summary

        paths = export_run(
            recorder.events,
            args.trace_dir,
            label,
            args.trace_format,
            meta={"version": args.version, "fault": kind.value,
                  "seed": args.seed},
        )
        summary = telemetry_summary(recorder, cluster.metrics)
        print(f"trace: {summary['event_total']} events ->",
              " ".join(str(p) for p in paths))
    if spans is not None:
        from .obs.exporters import export_spans

        spans.finish(cluster.engine.now)
        span_paths = export_spans(
            spans,
            args.spans_dir,
            label,
            args.trace_format,
            meta={"version": args.version, "fault": kind.value,
                  "seed": args.seed},
        )
        print(f"spans: {len(spans.spans)} spans in {spans.n_traces} "
              "traces ->",
              " ".join(str(p) for p in span_paths))


def cmd_campaign(args) -> None:
    from .analysis.report import (
        attribution_report,
        campaign_report,
        campaign_timing_report,
        latency_band_report,
        repetition_report,
        trace_summary_report,
    )
    from .experiments.campaign import full_campaign_with_report

    campaign, timing = full_campaign_with_report(
        _settings(args), versions=args.versions or None
    )
    print(campaign_report(campaign, replicates=timing.replicates))
    latency = latency_band_report(timing)
    if latency:
        print(latency)
    attribution = attribution_report(timing)
    if attribution:
        print(attribution)
    print(campaign_timing_report(timing))
    reps = repetition_report(timing)
    if reps:
        print(reps)
    traces = trace_summary_report(timing)
    if traces:
        print(traces)


def cmd_store_diff(args) -> None:
    """Compare the deterministic content of two campaign stores.

    Cells are matched by their logical key (version/fault/seed/schema)
    and compared by :func:`~repro.experiments.store.payload_fingerprint`,
    which ignores the volatile keys (wall-clock, warm-start provenance).
    A store whose cells predate the current schema is called out as
    *invalidated* — the next campaign re-runs them, it does not re-read
    them.  Exits non-zero on any missing or differing cell — this is
    what CI's warm-vs-cold double run drives.
    """
    from pathlib import Path

    from .experiments.store import (
        SCHEMA_VERSION,
        DiskStore,
        payload_fingerprint,
    )

    def fingerprints(root: str) -> dict:
        if not Path(root).is_dir():
            sys.exit(f"store-diff: {root} is not a directory")
        out = {}
        for key, payload in DiskStore(root).iter_cells():
            k = (
                key.get("version"),
                key.get("fault"),
                key.get("seed"),
                key.get("schema"),
            )
            out[k] = payload_fingerprint(payload)
        stale = sorted(
            {k[3] for k in out if (k[3] or 0) < SCHEMA_VERSION}
        )
        if stale:
            n = sum(1 for k in out if (k[3] or 0) < SCHEMA_VERSION)
            olds = ", ".join(f"v{s}" for s in stale)
            print(
                f"store-diff: {root}: {n} cell(s) under stale schema "
                f"{olds} — invalidated by current schema "
                f"v{SCHEMA_VERSION}; campaigns re-run these cells "
                "rather than re-reading them"
            )
        return out

    a = fingerprints(args.store_a)
    b = fingerprints(args.store_b)
    problems = 0
    for k in sorted(set(a) | set(b), key=repr):
        label = f"{k[0]} {k[1] or 'baseline'} seed={k[2]} schema={k[3]}"
        if k not in a:
            print(f"store-diff: only in {args.store_b}: {label}")
            problems += 1
        elif k not in b:
            print(f"store-diff: only in {args.store_a}: {label}")
            problems += 1
        elif a[k] != b[k]:
            print(f"store-diff: payload mismatch: {label}")
            problems += 1
    if problems:
        sys.exit(f"store-diff: {problems} difference(s)")
    print(f"store-diff: {len(a)} cell(s) compared, payloads identical")


def cmd_perf_report(args) -> None:
    from .analysis.perf import perf_report_from_store, perf_report_json

    try:
        if args.json:
            print(perf_report_json(args.store))
        else:
            print(perf_report_from_store(args.store))
    except ValueError as exc:
        sys.exit(f"perf-report: {exc}")


def cmd_perf_compare(args) -> None:
    from .analysis.perf import perf_compare, perf_compare_json

    if args.json:
        text, comparable = perf_compare_json(args.store_a, args.store_b)
    else:
        text, comparable = perf_compare(args.store_a, args.store_b)
    print(text)
    if not comparable:
        sys.exit("perf-compare: nothing to compare")


def cmd_dashboard(args) -> None:
    from .analysis.dashboard import dashboard_from_store

    try:
        out = dashboard_from_store(args.store, args.out)
    except ValueError as exc:
        sys.exit(f"dashboard: {exc}")
    print(f"dashboard: {out}")


def cmd_trace_validate(args) -> None:
    from .obs.exporters import validate_trace_dir

    try:
        results = validate_trace_dir(args.trace_dir_arg)
    except ValueError as exc:
        sys.exit(f"trace-validate: {exc}")
    for name, count in sorted(results.items()):
        print(f"{name}: {count} events ok")
    print(f"trace-validate: {len(results)} file(s) ok")


def cmd_crossover(args) -> None:
    from .experiments.performability import run_crossover

    print("§9 crossover multipliers (VIA fault rates vs. TCP-PRESS):")
    for version, multiplier in run_crossover(_settings(args)).items():
        print(f"  {version:14s} {multiplier:5.2f}x   (paper: ~4x)")


def cmd_stability(args) -> None:
    from .experiments.stability import (
        crossover_quantity,
        format_sweep,
        performability_quantity,
        sweep,
    )

    seeds = list(range(args.seed, args.seed + args.sweep_seeds))
    settings = _settings(args)
    print(
        format_sweep(
            sweep(performability_quantity(), seeds, settings),
            title=f"performability across seeds {seeds}:",
        )
    )
    print(
        format_sweep(
            sweep(crossover_quantity(), seeds, settings),
            title="§9 crossover multiplier across seeds:",
        )
    )


def cmd_validate(args) -> None:
    import dataclasses

    from .experiments.validation import run_sequential_validation

    settings = dataclasses.replace(_settings(args), utilization=0.72)
    print("model validation — sequential fault roster:")
    for version in ("TCP-PRESS", "VIA-PRESS-5"):
        r = run_sequential_validation(version, settings, spacing=500.0)
        print(
            f"  {version:14s} simulated AA {r.simulated_availability:.4f}"
            f"  predicted AA {r.predicted_availability:.4f}"
            f"  error/unavailability {r.relative_error:.2f}"
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of the HPCA'03 "
        "communication-architecture performability study.",
    )
    parser.add_argument("--scale", type=float, default=200.0,
                        help="CPU/byte scale factor (larger = faster run)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--replications", type=int, default=3)
    parser.add_argument(
        "--reps-policy", choices=list(REPETITION_RULES), default="fixed",
        help="replication stopping rule: fixed (exactly --replications "
        "per stream, the default), rse (stop when the stream metric's "
        "relative standard error converges), or ci (stop when its "
        "Student-t CI half width converges); see EXPERIMENTS.md",
    )
    parser.add_argument(
        "--reps-max", type=int, default=10,
        help="per-stream replication ceiling for adaptive --reps-policy "
        "(min is --replications; default 10)",
    )
    parser.add_argument(
        "--rep-budget", type=int, default=None,
        help="campaign-wide cap on extra replications beyond the "
        "minimum, spent highest-variance-first (adaptive policies only)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for campaign cells (1 = serial)",
    )
    parser.add_argument(
        "--cache-dir", default=os.environ.get(CACHE_DIR_ENV),
        help="persist campaign cell results here (survives restarts; "
        f"default ${CACHE_DIR_ENV} if set, else in-memory only)",
    )
    parser.add_argument(
        "--clear-cache", action="store_true",
        help="drop every cached campaign cell in --cache-dir, then run",
    )
    parser.add_argument(
        "--no-warm-start", action="store_true",
        help="simulate every campaign cell's warm-up from scratch instead "
        "of restoring the per-(version, rep) warm-state checkpoint "
        "(bit-identical results either way; see PERFORMANCE.md "
        "\"Warm-start checkpointing\")",
    )
    parser.add_argument(
        "--no-fastpath", action="store_true",
        help="reference mode: schedule every per-hop network event "
        "explicitly instead of the coalesced fast path (bit-identical "
        "results, several times slower; see PERFORMANCE.md)",
    )
    parser.add_argument(
        "--nodes", type=int, default=4,
        help="cluster size (the paper's testbed is 4; scaling studies "
        "use 16/64)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="partition the event engine into N logical processes under "
        "conservative synchronization (bit-identical results for every "
        "value; capped at --nodes; see PERFORMANCE.md \"LP sharding\")",
    )
    parser.add_argument(
        "--lp-backend", choices=list(BACKENDS), default="serial",
        help="execution backend for the sharded engine: serial (exact "
        "in-process merge, the default), threads (per-LP worker threads, "
        "debug fallback), or processes (per-LP OS workers exchanging "
        "EOT/null messages over pipes); byte-identical results for every "
        "choice — see PERFORMANCE.md \"Parallel LP backend\"",
    )
    parser.add_argument(
        "--trace-dir", default=None,
        help="emit one structured trace per run/cell into this directory "
        "(campaign cells always execute when tracing)",
    )
    parser.add_argument(
        "--trace-format", choices=list(TRACE_FORMATS), default="both",
        help="trace file flavour: JSONL events, Chrome trace_event "
        "(load in Perfetto), or both (default)",
    )
    parser.add_argument(
        "--spans", default=None, metavar="DIR", dest="spans_dir",
        help="emit request-scoped causal spans per run/cell into this "
        "directory (*.spans.jsonl + Perfetto *.spans.trace.json; span "
        "cells always execute and run cold; see OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--span-sample", type=int, default=1, metavar="N",
        help="keep every Nth request trace when collecting spans "
        "(default 1 = every request)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="attach the wall-clock flight recorder to every campaign "
        "cell: per-layer self-time, fastpath/heap-churn counters, LP "
        "shard balance — persisted to the store's perf/ namespace and "
        "a BENCH_campaign.json ledger (results stay byte-identical; "
        "read back with perf-report; see OBSERVABILITY.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="near-peak throughput of the 5 versions")

    p_fig = sub.add_parser("figure", help="regenerate one figure (2-10)")
    p_fig.add_argument("number", type=int)

    p_tl = sub.add_parser("timeline", help="one (version, fault) timeline")
    p_tl.add_argument("--version", required=True)
    p_tl.add_argument(
        "--fault",
        required=True,
        choices=[k.value for k in FaultKind],
    )

    p_camp = sub.add_parser("campaign", help="full phase-1+2 report")
    p_camp.add_argument("--versions", nargs="*", default=None)

    p_diff = sub.add_parser(
        "store-diff",
        help="compare two campaign cache dirs cell by cell (non-zero exit "
        "on any payload mismatch; volatile keys ignored)",
    )
    p_diff.add_argument("store_a", help="first campaign cache dir")
    p_diff.add_argument("store_b", help="second campaign cache dir")

    p_perf = sub.add_parser(
        "perf-report",
        help="where a profiled campaign's wall-clock went: per-layer "
        "self-time, fastpath hit rate, heap churn, LP shard balance, "
        "per-cell breakdown (needs a --profile campaign in the store)",
    )
    p_perf.add_argument("store", help="campaign cache dir (a DiskStore)")
    p_perf.add_argument(
        "--json", action="store_true",
        help="emit the aggregated ledger as machine-readable JSON "
        "(stable key order) instead of the text report",
    )

    p_pcmp = sub.add_parser(
        "perf-compare",
        help="diff the flight-recorder ledgers of two campaign cache "
        "dirs (non-zero exit when either side has no perf data)",
    )
    p_pcmp.add_argument("store_a", help="first profiled cache dir")
    p_pcmp.add_argument("store_b", help="second profiled cache dir")
    p_pcmp.add_argument(
        "--json", action="store_true",
        help="emit the per-layer/total deltas as machine-readable JSON "
        "instead of the text diff",
    )

    p_dash = sub.add_parser(
        "dashboard",
        help="render a campaign store to one self-contained HTML report",
    )
    p_dash.add_argument("store", help="campaign cache dir (a DiskStore)")
    p_dash.add_argument(
        "--out", default=None,
        help="output HTML path (default: <store>/dashboard.html)",
    )

    p_tv = sub.add_parser(
        "trace-validate",
        help="validate every trace file in a directory (non-zero exit on "
        "malformed traces)",
    )
    p_tv.add_argument(
        "trace_dir_arg", metavar="trace_dir",
        help="directory of *.jsonl / *.trace.json traces",
    )

    sub.add_parser("crossover", help="the §9 ~4x crossover multipliers")
    sub.add_parser("validate", help="validate the model against simulation")

    p_stab = sub.add_parser(
        "stability", help="seed-sweep error bars for the headline numbers"
    )
    p_stab.add_argument("--sweep-seeds", type=int, default=3,
                        help="number of consecutive seeds to sweep")
    return parser


def _configure_campaign(args) -> None:
    """Apply --jobs/--cache-dir/--trace-dir to every campaign this
    process runs."""
    from .experiments.campaign import configure
    from .experiments.store import open_store

    store = open_store(args.cache_dir) if args.cache_dir else None
    if store is not None and args.clear_cache:
        store.clear()
    configure(
        store=store,
        jobs=args.jobs,
        trace_dir=args.trace_dir,
        trace_format=args.trace_format,
        warm_start=not args.no_warm_start,
        spans_dir=args.spans_dir,
        span_sample=args.span_sample,
        profile=args.profile,
    )


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    _configure_campaign(args)
    handler = {
        "table1": cmd_table1,
        "figure": cmd_figure,
        "timeline": cmd_timeline,
        "campaign": cmd_campaign,
        "store-diff": cmd_store_diff,
        "perf-report": cmd_perf_report,
        "perf-compare": cmd_perf_compare,
        "dashboard": cmd_dashboard,
        "trace-validate": cmd_trace_validate,
        "crossover": cmd_crossover,
        "validate": cmd_validate,
        "stability": cmd_stability,
    }[args.command]
    handler(args)


if __name__ == "__main__":
    main()
