"""The fault catalogue — Table 2 of the paper.

Each :class:`FaultKind` carries its category and example error sources
(verbatim from the table) so the harness can group unavailability
contributions the way Figure 6(a) does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class FaultCategory(enum.Enum):
    NETWORK_HARDWARE = "network-hardware"
    NODE = "node"
    RESOURCE_EXHAUSTION = "resource-exhaustion"
    APPLICATION = "application"


class FaultKind(enum.Enum):
    LINK_DOWN = "link-down"
    SWITCH_DOWN = "switch-down"
    NODE_CRASH = "node-crash"
    NODE_FREEZE = "node-freeze"
    KERNEL_MEMORY = "kernel-memory-allocation"
    MEMORY_PINNING = "memory-pinning"
    APP_HANG = "application-hang"
    APP_CRASH = "application-crash"
    BAD_PARAM_NULL = "bad-param-null-pointer"
    BAD_PARAM_OFFSET = "bad-param-off-by-n-pointer"
    BAD_PARAM_SIZE = "bad-param-off-by-n-size"


#: Table 2: fault -> (category, example error sources).
FAULT_CATALOG: Dict[FaultKind, tuple] = {
    FaultKind.LINK_DOWN: (
        FaultCategory.NETWORK_HARDWARE,
        "Faulty cable, accidental unplugging, mis-configuration",
    ),
    FaultKind.SWITCH_DOWN: (
        FaultCategory.NETWORK_HARDWARE,
        "Power failure, software bug, mis-configuration",
    ),
    FaultKind.NODE_CRASH: (
        FaultCategory.NODE,
        "Operator error, OS bug, hardware fault, power failure",
    ),
    FaultKind.NODE_FREEZE: (
        FaultCategory.NODE,
        "OS bug, OS recovering after killing faulty process",
    ),
    FaultKind.KERNEL_MEMORY: (
        FaultCategory.RESOURCE_EXHAUSTION,
        "System low on (kernel) memory / out of virtual address space",
    ),
    FaultKind.MEMORY_PINNING: (
        FaultCategory.RESOURCE_EXHAUSTION,
        "Out of pinnable physical memory",
    ),
    FaultKind.APP_HANG: (
        FaultCategory.APPLICATION,
        "Application bugs, paging effects",
    ),
    FaultKind.APP_CRASH: (
        FaultCategory.APPLICATION,
        "Application bugs, operator mis-termination",
    ),
    FaultKind.BAD_PARAM_NULL: (
        FaultCategory.APPLICATION,
        "Uninitialized pointers, logical error, pointer corruption",
    ),
    FaultKind.BAD_PARAM_OFFSET: (
        FaultCategory.APPLICATION,
        "Pointer corruption, stale memory handle (RDMA)",
    ),
    FaultKind.BAD_PARAM_SIZE: (
        FaultCategory.APPLICATION,
        "Logical error, stale memory handle (RDMA)",
    ),
}


def category_of(kind: FaultKind) -> FaultCategory:
    return FAULT_CATALOG[kind][0]


@dataclass(frozen=True)
class FaultSpec:
    """A concrete injection: what, where, when, and for how long.

    ``duration`` is meaningful for faults with an extended active period
    (link/switch down, freezes, hangs, memory exhaustion).  Crashes and
    bad-parameter faults are instantaneous; their recovery is governed by
    reboot/restart machinery.  ``off_by_n`` is the byte offset for
    off-by-N faults (the paper draws 0-100, the dominant range in field
    data).
    """

    kind: FaultKind
    target: Optional[str] = None  # node id; None for switch faults
    at: float = 0.0
    duration: float = 0.0
    off_by_n: int = 16
    params: dict = field(default_factory=dict)

    @property
    def category(self) -> FaultCategory:
        return category_of(self.kind)

    def label(self) -> str:
        where = self.target if self.target is not None else "switch"
        return f"{self.kind.value}@{where}"
