"""Mendosus: software fault injection for the simulated cluster.

Mirrors the real Mendosus's structure — kernel-level hooks for network,
node, and memory faults; a per-node daemon for process signals; and an
interposition layer between the application and the communication
library for bad-parameter faults.  Faults are injected into the *running*
system and annotated on the experiment timeline for later stage
extraction.
"""

from __future__ import annotations

from dataclasses import replace
from functools import partial
from typing import Dict, Optional

from ..net.fabric import Fabric
from ..net.link import intra_cluster_kind
from ..osim.node import Node
from ..sim.engine import Engine
from ..obs.events import FAULT_CLEARED, FAULT_INJECTED
from ..sim.monitor import Annotations
from ..transports.base import CorruptionKind, Message, Transport
from .spec import FaultKind, FaultSpec


class Mendosus:
    """The fault injector, wired to every fault surface of the cluster."""

    def __init__(
        self,
        engine: Engine,
        fabric: Fabric,
        nodes: Dict[str, Node],
        transports: Dict[str, Transport],
        annotations: Annotations,
    ):
        self.engine = engine
        self.fabric = fabric
        self.nodes = nodes
        self.transports = transports
        self.annotations = annotations
        self.injected: list[FaultSpec] = []

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def schedule(self, spec: FaultSpec) -> None:
        """Arm ``spec`` to fire at its ``at`` time."""
        self.engine.call_at(spec.at, self.inject, spec)

    def inject(self, spec: FaultSpec) -> None:
        """Fire ``spec`` now."""
        self.injected.append(spec)
        self._publish(FAULT_INJECTED, spec)
        self.annotations.mark("fault-injected", spec.label())
        handler = {
            FaultKind.LINK_DOWN: self._link_down,
            FaultKind.SWITCH_DOWN: self._switch_down,
            FaultKind.NODE_CRASH: self._node_crash,
            FaultKind.NODE_FREEZE: self._node_freeze,
            FaultKind.KERNEL_MEMORY: self._kernel_memory,
            FaultKind.MEMORY_PINNING: self._memory_pinning,
            FaultKind.APP_HANG: self._app_hang,
            FaultKind.APP_CRASH: self._app_crash,
            FaultKind.BAD_PARAM_NULL: self._bad_param,
            FaultKind.BAD_PARAM_OFFSET: self._bad_param,
            FaultKind.BAD_PARAM_SIZE: self._bad_param,
        }[spec.kind]
        handler(spec)

    def _cleared(self, spec: FaultSpec) -> None:
        self._publish(FAULT_CLEARED, spec)
        self.annotations.mark("fault-cleared", spec.label())

    def _publish(self, name: str, spec: FaultSpec) -> None:
        bus = self.engine.bus
        if bus is not None:
            bus.publish(
                name,
                node=spec.target or "",
                fault=spec.label(),
                kind=spec.kind.value,
                target=spec.target or "",
            )

    # ------------------------------------------------------------------
    # Network hardware
    # ------------------------------------------------------------------
    def _link_down(self, spec: FaultSpec) -> None:
        link = self.fabric.link(spec.target)
        scope = spec.params.get("scope", "intra")
        if scope == "intra":
            # Mendosus differentiates traffic classes: only intra-cluster
            # frames are dropped; the clients stay undisturbed.
            link.fail_for(intra_cluster_kind)
        else:
            link.fail()
        if spec.duration > 0:
            self.engine.call_after(spec.duration, self._link_repair, spec, link)

    def _link_repair(self, spec: FaultSpec, link) -> None:
        link.repair()
        self._cleared(spec)

    def _switch_down(self, spec: FaultSpec) -> None:
        self.fabric.switch.fail()
        if spec.duration > 0:
            self.engine.call_after(spec.duration, self._switch_repair, spec)

    def _switch_repair(self, spec: FaultSpec) -> None:
        self.fabric.switch.repair()
        self._cleared(spec)

    # ------------------------------------------------------------------
    # Node faults
    # ------------------------------------------------------------------
    def _node_crash(self, spec: FaultSpec) -> None:
        node = self.nodes[spec.target]
        transient = spec.params.get("transient", True)
        if transient:
            node.on_reboot_complete.append(
                _OneShot(partial(self._cleared, spec))
            )
        node.crash(transient=transient)

    def _node_freeze(self, spec: FaultSpec) -> None:
        node = self.nodes[spec.target]
        node.freeze()
        if spec.duration > 0:
            self.engine.call_after(spec.duration, self._node_unfreeze, spec, node)

    def _node_unfreeze(self, spec: FaultSpec, node: Node) -> None:
        node.unfreeze()
        self._cleared(spec)

    # ------------------------------------------------------------------
    # Resource exhaustion
    # ------------------------------------------------------------------
    def _kernel_memory(self, spec: FaultSpec) -> None:
        node = self.nodes[spec.target]
        kernel = node.kernel_memory  # bind the current kernel object
        kernel.inject_allocation_fault()
        if spec.duration > 0:
            self.engine.call_after(
                spec.duration, self._kernel_memory_clear, spec, kernel
            )

    def _kernel_memory_clear(self, spec: FaultSpec, kernel) -> None:
        kernel.clear_fault()
        self._cleared(spec)

    def _memory_pinning(self, spec: FaultSpec) -> None:
        node = self.nodes[spec.target]
        pinnable = node.pinnable
        # The modified cLAN driver lowers the effective pin threshold;
        # default: half of what is currently pinned, so the holder must
        # shed (the paper's "drops files from its cache").
        fraction = spec.params.get("limit_fraction", 0.5)
        limit = spec.params.get("limit", int(pinnable.pinned * fraction))
        pinnable.inject_pin_fault(limit)
        if spec.duration > 0:
            self.engine.call_after(
                spec.duration, self._memory_pinning_clear, spec, pinnable
            )

    def _memory_pinning_clear(self, spec: FaultSpec, pinnable) -> None:
        pinnable.clear_fault()
        self._cleared(spec)

    # ------------------------------------------------------------------
    # Application faults (via the per-node daemon)
    # ------------------------------------------------------------------
    def _app_crash(self, spec: FaultSpec) -> None:
        node = self.nodes[spec.target]
        node.process.on_start.append(_OneShot(partial(self._cleared, spec)))
        node.process.sigkill()

    def _app_hang(self, spec: FaultSpec) -> None:
        node = self.nodes[spec.target]
        node.process.sigstop()
        if spec.duration > 0:
            self.engine.call_after(spec.duration, self._app_resume, spec, node)

    def _app_resume(self, spec: FaultSpec, node: Node) -> None:
        node.process.sigcont()
        self._cleared(spec)

    # ------------------------------------------------------------------
    # Bad parameters (interposition layer)
    # ------------------------------------------------------------------
    def _bad_param(self, spec: FaultSpec) -> None:
        """Corrupt the parameters of the next send() / VipPostSend().

        The interposer traps exactly one call, mangles it per the spec,
        then removes itself — a transient application bug.
        """
        transport = self.transports[spec.target]
        corruption = {
            FaultKind.BAD_PARAM_NULL: CorruptionKind.NULL_POINTER,
            FaultKind.BAD_PARAM_OFFSET: CorruptionKind.OFF_BY_N_POINTER,
            FaultKind.BAD_PARAM_SIZE: CorruptionKind.OFF_BY_N_SIZE,
        }[spec.kind]
        state = {"fired": False}

        def interposer(msg: Message) -> Message:
            if state["fired"]:
                return msg
            state["fired"] = True
            transport.send_interposers.remove(interposer)
            self._cleared(spec)
            return replace(msg, corruption=corruption, skew=spec.off_by_n)

        transport.interpose_send(interposer)


class _OneShot:
    """A hook wrapper that fires once, then unregisters by becoming inert."""

    def __init__(self, fn):
        self.fn = fn
        self.fired = False

    def __call__(self, *args) -> None:
        if not self.fired:
            self.fired = True
            self.fn()
