"""Fault injection: the Table-2 catalogue and the Mendosus-like injector."""

from .injector import Mendosus
from .spec import FAULT_CATALOG, FaultCategory, FaultKind, FaultSpec, category_of

__all__ = [
    "Mendosus",
    "FaultKind",
    "FaultCategory",
    "FaultSpec",
    "FAULT_CATALOG",
    "category_of",
]
