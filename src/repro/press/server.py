"""The PRESS server: locality-conscious, cooperative-caching request flow.

One :class:`PressServer` runs per cluster node (hosted by the node's
:class:`~repro.osim.process.SimProcess`).  The request flow follows §3 of
the paper:

* any node can receive a client request (round-robin DNS) and becomes its
  **initial node**;
* the initial node consults its locality directory — built from
  cache-content broadcasts — and either serves the file itself or
  forwards the request to the **service node** caching it;
* the service node returns the file data to the initial node, which ships
  it to the client;
* every cache insertion/eviction is broadcast so the directory stays
  current.

The availability-relevant plumbing:

* intra-cluster sends that hit transport backpressure **block the main
  loop** (``WorkQueue.block_on``) — how one sick peer freezes a node;
* transport ``on_break`` feeds :class:`Membership` — reconfiguration;
* transport ``on_fatal`` (VIA descriptor errors, TCP framing corruption)
  triggers PRESS's **fail-fast** policy: the process terminates itself
  and the node's restart daemon brings it back for rejoin.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..obs.metrics import bound_counter
from ..osim.node import Node
from ..sim.engine import Engine
from ..sim.monitor import Annotations
from ..transports.base import Message, SendStatus, Transport
from ..workload.trace import FileSet
from .cache import FileCache
from .config import PressConfig
from .http import HttpPort, HttpRequest
from .membership import Membership


class PressServer:
    """One PRESS node."""

    def __init__(
        self,
        engine: Engine,
        node: Node,
        transport: Transport,
        config: PressConfig,
        fileset: FileSet,
        all_server_ids: List[str],
        annotations: Annotations,
    ):
        self.engine = engine
        self.node = node
        self.transport = transport
        self.config = config
        self.fileset = fileset
        self.all_server_ids = sorted(all_server_ids)
        self.annotations = annotations
        self.node_id = node.node_id

        # Per-incarnation state, built in _incarnate().
        self.cache: Optional[FileCache] = None
        self.membership: Optional[Membership] = None
        self.directory: Dict[str, str] = {}  # file -> caching node
        self.pending_forwards: Dict[int, Tuple[HttpRequest, str]] = {}
        self._update_batch: List[Tuple[str, str]] = []
        self._batch_timer_armed = False
        # Request attribution for cache-update broadcasts: the request
        # whose cache insertion opened the current batch.  Maintained
        # unconditionally (pure ints, deterministic) so span-enabled and
        # span-disabled runs carry identical server state.
        self._active_trace = 0
        self._batch_trace = 0

        # Counters (cumulative across incarnations).
        self._requests_handled = bound_counter(
            engine, "press.server.requests_handled", node=self.node_id
        )
        self._requests_forwarded = bound_counter(
            engine, "press.server.requests_forwarded", node=self.node_id
        )
        self._remote_serves = bound_counter(
            engine, "press.server.remote_serves", node=self.node_id
        )
        self._local_serves = bound_counter(
            engine, "press.server.local_serves", node=self.node_id
        )
        self._disk_reads = bound_counter(
            engine, "press.server.disk_reads", node=self.node_id
        )
        self._fail_fasts = bound_counter(
            engine, "press.server.fail_fasts", node=self.node_id
        )

        self.http = HttpPort(
            engine,
            node,
            config.http.parse,
            self._handle_request,
            accept_backlog=config.accept_backlog,
        )
        transport.on_message = self._on_message
        transport.on_break = self._on_break
        transport.on_fatal = self._on_fatal
        transport.on_accept = self._on_accept
        transport.on_datagram = self._on_datagram
        node.process.on_start.append(self._incarnate)
        node.process.on_death.append(self._cleanup)

    @property
    def requests_handled(self) -> int:
        return self._requests_handled.value

    @property
    def requests_forwarded(self) -> int:
        return self._requests_forwarded.value

    @property
    def remote_serves(self) -> int:
        return self._remote_serves.value

    @property
    def local_serves(self) -> int:
        return self._local_serves.value

    @property
    def disk_reads(self) -> int:
        return self._disk_reads.value

    @property
    def fail_fasts(self) -> int:
        return self._fail_fasts.value

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _incarnate(self) -> None:
        cfg = self.config
        self.cache = FileCache(
            cfg.cache_bytes,
            pinned=cfg.zero_copy,
            pin_memory=self.node.pinnable,
            engine=self.engine,
            node_id=self.node_id,
        )
        self.cache.on_change.append(self._on_cache_change)
        self.directory = {}
        self.pending_forwards = {}
        self._update_batch = []
        self._batch_timer_armed = False
        self._active_trace = 0
        self._batch_trace = 0
        self.membership = Membership(
            engine=self.engine,
            self_id=self.node_id,
            all_ids=self.all_server_ids,
            process=self.node.process,
            send_datagram=self.transport.send_datagram,
            use_heartbeats=cfg.use_heartbeats,
            heartbeat_interval=cfg.heartbeat_interval,
            heartbeat_threshold=cfg.heartbeat_threshold,
            join_retry_interval=cfg.join_retry_interval,
            join_max_retries=cfg.join_max_retries,
            on_exclude=self._handle_exclusion,
            on_include=self._handle_inclusion,
            on_joined=self._handle_joined,
            on_join_gave_up=self._handle_join_gave_up,
            connect_to=self.transport.connect,
            annotate=self.annotations.mark,
            auto_remerge=cfg.auto_remerge,
            remerge_probe_interval=cfg.remerge_probe_interval,
        )
        if self.node.process.incarnation == 1:
            self.membership.bootstrap()
            # Cold start: the lower-id side of each pair dials.
            for peer in self.membership.peers():
                if peer > self.node_id:
                    self.transport.connect(peer)
        else:
            self.annotations.mark("process-restarted", self.node_id)
            self.membership.start_join()

    def _cleanup(self, reason: str) -> None:
        if self.cache is not None:
            self.cache.release()
        self.pending_forwards.clear()
        self.directory.clear()
        self.annotations.mark("process-died", f"{self.node_id} ({reason})")

    # ------------------------------------------------------------------
    # Client request path
    # ------------------------------------------------------------------
    def _handle_request(self, req: HttpRequest) -> None:
        """Main-loop work item: dispatch a parsed client request."""
        if self.cache is None or self.membership is None:
            return
        self._requests_handled.inc()
        file_id = req.file_id
        owner = self.directory.get(file_id)
        if (
            owner is not None
            and owner != self.node_id
            and self.membership.is_member(owner)
            and file_id not in self.cache
        ):
            self._forward(req, owner)
        else:
            self._serve_locally(req)

    def _serve_locally(self, req: HttpRequest) -> None:
        size = self.cache.lookup(req.file_id)
        if size is not None:
            self._local_serves.inc()
            self._respond(req, size)
            return
        size = self.fileset.size(req.file_id)
        self._disk_reads.inc()
        spans = self.engine.spans
        if spans is not None:
            spans.start(
                req.req_id,
                "press.disk",
                self.engine.now,
                node=self.node_id,
                key=("disk", self.node_id, req.req_id),
                file=req.file_id,
            )
        self.node.disk_read(size, self._disk_done, req, size)

    def _disk_done(self, req: HttpRequest, size: int) -> None:
        """Disk helper thread finished; hand back to the main loop."""
        spans = self.engine.spans
        if spans is not None:
            spans.end_key(("disk", self.node_id, req.req_id), self.engine.now)
        self.node.cpu.submit(
            self.config.http.cache_insert, self._serve_after_disk, req, size
        )

    def _serve_after_disk(self, req: HttpRequest, size: int) -> None:
        if self.cache is None:
            return
        self._active_trace = req.req_id
        self.cache.insert(req.file_id, size)
        self._active_trace = 0
        self._local_serves.inc()
        self._respond(req, size)

    def _respond(self, req: HttpRequest, size: int) -> None:
        self.node.cpu.charge(self.config.http.respond(size))
        self.http.send_response(req, size)

    # ------------------------------------------------------------------
    # Intra-cluster request forwarding
    # ------------------------------------------------------------------
    def _forward(self, req: HttpRequest, owner: str) -> None:
        channel = self.transport.channel(owner)
        if channel is None or channel.broken:
            self._serve_locally(req)
            return
        self._requests_forwarded.inc()
        self.pending_forwards[req.req_id] = (req, owner)
        spans = self.engine.spans
        if spans is not None:
            # Covers the whole round trip: fwd-req out, remote serve,
            # file-data back.  Closed by _finish_forwarded, or by
            # _handle_exclusion when membership purges the forward.
            spans.start(
                req.req_id,
                "press.forward",
                self.engine.now,
                node=self.node_id,
                key=("fwd", req.req_id),
                owner=owner,
            )
        msg = Message(
            "fwd-req",
            self.config.forward_msg_bytes,
            payload=(req.req_id, req.file_id, self.node_id),
            trace_id=req.req_id,
        )
        self._send_on(channel, msg)

    def _send_on(self, channel, msg: Message) -> None:
        """Send on the main loop, honouring transport backpressure."""
        result = channel.send(msg)
        if result.status is SendStatus.BLOCKED:
            self.node.cpu.block_on(result.unblock_event)
        # SYNC_ERROR (TCP EFAULT): PRESS logs the error and drops the
        # message — the paper's TCP NULL-pointer behaviour.  BROKEN:
        # membership will exclude the peer; pending requests time out.

    def _on_message(self, peer: str, msg: Message) -> None:
        """Main-loop work item: an intra-cluster message arrived."""
        if self.cache is None or self.membership is None:
            return
        mtype = msg.msg_type
        if mtype == "fwd-req":
            self._serve_remote(peer, msg)
        elif mtype == "file-data":
            self._finish_forwarded(msg)
        elif mtype == "cache-updates":
            self._apply_cache_updates(peer, msg.payload)
        elif mtype == "cache-info":
            self._apply_cache_info(msg.payload)

    def _serve_remote(self, origin: str, msg: Message) -> None:
        """We are the service node for a forwarded request."""
        req_id, file_id, origin_id = msg.payload
        spans = self.engine.spans
        if spans is not None:
            # Nests under the origin's press.forward span (still open on
            # this trace); closed when the file-data reply is posted.
            spans.start(
                req_id,
                "press.remote",
                self.engine.now,
                node=self.node_id,
                key=("remote", self.node_id, req_id),
                file=file_id,
            )
        size = self.cache.lookup(file_id)
        if size is not None:
            self._remote_serves.inc()
            self._send_file_data(origin_id, req_id, file_id, size)
            return
        size = self.fileset.size(file_id)
        self._disk_reads.inc()
        if spans is not None:
            spans.start(
                req_id,
                "press.disk",
                self.engine.now,
                node=self.node_id,
                key=("disk", self.node_id, req_id),
                file=file_id,
            )
        self.node.disk_read(
            size, self._remote_read_done, origin_id, req_id, file_id, size
        )

    def _remote_read_done(
        self, origin_id: str, req_id: int, file_id: str, size: int
    ) -> None:
        """Disk helper finished a forwarded read; back to the main loop."""
        spans = self.engine.spans
        if spans is not None:
            spans.end_key(("disk", self.node_id, req_id), self.engine.now)
        self.node.cpu.submit(
            self.config.http.cache_insert,
            self._remote_disk_done,
            origin_id,
            req_id,
            file_id,
            size,
        )

    def _remote_disk_done(
        self, origin_id: str, req_id: int, file_id: str, size: int
    ) -> None:
        if self.cache is None:
            return
        self._active_trace = req_id
        self.cache.insert(file_id, size)
        self._active_trace = 0
        self._remote_serves.inc()
        self._send_file_data(origin_id, req_id, file_id, size)

    def _send_file_data(
        self, origin_id: str, req_id: int, file_id: str, size: int
    ) -> None:
        spans = self.engine.spans
        if spans is not None:
            # The remote serve ends as the reply is posted; the reply's
            # transport span becomes a sibling under press.forward.
            spans.end_key(("remote", self.node_id, req_id), self.engine.now)
        channel = self.transport.channel(origin_id)
        if channel is None or channel.broken:
            return  # initial node is gone; its client will time out
        msg = Message(
            "file-data", size, payload=(req_id, file_id), trace_id=req_id
        )
        self._send_on(channel, msg)

    def _finish_forwarded(self, msg: Message) -> None:
        req_id, file_id = msg.payload
        entry = self.pending_forwards.pop(req_id, None)
        if entry is None:
            return  # request was purged (peer excluded) or duplicated
        spans = self.engine.spans
        if spans is not None:
            spans.end_key(("fwd", req_id), self.engine.now)
        req, _owner = entry
        self._respond(req, msg.size)

    # ------------------------------------------------------------------
    # Cache-content dissemination
    # ------------------------------------------------------------------
    def _on_cache_change(self, action: str, file_id: str) -> None:
        if not self._update_batch:
            # The request whose insertion opened this batch gets the
            # broadcast attributed to it (a "late" child of its trace).
            self._batch_trace = self._active_trace
        self._update_batch.append((action, file_id))
        if len(self._update_batch) >= self.config.cache_update_batch:
            self._flush_cache_updates()
        elif not self._batch_timer_armed:
            self._batch_timer_armed = True
            self.engine.call_after(
                self.config.cache_update_flush_interval,
                self._flush_timer_fired,
                self.node.process.incarnation,
            )

    def _flush_timer_fired(self, incarnation: int) -> None:
        self._batch_timer_armed = False
        if self.node.process.incarnation != incarnation:
            return
        self._flush_cache_updates()

    def _flush_cache_updates(self) -> None:
        if not self._update_batch or self.membership is None:
            self._update_batch = []
            self._batch_trace = 0
            return
        batch, self._update_batch = self._update_batch, []
        trace, self._batch_trace = self._batch_trace, 0
        size = self.config.cache_update_msg_bytes + 8 * len(batch)
        for peer in self.membership.peers():
            channel = self.transport.channel(peer)
            if channel is None or channel.broken:
                continue
            # Broadcasts ride the helper send thread; backpressure is
            # absorbed by the transport queue rather than blocking here.
            channel.send(
                Message(
                    "cache-updates", size, payload=list(batch), trace_id=trace
                )
            )

    def _apply_cache_updates(
        self, peer: str, batch: List[Tuple[str, str]]
    ) -> None:
        self.node.cpu.charge(self.config.http.directory_update * len(batch))
        for action, file_id in batch:
            if action == "add":
                self.directory[file_id] = peer
            elif self.directory.get(file_id) == peer:
                del self.directory[file_id]

    def _apply_cache_info(self, payload: Tuple[str, List[str]]) -> None:
        peer, files = payload
        self.node.cpu.charge(self.config.http.directory_update * len(files))
        for file_id in files:
            self.directory[file_id] = peer

    # ------------------------------------------------------------------
    # Membership plumbing
    # ------------------------------------------------------------------
    def _on_break(self, peer: str, reason: str) -> None:
        if self.membership is not None:
            self.membership.exclude(peer, f"connection-break:{reason}")

    def _on_accept(self, peer: str) -> None:
        """A peer connected to us.

        At cold start this is just the other half of the full-mesh setup.
        When the peer was *not* in our membership — a genuine rejoin — we
        include it and stream it our caching information (the paper's
        rejoin state transfer; the warming transient of stages B/D/G).
        """
        if self.membership is None:
            return
        is_rejoin = not self.membership.is_member(peer)
        self.membership.include(peer, broadcast=is_rejoin)
        channel = self.transport.channel(peer)
        if not is_rejoin or channel is None or self.cache is None:
            return
        cfg = self.config
        files = list(self.cache.keys())
        per_chunk = max(
            1,
            (cfg.cache_info_max_bytes - cfg.cache_info_base_bytes)
            // cfg.cache_info_entry_bytes,
        )
        chunks = [
            files[i : i + per_chunk] for i in range(0, len(files), per_chunk)
        ] or [[]]
        for chunk in chunks:
            size = cfg.cache_info_base_bytes + cfg.cache_info_entry_bytes * len(chunk)
            channel.send(
                Message("cache-info", size, payload=(self.node_id, chunk))
            )

    def _on_datagram(self, peer: str, msg: Message) -> None:
        if self.membership is not None:
            self.membership.handle_datagram(peer, msg)

    def _on_fatal(self, reason: str) -> None:
        """PRESS's fail-fast policy: fatal comm errors kill the process."""
        self._fail_fasts.inc()
        self.annotations.mark("fail-fast", f"{self.node_id} ({reason})")
        self.node.process.exit(f"fail-fast:{reason}")

    def _handle_exclusion(self, peer: str, reason: str) -> None:
        self.transport.close_channel(peer)
        self.directory = {
            f: owner for f, owner in self.directory.items() if owner != peer
        }
        stale = [
            rid
            for rid, (_req, owner) in self.pending_forwards.items()
            if owner == peer
        ]
        spans = self.engine.spans
        for rid in stale:
            del self.pending_forwards[rid]
            if spans is not None:
                # The reconfiguration abandoned this forward; its client
                # times out.  Charged to membership in the attribution.
                spans.end_key(
                    ("fwd", rid), self.engine.now, "purged", peer=peer
                )

    def _handle_inclusion(self, peer: str) -> None:
        self.annotations.mark("member-included", f"{self.node_id} += {peer}")

    def _handle_joined(self, members: List[str]) -> None:
        pass  # cache-info flows in via _on_accept on the peers' side

    def _handle_join_gave_up(self) -> None:
        pass  # singleton operation: keep serving our DNS share alone

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def members(self) -> List[str]:
        return list(self.membership.members) if self.membership else []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PressServer {self.node_id} members={self.members}>"
