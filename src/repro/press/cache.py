"""The per-node file cache, with optional pinning for zero-copy.

PRESS keeps a fixed-budget in-memory cache of whole files, replaced LRU.
Two paper-relevant behaviours live here:

* every insertion and eviction generates a **cache-update broadcast** so
  peers can route requests to the caching node (locality-conscious
  dispatch);
* in VIA-PRESS-5 every cached page must be **pinned** (registered with
  the VIA provider) so file data can leave zero-copy.  When pinning
  fails — the injected pinnable-memory exhaustion — the cache *sheds
  files* to stay under the effective pin limit, and the resulting misses
  degrade throughput (Figure 4).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional, Tuple

from ..obs.events import CACHE_EVICT, CACHE_HIT, CACHE_MISS, CACHE_PIN_FAILURE
from ..obs.metrics import bound_counter
from ..osim.memory import PinnableMemory


class FileCache:
    """LRU whole-file cache with a byte budget and optional pinning.

    ``engine``/``node_id`` are optional observability hooks: with an
    engine attached, the hit/miss/evict counters live in its metrics
    registry and lookups/evictions publish ``press.cache.*`` events on
    its bus.  A bare cache (tests, standalone use) behaves identically.
    """

    def __init__(
        self,
        capacity_bytes: int,
        pinned: bool = False,
        pin_memory: Optional[PinnableMemory] = None,
        engine=None,
        node_id: str = "",
    ):
        if pinned and pin_memory is None:
            raise ValueError("a pinned cache needs a PinnableMemory")
        self.capacity_bytes = capacity_bytes
        self.pinned = pinned
        self.pin_memory = pin_memory
        self._engine = engine
        self._node_id = node_id
        self._entries: "OrderedDict[str, int]" = OrderedDict()
        self.used_bytes = 0
        self._hits = bound_counter(engine, "press.cache.hits", node=node_id)
        self._misses = bound_counter(engine, "press.cache.misses", node=node_id)
        self._evictions = bound_counter(engine, "press.cache.evictions", node=node_id)
        self._pin_failures = bound_counter(
            engine, "press.cache.pin_failures", node=node_id
        )
        #: callbacks fired with ("add"|"evict", file_id) for broadcasts
        self.on_change: List[Callable[[str, str], None]] = []

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @property
    def pin_failures(self) -> int:
        return self._pin_failures.value

    def _publish(self, name: str, **fields) -> None:
        bus = getattr(self._engine, "bus", None)
        if bus is not None:
            bus.publish(name, node=self._node_id, **fields)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, file_id: str) -> bool:
        return file_id in self._entries

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, file_id: str) -> Optional[int]:
        """Size of the cached file, or None on miss.  Refreshes LRU."""
        size = self._entries.get(file_id)
        if size is None:
            self._misses.inc()
            self._publish(CACHE_MISS, file=file_id)
            return None
        self._entries.move_to_end(file_id)
        self._hits.inc()
        self._publish(CACHE_HIT, file=file_id)
        return size

    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Insertion / eviction
    # ------------------------------------------------------------------
    def insert(self, file_id: str, size: int) -> bool:
        """Cache ``file_id``; returns False when it could not be cached
        (e.g. pinning failed even after shedding every other file)."""
        if size > self.capacity_bytes:
            return False
        if file_id in self._entries:
            self._entries.move_to_end(file_id)
            return True
        while self.used_bytes + size > self.capacity_bytes:
            self._evict_lru()
        if self.pinned:
            while not self.pin_memory.pin(size):
                self._pin_failures.inc()
                self._publish(CACHE_PIN_FAILURE, bytes=size)
                if not self._entries:
                    return False  # nothing left to shed; serve unpinned
                self._evict_lru()
        self._entries[file_id] = size
        self.used_bytes += size
        self._fire("add", file_id)
        return True

    def snapshot_state(self) -> dict:
        """Deterministic-state digest input (see repro.sim.snapshot).

        LRU *order* matters (it decides the next eviction), so the entry
        list is ordered, not sorted.
        """
        return {
            "entries": list(self._entries.items()),
            "used_bytes": self.used_bytes,
            "hits": self._hits.value,
            "misses": self._misses.value,
            "evictions": self._evictions.value,
            "pin_failures": self._pin_failures.value,
        }

    def _evict_lru(self) -> None:
        file_id, size = self._entries.popitem(last=False)
        self.used_bytes -= size
        self._evictions.inc()
        self._publish(CACHE_EVICT, file=file_id)
        if self.pinned:
            self.pin_memory.unpin(size)
        self._fire("evict", file_id)

    def evict(self, file_id: str) -> bool:
        size = self._entries.pop(file_id, None)
        if size is None:
            return False
        self.used_bytes -= size
        self._evictions.inc()
        self._publish(CACHE_EVICT, file=file_id)
        if self.pinned:
            self.pin_memory.unpin(size)
        self._fire("evict", file_id)
        return True

    def shed_to_pin_limit(self) -> int:
        """Drop LRU files until pinned usage fits the *effective* limit.

        Called when a pin fault lowers the ceiling below what the cache
        already holds; VIA-PRESS-5 "releases some of the memory that it
        had previously pinned to free up the needed resources".  Returns
        the number of files shed.
        """
        if not self.pinned:
            return 0
        shed = 0
        while (
            self._entries
            and self.pin_memory.pinned > self.pin_memory.effective_limit
        ):
            self._evict_lru()
            shed += 1
        return shed

    def preload(self, file_ids, size: int) -> int:
        """Warm-start: insert files without firing change broadcasts.

        Used by the experiment harness to start runs in the steady state
        the paper measures in.  Stops early (returning how many files
        made it) if a pinned cache runs out of pinnable memory or the
        byte budget fills.
        """
        loaded = 0
        for file_id in file_ids:
            if file_id in self._entries:
                continue
            if self.used_bytes + size > self.capacity_bytes:
                break
            if self.pinned and not self.pin_memory.pin(size):
                self._pin_failures.inc()
                break
            self._entries[file_id] = size
            self.used_bytes += size
            loaded += 1
        return loaded

    def clear(self) -> None:
        """Drop everything (announcing evictions to peers)."""
        while self._entries:
            self._evict_lru()

    def release(self) -> None:
        """Process death: the OS reclaims pinned pages; no announcements."""
        if self.pinned:
            for size in self._entries.values():
                self.pin_memory.unpin(size)
        self._entries.clear()
        self.used_bytes = 0
        self.on_change.clear()

    def _fire(self, action: str, file_id: str) -> None:
        for cb in self.on_change:
            cb(action, file_id)

    def keys(self):
        return self._entries.keys()
