"""PRESS: the cluster-based locality-conscious web server under study."""

from .analysis import CapacityEstimate, estimate_capacity
from .cache import FileCache
from .cluster import (
    FAST_SCALE,
    FULL_SCALE,
    SMOKE_SCALE,
    STANDARD_SCALE,
    ExperimentScale,
    PressCluster,
)
from .config import (
    ALL_VERSIONS,
    ALL_VERSIONS_EXTENDED,
    IDEAL_PRESS,
    PAPER_TABLE1_THROUGHPUT,
    TCP_PRESS,
    TCP_PRESS_HB,
    VIA_PRESS_0,
    VIA_PRESS_3,
    VIA_PRESS_5,
    HttpCosts,
    PressConfig,
)
from .http import HttpPort, HttpRequest
from .membership import Membership
from .server import PressServer

__all__ = [
    "PressCluster",
    "PressServer",
    "PressConfig",
    "HttpCosts",
    "Membership",
    "FileCache",
    "HttpPort",
    "HttpRequest",
    "ExperimentScale",
    "FULL_SCALE",
    "STANDARD_SCALE",
    "FAST_SCALE",
    "SMOKE_SCALE",
    "CapacityEstimate",
    "estimate_capacity",
    "ALL_VERSIONS",
    "ALL_VERSIONS_EXTENDED",
    "IDEAL_PRESS",
    "PAPER_TABLE1_THROUGHPUT",
    "TCP_PRESS",
    "TCP_PRESS_HB",
    "VIA_PRESS_0",
    "VIA_PRESS_3",
    "VIA_PRESS_5",
]
