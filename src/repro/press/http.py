"""The client-facing HTTP front end of a PRESS node.

Client-server traffic shares the cLAN fabric with intra-cluster traffic
(as in the testbed) but is a distinct traffic class: Mendosus-style
intra-cluster faults do not touch it.  The front end is deliberately
simple — the paper's experiments only exercise static content — but
preserves what matters for availability accounting:

* a request reaching a node whose **process is dead** is refused at once
  (the kernel RSTs the connection);
* a request reaching a **hung** process is accepted by the kernel and
  queues behind the stopped main loop — the client gives up on its own
  timeout;
* a request reaching a **down node** is simply lost (the client's connect
  times out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..net.nic import Nic
from ..net.packet import Frame
from ..osim.node import Node
from ..sim.engine import Engine
from ..sim.ids import IdSource

_req_ids = IdSource("press.http.req_ids")

#: Bytes of an HTTP GET on the wire (request line + headers).
HTTP_REQUEST_BYTES = 300
#: Response framing overhead on top of the file body.
HTTP_RESPONSE_OVERHEAD_BYTES = 200


@dataclass
class HttpRequest:
    """A client request as seen by the server."""

    client_id: str
    req_id: int
    file_id: str
    sent_at: float

    @staticmethod
    def fresh(client_id: str, file_id: str, now: float) -> "HttpRequest":
        return HttpRequest(client_id, next(_req_ids), file_id, now)


class HttpPort:
    """Server-side HTTP listener bound to a node's NIC."""

    def __init__(
        self,
        engine: Engine,
        node: Node,
        parse_cost: float,
        on_request: Callable[[HttpRequest], None],
        accept_backlog: int = 128,
    ):
        self.engine = engine
        self.node = node
        self.nic: Nic = node.nic
        self.parse_cost = parse_cost
        self.on_request = on_request
        self.accept_backlog = accept_backlog
        self.accepted = 0
        self.refused = 0
        self.nic.register("http-req", self._on_frame)

    def _on_frame(self, frame: Frame) -> None:
        req: HttpRequest = frame.payload
        if not self.node.process.alive:
            # Kernel is up, no listener: connection refused immediately.
            self._refuse(req)
            return
        if self.node.cpu.depth >= self.accept_backlog:
            # Listen backlog overflow: a stalled main loop sheds load at
            # the kernel rather than queueing doomed work forever.
            self._refuse(req)
            return
        self.accepted += 1
        spans = self.engine.spans
        if spans is not None:
            # Open on accept, closed by send_response — the span covers
            # parse, cache/disk work and any intra-cluster forwarding.
            spans.start(
                req.req_id,
                "http.serve",
                self.engine.now,
                node=self.node.node_id,
                key=("serve", req.req_id),
            )
        self.node.cpu.submit(self.parse_cost, self._dispatch, req)

    def _dispatch(self, req: HttpRequest) -> None:
        """Parsed-request work item (indirect so ``on_request`` rebinds)."""
        spans = self.engine.spans
        if spans is not None:
            spans.note(
                spans.find(("serve", req.req_id)), parsed_at=self.engine.now
            )
        self.on_request(req)

    def _refuse(self, req: HttpRequest) -> None:
        self.refused += 1
        spans = self.engine.spans
        if spans is not None:
            # Instantaneous by design: the kernel RSTs without the
            # process ever seeing the request (the fail-fast mechanism).
            spans.end(
                spans.start(
                    req.req_id,
                    "http.refuse",
                    self.engine.now,
                    node=self.node.node_id,
                ),
                self.engine.now,
                "refused",
            )
        self.nic.send(
            Frame(
                src=self.node.node_id,
                dst=req.client_id,
                size=64,
                kind="http-reject",
                payload=req.req_id,
                trace_id=req.req_id,
            )
        )

    def send_response(self, req: HttpRequest, nbytes: int) -> None:
        """Ship the file body back to the client."""
        spans = self.engine.spans
        if spans is not None:
            # Close before the NIC submit so the response's fabric
            # transit is a sibling of the serve span, not a child —
            # the critical path splits server time from wire time.
            spans.end_key(("serve", req.req_id), self.engine.now)
        self.nic.send(
            Frame(
                src=self.node.node_id,
                dst=req.client_id,
                size=nbytes + HTTP_RESPONSE_OVERHEAD_BYTES,
                kind="http-resp",
                payload=req.req_id,
                trace_id=req.req_id,
            )
        )
