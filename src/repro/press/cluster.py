"""Cluster assembly: nodes, transports, servers, clients, injector.

:class:`PressCluster` is the top-level harness object — the equivalent of
the paper's testbed.  It wires a PRESS version onto four simulated nodes
behind a cLAN switch, attaches client machines driving the synthetic
trace, and exposes the fault injector plus the operator actions (reset)
that phase-1 experiments need.

:class:`ExperimentScale` trades wall-clock cost for fidelity: CPU costs
are multiplied by ``cpu_factor`` and the offered load divided by it, so a
``cpu_factor=10`` run simulates a cluster with exactly the same *time*
behaviour (detection latencies, timeouts, stage durations) at one tenth
the event rate.  Reported throughputs are rescaled by ``report_factor``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..faults.injector import Mendosus
from ..net.fabric import Fabric
from ..obs.bus import EventBus
from ..obs.metrics import MetricsRegistry
from ..osim.node import DEFAULT_DISK_ACCESS_TIME, Node
from ..sim.engine import Engine
from ..sim.lp import ShardedEngine, partition_nodes
from ..sim.monitor import Annotations, ThroughputMonitor
from ..sim.rng import RngRegistry
from ..transports.base import Transport
from ..transports.tcp import TcpTransport
from ..transports.via import ViaTransport
from ..workload.client import Workload
from ..workload.trace import FileSet
from .analysis import CapacityEstimate, estimate_capacity
from .config import PressConfig
from .server import PressServer


@dataclass(frozen=True)
class ExperimentScale:
    """Fidelity/wall-clock knob.

    ``cpu_factor`` divides the request rate (by multiplying every CPU
    cost) **and** divides every byte quantity — file sizes, socket
    buffers, TCP segments, VIA rings and credits.  Because both the
    producer rates (bytes/s) and the reservoirs (bytes) shrink together,
    every *time* constant of the system — how long until a stalled peer's
    buffers fill and block the main loop, how long until VIA credits
    exhaust, retransmission backoff, heartbeat detection, client
    timeouts — matches the full-scale system.  Only the event rate (and
    wall-clock cost) drops.

    Measured throughputs multiply by ``report_factor`` for comparison
    with the paper's numbers.
    """

    cpu_factor: float = 10.0

    @property
    def report_factor(self) -> float:
        """Multiply measured rates by this to compare with the paper."""
        return self.cpu_factor

    def bytes_(self, nbytes: int, floor: int = 16) -> int:
        """Scale a *message/file size* down by the factor, with a floor."""
        return max(floor, int(nbytes / self.cpu_factor))

    def reservoir(self, nbytes: int, floor: int) -> int:
        """Scale a *buffer* down by the factor **squared**, with a floor.

        Byte rates shrink by factor² (request rate × message size both
        shrink by the factor), so reservoirs must too — otherwise
        buffer-fill times (the onset of the paper's stalls) would stretch
        with the scale.  The floor keeps a buffer able to hold a few
        whole messages.
        """
        return max(floor, int(nbytes / (self.cpu_factor * self.cpu_factor)))

    def count(self, n: int, floor: int = 4) -> int:
        """Scale a discrete credit/slot count down, with a floor."""
        return max(floor, int(n / self.cpu_factor))

    def file_bytes(self) -> int:
        from ..workload.trace import DEFAULT_FILE_BYTES

        return self.bytes_(DEFAULT_FILE_BYTES, floor=32)

    def tcp_params(self, base: "TcpParams" = None) -> "TcpParams":
        from ..transports.tcp.params import DEFAULT_TCP_PARAMS, TcpParams

        base = base or DEFAULT_TCP_PARAMS
        # A socket buffer must hold a couple of framed file messages.
        buf_floor = int(2.5 * (self.file_bytes() + base.header_size))
        return dataclasses.replace(
            base,
            segment_size=self.bytes_(base.segment_size, floor=64),
            sndbuf_bytes=self.reservoir(base.sndbuf_bytes, floor=buf_floor),
            rcvbuf_bytes=self.reservoir(base.rcvbuf_bytes, floor=buf_floor),
            window_bytes=self.reservoir(base.window_bytes, floor=buf_floor),
        )

    def via_params(self, base: "ViaParams" = None) -> "ViaParams":
        from ..transports.via.params import DEFAULT_VIA_PARAMS, ViaParams

        base = base or DEFAULT_VIA_PARAMS
        return dataclasses.replace(
            base,
            credits=self.count(base.credits, floor=4),
            buffer_bytes=self.bytes_(base.buffer_bytes, floor=self.file_bytes() + 64),
            send_ring_bytes=self.reservoir(base.send_ring_bytes, floor=512),
            app_queue_limit=self.count(base.app_queue_limit, floor=8),
        )

    def fileset(self) -> "FileSet":
        """Scaled file population.

        The *count* of files shrinks with the factor so cache-warming
        time (entries to fetch ÷ fetch rate) matches full scale; sizes
        shrink with the factor as everywhere else; the Zipf skew and the
        working-set:cache ratio are preserved exactly.
        """
        from ..workload.trace import DEFAULT_N_FILES, FileSet

        return FileSet(
            n_files=max(64, int(DEFAULT_N_FILES / self.cpu_factor)),
            file_bytes=self.file_bytes(),
        )


#: Paper-exact cost magnitudes; heavy (use for final calibration runs).
FULL_SCALE = ExperimentScale(cpu_factor=1.0)
#: Default for experiments: ~10x cheaper, identical time behaviour.
STANDARD_SCALE = ExperimentScale(cpu_factor=10.0)
#: For benchmarks: ~50x cheaper.
FAST_SCALE = ExperimentScale(cpu_factor=50.0)
#: For unit/integration tests.
SMOKE_SCALE = ExperimentScale(cpu_factor=200.0)


class PressCluster:
    """A PRESS deployment plus its workload and fault injector."""

    def __init__(
        self,
        config: PressConfig,
        n_nodes: int = 4,
        scale: ExperimentScale = STANDARD_SCALE,
        seed: int = 0,
        fileset: Optional[FileSet] = None,
        utilization: float = 0.7,
        bucket_width: float = 1.0,
        n_clients: int = 2,
        restart_delay: float = 5.0,
        reboot_time: float = 60.0,
        tcp_params=None,
        via_params=None,
        fastpath: bool = True,
        shards: int = 1,
        lp_backend: str = "serial",
    ):
        self.config_base = config
        self.scale = scale
        self.config = config.scaled(scale.cpu_factor)
        # LP sharding (repro.sim.lp): a performance knob that must be
        # invisible in every observable output.  More shards than nodes
        # would leave empty queues in every scheduling round, so cap.
        self.shards = max(1, min(int(shards), n_nodes))
        # Execution backend (repro.sim.lpexec): same invisibility
        # contract.  A parallel backend needs the sharded engine even at
        # one shard, so the worker protocol has a queue to mirror.
        self.lp_backend = lp_backend
        if self.shards > 1 or lp_backend != "serial":
            self.engine = ShardedEngine(
                shards=self.shards, backend=lp_backend
            )
        else:
            self.engine = Engine()
        # Attach the observability substrate before any component is
        # built, so construction-time counter registration and the
        # Annotations bus routing see it.
        self.bus = EventBus(self.engine)
        self.metrics = MetricsRegistry()
        self.engine.bus = self.bus
        self.engine.metrics = self.metrics
        self.rng = RngRegistry(seed)
        self.fabric = Fabric(self.engine, fastpath=fastpath)
        self.fileset = fileset if fileset is not None else scale.fileset()
        self.annotations = Annotations(self.engine, bus=self.bus)
        self.monitor = ThroughputMonitor(self.engine, bucket_width=bucket_width)
        self.node_ids = [f"node{i}" for i in range(n_nodes)]
        if self.shards > 1:
            # The partition must be recorded before any NIC is attached:
            # Fabric.attach captures each node's LP on its link so frame
            # deliveries can be pinned to the receiver's queue.
            for name, lp in partition_nodes(self.node_ids, self.shards).items():
                self.engine.assign_shard(name, lp)
            for i in range(n_clients):
                self.engine.assign_shard(f"client{i}", i % self.shards)
        self.utilization = utilization
        self._tcp_params = scale.tcp_params(tcp_params)
        self._via_params = scale.via_params(via_params)

        self.capacity: CapacityEstimate = estimate_capacity(
            self.config, self.fileset, n_nodes
        )

        self.nodes: Dict[str, Node] = {}
        self.transports: Dict[str, Transport] = {}
        self.servers: Dict[str, PressServer] = {}
        sharded = self.shards > 1
        for node_id in self.node_ids:
            # Build each node under its own LP affinity so any timer the
            # node/transport/server creates at construction time lands on
            # the node's queue.
            pinned = (
                self.engine.pin(self.engine.shard_of(node_id))
                if sharded
                else None
            )
            nic = self.fabric.attach(node_id)
            node = Node(
                self.engine,
                node_id,
                nic,
                restart_delay=restart_delay,
                reboot_time=reboot_time,
                # Disk service time scales with CPU costs so that disk
                # *utilization* (misses/s x access time) matches the
                # full-scale system — a splintered singleton must hit its
                # disk bound at every scale.
                disk_access_time=DEFAULT_DISK_ACCESS_TIME * scale.cpu_factor,
            )
            self.nodes[node_id] = node
            self.transports[node_id] = self._make_transport(node)
            self.servers[node_id] = PressServer(
                engine=self.engine,
                node=node,
                transport=self.transports[node_id],
                config=self.config,
                fileset=self.fileset,
                all_server_ids=self.node_ids,
                annotations=self.annotations,
            )
            if pinned is not None:
                self.engine.pin(pinned)

        self.workload = Workload(
            engine=self.engine,
            fabric=self.fabric,
            server_ids=self.node_ids,
            fileset=self.fileset,
            monitor=self.monitor,
            rng=self.rng.stream("workload"),
            total_rate=self.capacity.offered_rate(utilization),
            n_clients=n_clients,
        )

        self.mendosus = Mendosus(
            engine=self.engine,
            fabric=self.fabric,
            nodes=self.nodes,
            transports=self.transports,
            annotations=self.annotations,
        )
        self._started = False

    # ------------------------------------------------------------------
    # Assembly details
    # ------------------------------------------------------------------
    def _make_transport(self, node: Node) -> Transport:
        if self.config.substrate == "tcp":
            return TcpTransport(
                self.engine,
                node,
                costs=self.config.transport_costs,
                params=self._tcp_params,
            )
        cls = ViaTransport
        if self.config.substrate == "ideal":
            from ..transports.ideal import IdealTransport

            cls = IdealTransport
        return cls(
            self.engine,
            node,
            costs=self.config.transport_costs,
            params=self._via_params,
            remote_writes=self.config.remote_writes,
        )

    # ------------------------------------------------------------------
    # Operation
    # ------------------------------------------------------------------
    def start(self, prewarm: bool = True) -> None:
        """Boot every node and begin the client load.

        ``prewarm`` starts the run in the post-warm-up steady state the
        paper measures in: the most popular files are partitioned across
        the node caches and every directory already knows the placement.
        """
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        sharded = self.shards > 1
        for node_id, node in self.nodes.items():
            # Boot each node on its own LP: the process start chain (and
            # the membership/heartbeat timers it arms) inherit from here.
            pinned = (
                self.engine.pin(self.engine.shard_of(node_id))
                if sharded
                else None
            )
            node.process.start()
            if pinned is not None:
                self.engine.pin(pinned)
        if prewarm:
            self.prewarm()
        self.workload.start()

    def prewarm(self) -> None:
        """Load caches + directories with the steady-state placement."""
        size = self.fileset.file_bytes
        per_node = max(1, int(0.95 * self.config.cache_bytes / size))
        n = len(self.node_ids)
        total = min(self.fileset.n_files, per_node * n)
        # Interleave by popularity rank so each node holds a slice of
        # every popularity band (what cooperative LRU converges to).
        assignment: Dict[str, List[str]] = {nid: [] for nid in self.node_ids}
        for i in range(total):
            assignment[self.node_ids[i % n]].append(self.fileset.file_name(i))
        placements: List[tuple] = []
        for nid, files in assignment.items():
            loaded = self.servers[nid].cache.preload(files, size)
            placements.append((nid, files[:loaded]))
        for server in self.servers.values():
            for nid, files in placements:
                if nid == server.node_id:
                    continue
                for f in files:
                    server.directory[f] = nid

    def run_until(self, t: float) -> None:
        self.engine.run(until=t)

    def run_for(self, dt: float) -> None:
        self.engine.run(until=self.engine.now + dt)

    # ------------------------------------------------------------------
    # Operator actions
    # ------------------------------------------------------------------
    def membership_views(self) -> Dict[str, frozenset]:
        """Each running server's current view of the membership."""
        views = {}
        for node_id, server in self.servers.items():
            if self.nodes[node_id].process.running and server.membership:
                views[node_id] = frozenset(server.membership.members)
        return views

    def is_partitioned(self) -> bool:
        full = frozenset(self.node_ids)
        views = self.membership_views()
        if len(views) < len(self.node_ids):
            return True  # someone is down/hung
        return any(v != full for v in views.values())

    def operator_reset(self) -> bool:
        """Restart every process outside the largest coherent sub-cluster.

        The paper: "Return to normal operation requires the intervention
        of an administrator to restart all but one of the sub-clusters."
        Returns True when a reset was actually needed.
        """
        full = frozenset(self.node_ids)
        views = self.membership_views()
        if len(views) == len(self.node_ids) and all(
            v == full for v in views.values()
        ):
            return False
        self.annotations.mark("operator-reset", "restarting stray sub-clusters")
        # The largest agreeing group survives; everyone else restarts.
        groups: Dict[frozenset, List[str]] = {}
        for node_id, view in views.items():
            groups.setdefault(view, []).append(node_id)
        keep: List[str] = max(groups.values(), key=len) if groups else []
        for node_id in self.node_ids:
            if node_id in keep:
                continue
            process = self.nodes[node_id].process
            if process.alive:
                process.exit("operator-reset")
            # dead processes restart via their daemon on their own
        return True

    # ------------------------------------------------------------------
    # Snapshot support (see repro.sim.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Deterministic-state digest over the whole cluster.

        Aggregates every Snapshottable component: engine clock/seq, RNG
        stream positions, fabric/link serializer clocks, per-node
        CPU/disk state, transport channel states, and each server's
        cache and membership.  Equal digests before capture and after
        restore certify a faithful checkpoint round trip
        (see :func:`repro.sim.snapshot.state_digest`).
        """
        servers = {}
        for node_id, server in sorted(self.servers.items()):
            servers[node_id] = {
                "cache": (
                    server.cache.snapshot_state()
                    if server.cache is not None
                    else None
                ),
                "membership": (
                    server.membership.snapshot_state()
                    if server.membership is not None
                    else None
                ),
                "local_serves": server.local_serves,
                "remote_serves": server.remote_serves,
            }
        return {
            "config": self.config.name,
            "engine": self.engine.snapshot_state(),
            "rng": self.rng.snapshot_state(),
            "fabric": self.fabric.snapshot_state(),
            "nodes": {
                node_id: node.snapshot_state()
                for node_id, node in sorted(self.nodes.items())
            },
            "transports": {
                node_id: t.snapshot_state()
                for node_id, t in sorted(self.transports.items())
            },
            "servers": servers,
            "started": self._started,
        }

    # ------------------------------------------------------------------
    # Measurement helpers
    # ------------------------------------------------------------------
    def measured_rate(self, start: float, end: float) -> float:
        """Client-observed good throughput, rescaled to paper units."""
        return self.monitor.mean_rate(start, end) * self.scale.report_factor

    def snapshot_serves(self) -> int:
        """Total requests served (responses shipped) across the cluster."""
        return sum(
            s.local_serves + s.remote_serves for s in self.servers.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PressCluster {self.config.name} n={len(self.node_ids)}"
            f" t={self.engine.now:.1f}>"
        )
