"""Analytic capacity estimation for a PRESS configuration.

The experiments need to offer load relative to each version's saturation
point (the paper drove the server to a stable near-peak regime).  Rather
than hunting for the knee empirically in every run, we estimate cluster
capacity from the cost model: per-request expected CPU demand across the
cluster, divided into the aggregate CPU supply.

The estimate deliberately mirrors the simulated request flow:

* every request pays parse + respond on its initial node;
* a fraction ``(n-1)/n`` is forwarded (the designated cacher is uniform
  over members once the directory converges), paying one small message
  pair and one file-data message pair;
* a small steady-state miss rate pays disk+insert+broadcast, negligible
  for capacity once the cooperative cache covers the working set.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..transports.base import Message
from ..workload.trace import FileSet
from .config import PressConfig


@dataclass(frozen=True)
class CapacityEstimate:
    """Cluster capacity breakdown (all values in seconds or req/s)."""

    per_request_cpu: float
    forward_fraction: float
    cluster_capacity: float

    def offered_rate(self, utilization: float) -> float:
        return self.cluster_capacity * utilization


def estimate_capacity(
    config: PressConfig, fileset: FileSet, n_nodes: int
) -> CapacityEstimate:
    """Expected saturation throughput of an ``n_nodes`` cluster."""
    costs = config.transport_costs
    http = config.http
    size = fileset.file_bytes

    fwd_msg = Message("fwd-req", config.forward_msg_bytes)
    data_msg = Message("file-data", size)

    forward_fraction = (n_nodes - 1) / n_nodes if n_nodes > 1 else 0.0
    base = http.parse + http.respond(size)
    forward = (
        costs.send_cost(fwd_msg)
        + costs.recv_cost(fwd_msg)
        + costs.send_cost(data_msg)
        + costs.recv_cost(data_msg)
    )
    per_request = base + forward_fraction * forward
    return CapacityEstimate(
        per_request_cpu=per_request,
        forward_fraction=forward_fraction,
        cluster_capacity=n_nodes / per_request,
    )
