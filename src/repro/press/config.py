"""PRESS version matrix (Table 1) and tunable server parameters.

Five versions are studied.  They share the server logic and differ in the
communication substrate, the fault-detection trigger, and the data-path
copy discipline:

===============  =========  ==========  =============  =========
version          substrate  heartbeats  remote writes  zero copy
===============  =========  ==========  =============  =========
TCP-PRESS        TCP        no          —              no
TCP-PRESS-HB     TCP        yes         —              no
VIA-PRESS-0      VIA        no          no             no
VIA-PRESS-3      VIA        no          yes            no
VIA-PRESS-5      VIA        no          yes            yes
===============  =========  ==========  =============  =========
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..transports.costs import (
    COPY_SECONDS_PER_BYTE,
    TCP_COSTS,
    VIA0_COSTS,
    VIA3_COSTS,
    VIA5_COSTS,
    TransportCosts,
)


@dataclass(frozen=True)
class HttpCosts:
    """CPU costs of the client-facing request path (per request).

    ``parse`` + ``respond_overhead`` are calibrated jointly with the
    transport costs so the 4-node cluster saturates at Table 1's
    published throughputs (see ``transports/costs.py``).
    """

    parse: float = 400e-6  # accept + parse + dispatch decision
    respond_overhead: float = 160e-6  # connection handling + headers
    respond_per_byte: float = COPY_SECONDS_PER_BYTE  # copy into client socket
    cache_insert: float = 20e-6
    directory_update: float = 2e-6

    def respond(self, nbytes: int) -> float:
        return self.respond_overhead + self.respond_per_byte * nbytes


@dataclass(frozen=True)
class PressConfig:
    """Full configuration of one PRESS version."""

    name: str
    substrate: str  # "tcp" | "via"
    use_heartbeats: bool
    remote_writes: bool
    zero_copy: bool
    transport_costs: TransportCosts
    http: HttpCosts = field(default_factory=HttpCosts)

    # cooperative caching
    cache_bytes: int = 128 * 1024 * 1024
    cache_update_msg_bytes: int = 64
    cache_update_batch: int = 16
    cache_update_flush_interval: float = 0.05
    # Caching information sent to a (re)joining peer is streamed in
    # chunks so a transfer fits transport buffering (VIA descriptors,
    # TCP receive windows) — PRESS sends it over the normal channel.
    cache_info_max_bytes: int = 8192
    cache_info_entry_bytes: int = 16
    cache_info_base_bytes: int = 256

    # membership / recovery
    heartbeat_interval: float = 5.0
    heartbeat_threshold: int = 3  # missed beats before declaring a fault
    join_retry_interval: float = 2.0
    join_max_retries: int = 5
    forward_msg_bytes: int = 256
    # Kernel listen backlog: connections beyond this queue depth are
    # refused, bounding how much doomed work piles up behind a stall.
    accept_backlog: int = 128
    # EXTENSION (off = faithful PRESS): automatic partition re-merge.
    # Stock PRESS never merges partitions (§5.2's surprise); with this
    # on, nodes probe excluded-but-configured peers and the losing side
    # of a split restarts itself into the surviving partition.
    auto_remerge: bool = False
    remerge_probe_interval: float = 30.0

    def scaled(self, cpu_factor: float) -> "PressConfig":
        """Scale CPU costs up and byte quantities down by ``cpu_factor``.

        See ``ExperimentScale``: rates and reservoirs shrink together so
        all time constants (stall onset, detection, warm-up) match the
        full-scale system.
        """
        if cpu_factor == 1.0:
            return self
        http = replace(
            self.http,
            parse=self.http.parse * cpu_factor,
            respond_overhead=self.http.respond_overhead * cpu_factor,
            # Per-byte costs scale by factor^2: sizes shrink by the same
            # factor, keeping data-touching work in constant proportion.
            respond_per_byte=self.http.respond_per_byte * cpu_factor * cpu_factor,
            cache_insert=self.http.cache_insert * cpu_factor,
            directory_update=self.http.directory_update * cpu_factor,
        )

        def b(nbytes: int, floor: int = 8) -> int:
            return max(floor, int(nbytes / cpu_factor))

        return replace(
            self,
            transport_costs=self.transport_costs.scaled(cpu_factor),
            http=http,
            # The cache is a reservoir: it scales by factor^2 (file sizes
            # and file counts both shrink by the factor), keeping the
            # cache:working-set ratio and warm-up time scale-invariant.
            cache_bytes=max(2048, int(self.cache_bytes / (cpu_factor * cpu_factor))),
            cache_update_msg_bytes=b(self.cache_update_msg_bytes),
            cache_info_max_bytes=b(self.cache_info_max_bytes, floor=128),
            cache_info_entry_bytes=b(self.cache_info_entry_bytes, floor=2),
            cache_info_base_bytes=b(self.cache_info_base_bytes),
            forward_msg_bytes=b(self.forward_msg_bytes),
            accept_backlog=max(8, int(self.accept_backlog / cpu_factor)),
        )


#: VIA-PRESS-5 forwards file data to the client straight out of the
#: communication buffer and serves local hits out of the pinned cache —
#: no per-byte copy on the client-facing response path either.
_ZERO_COPY_HTTP = HttpCosts(respond_per_byte=0.0)

TCP_PRESS = PressConfig(
    name="TCP-PRESS",
    substrate="tcp",
    use_heartbeats=False,
    remote_writes=False,
    zero_copy=False,
    transport_costs=TCP_COSTS,
)

TCP_PRESS_HB = PressConfig(
    name="TCP-PRESS-HB",
    substrate="tcp",
    use_heartbeats=True,
    remote_writes=False,
    zero_copy=False,
    transport_costs=TCP_COSTS,
)

VIA_PRESS_0 = PressConfig(
    name="VIA-PRESS-0",
    substrate="via",
    use_heartbeats=False,
    remote_writes=False,
    zero_copy=False,
    transport_costs=VIA0_COSTS,
)

VIA_PRESS_3 = PressConfig(
    name="VIA-PRESS-3",
    substrate="via",
    use_heartbeats=False,
    remote_writes=True,
    zero_copy=False,
    transport_costs=VIA3_COSTS,
)

VIA_PRESS_5 = PressConfig(
    name="VIA-PRESS-5",
    substrate="via",
    use_heartbeats=False,
    remote_writes=True,
    zero_copy=True,
    transport_costs=VIA5_COSTS,
    http=_ZERO_COPY_HTTP,
)

#: EXTENSION (not in the paper): PRESS over the §7 "ideal" layer —
#: VIA-PRESS-5's data path plus synchronous descriptor validation, so
#: bad-parameter faults are confined to the offending call.
IDEAL_PRESS = PressConfig(
    name="IDEAL-PRESS",
    substrate="ideal",
    use_heartbeats=False,
    remote_writes=True,
    zero_copy=True,
    transport_costs=VIA5_COSTS,
    http=_ZERO_COPY_HTTP,
)

ALL_VERSIONS: Dict[str, PressConfig] = {
    cfg.name: cfg
    for cfg in (TCP_PRESS, TCP_PRESS_HB, VIA_PRESS_0, VIA_PRESS_3, VIA_PRESS_5)
}

#: The paper's five versions plus the §7 extension.
ALL_VERSIONS_EXTENDED: Dict[str, PressConfig] = {
    **ALL_VERSIONS,
    IDEAL_PRESS.name: IDEAL_PRESS,
}

#: Near-peak throughputs the paper reports for the 4-node testbed
#: (Table 1), used by the Table-1 experiment to compare shapes.
PAPER_TABLE1_THROUGHPUT = {
    "TCP-PRESS": 4965.0,
    "TCP-PRESS-HB": 4965.0,
    "VIA-PRESS-0": 6031.0,
    "VIA-PRESS-3": 6221.0,
    "VIA-PRESS-5": 7058.0,
}
