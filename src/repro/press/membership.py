"""Cluster membership: directed ring, heartbeats, exclusion, rejoin.

Implements the paper's reconfiguration protocols:

* Nodes are organized in a **directed ring** (sorted by node id); each
  node heartbeats only its successor (TCP-PRESS-HB), and a node that
  misses ``heartbeat_threshold`` consecutive beats from its predecessor
  declares the predecessor failed.
* All versions also exclude a peer whenever the transport reports a
  **broken connection** — the only trigger for TCP-PRESS and the VIA
  versions.
* Exclusions are broadcast so the surviving members agree on the new
  ring.
* **Rejoin**: a restarting node broadcasts a join request; the *lowest-id
  active member* answers with the current configuration; the joiner then
  reestablishes connections to every member.  Crucially, join requests
  from a node the cluster still believes to be a member are
  **disregarded** — the timing hole that leaves a hard-rebooted TCP-PRESS
  node stranded (Figure 3).
* PRESS assumes nodes fail but links do not, so partitions are **never
  merged** automatically; that requires an operator reset (Figure 2's
  surprise).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from ..obs.events import (
    MEMBERSHIP_EXCLUDE,
    MEMBERSHIP_INCLUDE,
    MEMBERSHIP_JOINED,
    MEMBERSHIP_JOIN_GAVE_UP,
    MEMBERSHIP_REMERGE,
)
from ..obs.metrics import bound_counter
from ..osim.process import SimProcess
from ..sim.engine import Engine
from ..transports.base import Message

#: Datagram payload sizes (bytes) for the control protocol.
_HB_BYTES = 32
_JOIN_BYTES = 48
_CTRL_BYTES = 64


class Membership:
    """One node's view of the cluster, plus the protocols that update it."""

    def __init__(
        self,
        engine: Engine,
        self_id: str,
        all_ids: List[str],
        process: SimProcess,
        send_datagram: Callable[[str, Message], None],
        use_heartbeats: bool,
        heartbeat_interval: float,
        heartbeat_threshold: int,
        join_retry_interval: float,
        join_max_retries: int,
        on_exclude: Callable[[str, str], None],
        on_include: Callable[[str], None],
        on_joined: Callable[[List[str]], None],
        on_join_gave_up: Callable[[], None],
        connect_to: Callable[[str, Callable[[bool], None]], None],
        annotate: Callable[[str, str], None],
        auto_remerge: bool = False,
        remerge_probe_interval: float = 30.0,
    ):
        self.engine = engine
        self.self_id = self_id
        self.all_ids = sorted(all_ids)
        self.process = process
        self.send_datagram = send_datagram
        self.use_heartbeats = use_heartbeats
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_threshold = heartbeat_threshold
        self.join_retry_interval = join_retry_interval
        self.join_max_retries = join_max_retries
        self.on_exclude = on_exclude
        self.on_include = on_include
        self.on_joined = on_joined
        self.on_join_gave_up = on_join_gave_up
        self.connect_to = connect_to
        self.annotate = annotate

        self.auto_remerge = auto_remerge
        self.remerge_probe_interval = remerge_probe_interval
        self.members: List[str] = []
        self._last_heard: Dict[str, float] = {}
        self._ring_changed_at = 0.0
        self._incarnation = 0
        self._joining = False
        self._join_connects_left = 0
        self.joined_cluster = False
        self._exclusions = bound_counter(
            engine, "press.membership.exclusions", node=self_id
        )
        self._remerges = bound_counter(
            engine, "press.membership.remerges", node=self_id
        )

    @property
    def exclusions(self) -> int:
        return self._exclusions.value

    @property
    def remerges(self) -> int:
        return self._remerges.value

    def _publish(self, name: str, **fields) -> None:
        bus = self.engine.bus
        if bus is not None:
            bus.publish(name, node=self.self_id, **fields)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bootstrap(self) -> None:
        """Cold start: every configured node is a member."""
        self._incarnation = self.process.incarnation
        self.members = list(self.all_ids)
        self.joined_cluster = True
        self._reset_heartbeat_baselines()
        self._start_heartbeats()
        self._start_remerge_probes()

    def start_join(self) -> None:
        """Restart: become a singleton and run the join protocol."""
        self._incarnation = self.process.incarnation
        self.members = [self.self_id]
        self.joined_cluster = False
        self._joining = True
        self._start_heartbeats()
        self._start_remerge_probes()
        self._join_attempt(0)

    def _fresh(self) -> bool:
        """Guard for timers that may outlive the process incarnation."""
        return (
            self.process.alive
            and self.process.incarnation == self._incarnation
        )

    # ------------------------------------------------------------------
    # Ring geometry
    # ------------------------------------------------------------------
    def ring(self) -> List[str]:
        return sorted(self.members)

    def successor(self) -> Optional[str]:
        ring = self.ring()
        if len(ring) < 2:
            return None
        i = ring.index(self.self_id)
        return ring[(i + 1) % len(ring)]

    def predecessor(self) -> Optional[str]:
        ring = self.ring()
        if len(ring) < 2:
            return None
        i = ring.index(self.self_id)
        return ring[i - 1]

    def peers(self) -> List[str]:
        return [m for m in self.members if m != self.self_id]

    def is_member(self, node_id: str) -> bool:
        return node_id in self.members

    @property
    def singleton(self) -> bool:
        return len(self.members) <= 1

    # ------------------------------------------------------------------
    # Exclusion
    # ------------------------------------------------------------------
    def exclude(self, peer: str, reason: str, broadcast: bool = True) -> None:
        """Remove ``peer`` from the local view and tell the others."""
        if peer == self.self_id or peer not in self.members:
            return
        self.members.remove(peer)
        self._exclusions.inc()
        self._last_heard.pop(peer, None)
        self._reset_heartbeat_baselines()
        self._publish(MEMBERSHIP_EXCLUDE, peer=peer, reason=reason)
        self.annotate("reconfigured", f"{self.self_id} excluded {peer} ({reason})")
        self.on_exclude(peer, reason)
        if broadcast:
            for member in self.peers():
                self.send_datagram(
                    member,
                    Message(
                        "member-exclude", _CTRL_BYTES, payload=(peer, reason)
                    ),
                )

    def include(self, peer: str, broadcast: bool = False) -> None:
        """Add ``peer`` to the view.

        The member that *accepts* a rejoiner's connection broadcasts the
        inclusion so members that were themselves rejoining around the
        same time (e.g. after a remote-write fault killed two processes)
        still converge on one view.
        """
        if peer == self.self_id or peer in self.members:
            return
        self.members.append(peer)
        self._publish(MEMBERSHIP_INCLUDE, peer=peer)
        self._reset_heartbeat_baselines()
        self.on_include(peer)
        if broadcast:
            for member in self.peers():
                if member != peer:
                    self.send_datagram(
                        member,
                        Message("member-include", _CTRL_BYTES, payload=peer),
                    )

    # ------------------------------------------------------------------
    # Heartbeats (TCP-PRESS-HB)
    # ------------------------------------------------------------------
    def _start_heartbeats(self) -> None:
        if not self.use_heartbeats:
            return
        incarnation = self._incarnation
        self.engine.call_after(
            self.heartbeat_interval, self._heartbeat_tick, incarnation
        )

    def _reset_heartbeat_baselines(self) -> None:
        # After any ring change the new predecessor gets a fresh grace
        # period; otherwise a reconfiguration would cascade instantly.
        self._ring_changed_at = self.engine.now

    def _heartbeat_tick(self, incarnation: int) -> None:
        if incarnation != self._incarnation or not self._fresh():
            return
        # The heartbeat send/receive runs on PRESS's helper threads, so it
        # proceeds even when the main loop is blocked — but not when the
        # process is stopped.
        if self.process.running:
            succ = self.successor()
            if succ is not None:
                self.send_datagram(
                    succ, Message("heartbeat", _HB_BYTES, payload=self.self_id)
                )
            self._check_predecessor()
        self.engine.call_after(
            self.heartbeat_interval, self._heartbeat_tick, incarnation
        )

    def _check_predecessor(self) -> None:
        pred = self.predecessor()
        if pred is None:
            return
        window = self.heartbeat_threshold * self.heartbeat_interval
        baseline = max(self._last_heard.get(pred, 0.0), self._ring_changed_at)
        if self.engine.now - baseline > window:
            self.exclude(pred, "missed-heartbeats")

    # ------------------------------------------------------------------
    # EXTENSION: automatic partition re-merge (§9's "rigorous membership
    # algorithm" future work).  Stock PRESS never merges partitions; with
    # ``auto_remerge`` each node periodically probes configured nodes it
    # has excluded.  A probed node replies with its partition; if the
    # prober's partition should yield — it is smaller, or on a tie its
    # minimum id is larger — the prober restarts itself, and the normal
    # join protocol folds it into the surviving partition.  Deciding by
    # (size, min-id) makes exactly one side of any split yield.
    # ------------------------------------------------------------------
    def _start_remerge_probes(self) -> None:
        if not self.auto_remerge:
            return
        self.engine.call_after(
            self.remerge_probe_interval, self._remerge_tick, self._incarnation
        )

    def _remerge_tick(self, incarnation: int) -> None:
        if incarnation != self._incarnation or not self._fresh():
            return
        if self.process.running and not self._joining:
            for node in self.all_ids:
                if node != self.self_id and node not in self.members:
                    self.send_datagram(
                        node,
                        Message(
                            "remerge-probe", _CTRL_BYTES, payload=self.self_id
                        ),
                    )
        self.engine.call_after(
            self.remerge_probe_interval, self._remerge_tick, incarnation
        )

    def _handle_remerge_probe(self, prober: str) -> None:
        if prober in self.members or self._joining:
            return
        self.send_datagram(
            prober,
            Message(
                "remerge-info", _CTRL_BYTES, payload=list(self.members)
            ),
        )

    def _handle_remerge_info(self, peer_members: List[str]) -> None:
        if self._joining or not self.auto_remerge:
            return
        mine, theirs = self.ring(), sorted(peer_members)
        if not theirs or set(theirs) & set(self.members):
            return  # stale information or views already overlap
        yields = len(mine) < len(theirs) or (
            len(mine) == len(theirs) and mine[0] > theirs[0]
        )
        if yields:
            self._remerges.inc()
            self._publish(MEMBERSHIP_REMERGE)
            self.annotate("auto-remerge", f"{self.self_id} yields to merge")
            self.process.exit("auto-remerge")

    # ------------------------------------------------------------------
    # Join protocol
    # ------------------------------------------------------------------
    def _join_attempt(self, attempt: int) -> None:
        if not self._fresh() or not self._joining:
            return
        if attempt >= self.join_max_retries:
            self._joining = False
            self._publish(MEMBERSHIP_JOIN_GAVE_UP)
            self.annotate("join-gave-up", self.self_id)
            self.on_join_gave_up()
            return
        for node in self.all_ids:
            if node != self.self_id:
                self.send_datagram(
                    node, Message("join-request", _JOIN_BYTES, payload=self.self_id)
                )
        self.engine.call_after(
            self.join_retry_interval, self._join_attempt, attempt + 1
        )

    def _handle_join_request(self, joiner: str) -> None:
        if joiner in self.members:
            return  # still believed to be a member: disregarded (the
            # TCP-PRESS hard-reboot timing hole)
        active = self.ring()
        if active and active[0] != self.self_id:
            return  # only the lowest-id active member responds
        self.send_datagram(
            joiner,
            Message("join-response", _CTRL_BYTES, payload=list(self.members)),
        )

    def _handle_join_response(self, members: List[str]) -> None:
        if not self._joining or not self._fresh():
            return
        self._joining = False
        targets = [m for m in members if m != self.self_id]
        if not targets:
            self.joined_cluster = True
            self.on_joined(list(self.members))
            return
        # A membership object lives for exactly one process incarnation
        # (the server rebuilds it on start) and a second join response is
        # gated on ``_joining``, so one pending-connect counter suffices;
        # instance state instead of a closure keeps the pending connect
        # callbacks picklable for simulation snapshots.
        self._join_connects_left = len(targets)
        for peer in targets:
            self.connect_to(peer, _JoinConnectCb(self, peer))

    def _join_connected(self, peer: str, ok: bool) -> None:
        if not self._fresh():
            return
        if ok:
            self.include(peer)
        self._join_connects_left -= 1
        if self._join_connects_left == 0:
            self.joined_cluster = True
            self._publish(MEMBERSHIP_JOINED, members=sorted(self.members))
            self.annotate("rejoined", self.self_id)
            self.on_joined(list(self.members))

    # ------------------------------------------------------------------
    # Datagram dispatch (wired to transport.on_datagram by the server)
    # ------------------------------------------------------------------
    def handle_datagram(self, peer: str, msg: Message) -> None:
        if msg.msg_type == "join-request":
            self._handle_join_request(msg.payload)
            return
        if msg.msg_type == "join-response":
            self._handle_join_response(msg.payload)
            return
        if msg.msg_type == "remerge-probe":
            self._handle_remerge_probe(msg.payload)
            return
        if msg.msg_type == "remerge-info":
            self._handle_remerge_info(msg.payload)
            return
        # Heartbeats and membership updates are only meaningful from
        # nodes we consider members — a node that was excluded while it
        # was hung must not fragment the healthy group when it resumes
        # and flushes its stale view.
        if peer not in self.members:
            return
        if msg.msg_type == "heartbeat":
            self._last_heard[peer] = self.engine.now
        elif msg.msg_type == "member-exclude":
            excluded, reason = msg.payload
            if excluded != self.self_id:
                self.exclude(excluded, f"broadcast:{reason}", broadcast=False)
        elif msg.msg_type == "member-include":
            included = msg.payload
            if included != self.self_id and included not in self.members:
                # Connect first; our side includes on connect success and
                # the other side includes on accept.
                self.connect_to(included, _IncludeConnectCb(self, included))

    # ------------------------------------------------------------------
    # Snapshot support (see repro.sim.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """Deterministic-state digest input (see Snapshottable)."""
        return {
            "members": sorted(self.members),
            "incarnation": self._incarnation,
            "joining": self._joining,
            "joined": self.joined_cluster,
            "last_heard": {
                peer: t for peer, t in sorted(self._last_heard.items())
            },
            "exclusions": self._exclusions.value,
            "remerges": self._remerges.value,
        }


class _JoinConnectCb:
    """Pending join-protocol connect continuation (picklable, no closure)."""

    __slots__ = ("membership", "peer")

    def __init__(self, membership: Membership, peer: str):
        self.membership = membership
        self.peer = peer

    def __call__(self, ok: bool) -> None:
        self.membership._join_connected(self.peer, ok)


class _IncludeConnectCb:
    """Pending include-broadcast connect continuation."""

    __slots__ = ("membership", "peer")

    def __init__(self, membership: Membership, peer: str):
        self.membership = membership
        self.peer = peer

    def __call__(self, ok: bool) -> None:
        if ok:
            self.membership.include(self.peer)
