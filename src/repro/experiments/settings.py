"""Shared experiment settings and per-fault scenario parameters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.extract import DEFAULT_ENVIRONMENT, Environment
from ..core.faultload import HOUR, MINUTE
from ..faults.spec import FaultKind
from ..press.cluster import ExperimentScale, SMOKE_SCALE


@dataclass(frozen=True)
class Phase1Settings:
    """How a single-fault experiment is laid out in time.

    The defaults compress the paper's multi-minute observation windows
    while keeping every causally-relevant timing (heartbeat threshold,
    reboot time, client timeouts) at its real value.
    """

    scale: ExperimentScale = SMOKE_SCALE
    seed: int = 7
    # The paper drives the server to a stable near-peak regime; headroom
    # would mask the degradation of splintered configurations.
    utilization: float = 0.9
    warm: float = 20.0  # settle before measuring Tn
    fault_at: float = 60.0
    fault_duration: float = 60.0  # for faults with an active period
    post_recovery: float = 80.0  # watch stages D/E develop
    tail: float = 60.0  # after the operator reset (when one happens)
    environment: Environment = DEFAULT_ENVIRONMENT
    # Phase-1 runs are replicated with distinct seeds and the fitted
    # stage profiles averaged: single-run bucket noise in the deep-stall
    # stages otherwise swings the modeled availability (and the log-scale
    # performability metric) noticeably.
    replications: int = 3
    # Recovery timings of the simulated operations environment.  The
    # compressed defaults keep phase-1 timelines short; the validation
    # experiments raise them to the Table-3 MTTR (§2.1: a fault must last
    # long enough for every stage to be observed).
    restart_delay: float = 5.0
    reboot_time: float = 60.0
    # Event-reduction fast path in the network fabric.  Results are
    # bit-identical either way (enforced by the equivalence tests);
    # ``False`` is the reference mode (`--no-fastpath`) that schedules
    # every per-hop event explicitly.
    fastpath: bool = True

    def cache_key(self) -> tuple:
        return (
            self.scale.cpu_factor,
            self.seed,
            self.utilization,
            self.warm,
            self.fault_at,
            self.fault_duration,
            self.post_recovery,
            self.tail,
            self.replications,
            self.environment,
            self.restart_delay,
            self.reboot_time,
            # Results are mode-independent by construction, but a
            # `--no-fastpath` verification run must actually *run*, not
            # hit a cache entry produced by the mode it is checking.
            self.fastpath,
        )


DEFAULT_SETTINGS = Phase1Settings()

#: Default injection target: a middle node (not the lowest-id member,
#: which owns the join-response duty).
DEFAULT_TARGET = "node2"

#: Which faults have an extended active period (vs. instantaneous).
DURATION_FAULTS = {
    FaultKind.LINK_DOWN,
    FaultKind.SWITCH_DOWN,
    FaultKind.NODE_FREEZE,
    FaultKind.KERNEL_MEMORY,
    FaultKind.MEMORY_PINNING,
    FaultKind.APP_HANG,
}

#: Component repair times used when fitting stage C (Table 3 MTTRs).
FAULT_MTTR: Dict[FaultKind, float] = {
    FaultKind.LINK_DOWN: 3 * MINUTE,
    FaultKind.SWITCH_DOWN: HOUR,
    FaultKind.NODE_CRASH: 3 * MINUTE,
    FaultKind.NODE_FREEZE: 3 * MINUTE,
    FaultKind.KERNEL_MEMORY: 3 * MINUTE,
    FaultKind.MEMORY_PINNING: 3 * MINUTE,
    FaultKind.APP_CRASH: 3 * MINUTE,
    FaultKind.APP_HANG: 3 * MINUTE,
    FaultKind.BAD_PARAM_NULL: 3 * MINUTE,
    FaultKind.BAD_PARAM_OFFSET: 3 * MINUTE,
    FaultKind.BAD_PARAM_SIZE: 3 * MINUTE,
}

#: Every fault injected in the phase-1 campaign.
CAMPAIGN_FAULTS = (
    FaultKind.LINK_DOWN,
    FaultKind.SWITCH_DOWN,
    FaultKind.NODE_CRASH,
    FaultKind.NODE_FREEZE,
    FaultKind.KERNEL_MEMORY,
    FaultKind.MEMORY_PINNING,
    FaultKind.APP_CRASH,
    FaultKind.APP_HANG,
    FaultKind.BAD_PARAM_NULL,
    FaultKind.BAD_PARAM_OFFSET,
    FaultKind.BAD_PARAM_SIZE,
)
