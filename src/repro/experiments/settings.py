"""Shared experiment settings and per-fault scenario parameters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.extract import DEFAULT_ENVIRONMENT, Environment
from ..core.faultload import HOUR, MINUTE
from ..faults.spec import FaultKind
from ..press.cluster import ExperimentScale, SMOKE_SCALE

#: Stopping rules a campaign can replicate under (see
#: :mod:`repro.experiments.repeaters` for the arithmetic).
REPETITION_RULES = ("fixed", "rse", "ci")


@dataclass(frozen=True)
class RepetitionPolicy:
    """How many replications each campaign stream runs, and why it stops.

    ``rule="fixed"`` reproduces the legacy behaviour: exactly
    ``max_reps`` replications per (version, fault) stream.  The adaptive
    rules (``"rse"``, ``"ci"``) run at least ``min_reps``, then extend a
    stream one replication at a time until its metric is statistically
    stable — RSE of the mean, or Student-t CI half width relative to the
    mean, at or below the rule's target — or ``max_reps`` is hit.

    ``rep_budget`` (optional) caps the campaign-wide number of *extra*
    replications beyond ``min_reps``; the allocator spends it on the
    highest-variance streams first.
    """

    rule: str = "fixed"
    min_reps: int = 3
    max_reps: int = 3
    #: RSE-rule target: stop at ``(s / sqrt(n)) / |mean| <= rse_target``.
    rse_target: float = 0.05
    #: CI-rule target: stop at ``half_width / |mean| <= ci_rel_half_width``.
    ci_rel_half_width: float = 0.02
    #: Confidence level of the Student-t interval (both rules report it).
    confidence: float = 0.95
    #: Global extra-rep budget (None = unbounded).
    rep_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rule not in REPETITION_RULES:
            raise ValueError(
                f"repetition rule must be one of {REPETITION_RULES}, "
                f"got {self.rule!r}"
            )
        if not isinstance(self.min_reps, int) or self.min_reps < 1:
            raise ValueError(
                f"min_reps must be a positive integer (got "
                f"{self.min_reps!r}); a stream needs at least one "
                "replication"
            )
        if not isinstance(self.max_reps, int) or self.max_reps < self.min_reps:
            raise ValueError(
                f"max_reps must be an integer >= min_reps "
                f"({self.min_reps}), got {self.max_reps!r}"
            )
        if self.rse_target <= 0.0:
            raise ValueError(
                f"rse_target must be positive, got {self.rse_target}"
            )
        if self.ci_rel_half_width <= 0.0:
            raise ValueError(
                "ci_rel_half_width must be positive, got "
                f"{self.ci_rel_half_width}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.rep_budget is not None and (
            not isinstance(self.rep_budget, int) or self.rep_budget < 0
        ):
            raise ValueError(
                f"rep_budget must be a non-negative integer or None, "
                f"got {self.rep_budget!r}"
            )

    @property
    def adaptive(self) -> bool:
        return self.rule != "fixed"

    def key(self) -> tuple:
        """Stable identity tuple (store summary keys, cache digests)."""
        return (
            self.rule,
            self.min_reps,
            self.max_reps,
            self.rse_target,
            self.ci_rel_half_width,
            self.confidence,
            self.rep_budget,
        )


@dataclass(frozen=True)
class Phase1Settings:
    """How a single-fault experiment is laid out in time.

    The defaults compress the paper's multi-minute observation windows
    while keeping every causally-relevant timing (heartbeat threshold,
    reboot time, client timeouts) at its real value.
    """

    scale: ExperimentScale = SMOKE_SCALE
    seed: int = 7
    # The paper drives the server to a stable near-peak regime; headroom
    # would mask the degradation of splintered configurations.
    utilization: float = 0.9
    warm: float = 20.0  # settle before measuring Tn
    fault_at: float = 60.0
    fault_duration: float = 60.0  # for faults with an active period
    post_recovery: float = 80.0  # watch stages D/E develop
    tail: float = 60.0  # after the operator reset (when one happens)
    environment: Environment = DEFAULT_ENVIRONMENT
    # Phase-1 runs are replicated with distinct seeds and the fitted
    # stage profiles averaged: single-run bucket noise in the deep-stall
    # stages otherwise swings the modeled availability (and the log-scale
    # performability metric) noticeably.
    replications: int = 3
    # Recovery timings of the simulated operations environment.  The
    # compressed defaults keep phase-1 timelines short; the validation
    # experiments raise them to the Table-3 MTTR (§2.1: a fault must last
    # long enough for every stage to be observed).
    restart_delay: float = 5.0
    reboot_time: float = 60.0
    # Event-reduction fast path in the network fabric.  Results are
    # bit-identical either way (enforced by the equivalence tests);
    # ``False`` is the reference mode (`--no-fastpath`) that schedules
    # every per-hop event explicitly.
    fastpath: bool = True
    # Cluster size.  The paper's testbed is fixed at 4; scaling studies
    # (ROADMAP item 1) raise this to 16/64.
    n_nodes: int = 4
    # Logical-process sharding of the event engine (repro.sim.lp).
    # Like ``fastpath``, results are bit-identical for every value
    # (enforced by the equivalence tests); >1 partitions the engine into
    # per-node-group queues under conservative synchronization.
    shards: int = 1
    # Execution backend of the sharded engine (repro.sim.lpexec):
    # "serial" (in-process exact merge), "threads", or "processes".
    # Like shards, byte-identical results for every value — and like
    # shards, keyed so a verification run actually runs.
    lp_backend: str = "serial"
    # Replication policy.  ``None`` means "fixed at ``replications``" —
    # the legacy mode; an adaptive :class:`RepetitionPolicy` makes the
    # campaign runner extend each stream until its stopping rule fires.
    repetition: Optional[RepetitionPolicy] = None

    def __post_init__(self) -> None:
        if not isinstance(self.replications, int) or self.replications < 1:
            raise ValueError(
                f"replications must be a positive integer (got "
                f"{self.replications!r}); use replications=1 for a "
                "single run per stream"
            )
        if not isinstance(self.n_nodes, int) or self.n_nodes < 2:
            raise ValueError(
                f"n_nodes must be an integer >= 2 (got {self.n_nodes!r}); "
                "PRESS needs at least one peer to forward to"
            )
        if not isinstance(self.shards, int) or self.shards < 1:
            raise ValueError(
                f"shards must be a positive integer (got {self.shards!r})"
            )
        from ..sim.lpexec import BACKENDS

        if self.lp_backend not in BACKENDS:
            raise ValueError(
                f"lp_backend must be one of {BACKENDS}, "
                f"got {self.lp_backend!r}"
            )

    def repetition_policy(self) -> RepetitionPolicy:
        """The effective policy: ``repetition``, or fixed-``replications``."""
        if self.repetition is not None:
            return self.repetition
        return RepetitionPolicy(
            rule="fixed",
            min_reps=self.replications,
            max_reps=self.replications,
        )

    def sim_key(self) -> tuple:
        """Everything that determines a *single cell's* simulation.

        Grid-layout knobs (``replications``, ``repetition``) are
        deliberately absent: one simulated run does not depend on how
        many siblings it has, so a fixed-10 campaign and an adaptive
        campaign over the same settings share cached cells and warm
        checkpoints — the whole point of adaptive replication is that
        the grid shape may change without invalidating the physics.
        """
        return (
            self.scale.cpu_factor,
            self.seed,
            self.utilization,
            self.warm,
            self.fault_at,
            self.fault_duration,
            self.post_recovery,
            self.tail,
            self.environment,
            self.restart_delay,
            self.reboot_time,
            # Results are mode-independent by construction, but a
            # `--no-fastpath` verification run must actually *run*, not
            # hit a cache entry produced by the mode it is checking.
            self.fastpath,
            self.n_nodes,
            # Same rationale as fastpath: a `--shards N` verification
            # run must not be satisfied from another mode's cache.
            self.shards,
            # And again for `--lp-backend`: byte-identity across
            # backends is checked by running each one for real.
            self.lp_backend,
        )

    def cache_key(self) -> tuple:
        """Full campaign identity: the simulation key plus grid layout."""
        return self.sim_key() + (
            self.replications,
            self.repetition_policy().key(),
        )


DEFAULT_SETTINGS = Phase1Settings()

#: Default injection target: a middle node (not the lowest-id member,
#: which owns the join-response duty).
DEFAULT_TARGET = "node2"

#: Which faults have an extended active period (vs. instantaneous).
DURATION_FAULTS = {
    FaultKind.LINK_DOWN,
    FaultKind.SWITCH_DOWN,
    FaultKind.NODE_FREEZE,
    FaultKind.KERNEL_MEMORY,
    FaultKind.MEMORY_PINNING,
    FaultKind.APP_HANG,
}

#: Component repair times used when fitting stage C (Table 3 MTTRs).
FAULT_MTTR: Dict[FaultKind, float] = {
    FaultKind.LINK_DOWN: 3 * MINUTE,
    FaultKind.SWITCH_DOWN: HOUR,
    FaultKind.NODE_CRASH: 3 * MINUTE,
    FaultKind.NODE_FREEZE: 3 * MINUTE,
    FaultKind.KERNEL_MEMORY: 3 * MINUTE,
    FaultKind.MEMORY_PINNING: 3 * MINUTE,
    FaultKind.APP_CRASH: 3 * MINUTE,
    FaultKind.APP_HANG: 3 * MINUTE,
    FaultKind.BAD_PARAM_NULL: 3 * MINUTE,
    FaultKind.BAD_PARAM_OFFSET: 3 * MINUTE,
    FaultKind.BAD_PARAM_SIZE: 3 * MINUTE,
}

#: Every fault injected in the phase-1 campaign.
CAMPAIGN_FAULTS = (
    FaultKind.LINK_DOWN,
    FaultKind.SWITCH_DOWN,
    FaultKind.NODE_CRASH,
    FaultKind.NODE_FREEZE,
    FaultKind.KERNEL_MEMORY,
    FaultKind.MEMORY_PINNING,
    FaultKind.APP_CRASH,
    FaultKind.APP_HANG,
    FaultKind.BAD_PARAM_NULL,
    FaultKind.BAD_PARAM_OFFSET,
    FaultKind.BAD_PARAM_SIZE,
)
