"""Validating the phase-2 model against direct simulation.

The analytic model (§2.2) *assumes* fault damage adds linearly: each
fault contributes its seven-stage losses weighted by its rate,
independent of the others.  The paper inherits that assumption from
[26]; here we can actually test it, because the substrate is a
simulator:

* :func:`run_sequential_validation` — inject a roster of faults into
  **one long run**, spaced far enough apart to recover between them, and
  compare the run's overall availability with the sum of single-fault
  losses predicted from independently measured profiles.  This isolates
  the additivity assumption from arrival statistics.

* :func:`run_monte_carlo` — draw fault arrivals as Poisson processes
  from an (accelerated) fault load, let them overlap as they may, and
  compare measured availability against the model evaluated at the same
  accelerated rates.  This additionally stresses the
  single-fault-at-a-time queueing assumption.

Both validators configure the cluster so recovery timings match the
model's world: application restarts and node reboots take the Table-3
MTTR (3 minutes) rather than the compressed values phase-1 timelines use,
and active fault periods last one MTTR.  The fault roster deliberately
avoids faults whose profiles carry an operator-wait stage (E) for the
validated versions, so the prediction does not hinge on operator-timing
assumptions.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Tuple

from ..core.faultload import ComponentFault, FaultLoad
from ..core.model import evaluate
from ..faults.spec import FaultKind, FaultSpec
from ..press.cluster import PressCluster
from ..press.config import ALL_VERSIONS, ALL_VERSIONS_EXTENDED
from .campaign import measure_profile_set
from .settings import (
    DEFAULT_SETTINGS,
    DEFAULT_TARGET,
    DURATION_FAULTS,
    FAULT_MTTR,
    Phase1Settings,
)

#: Recovery timings consistent with Table 3's 3-minute MTTRs.
MTTR_SECONDS = 180.0

#: A representative mix of stall, fail-fast, and no-impact behaviours
#: whose profiles have no stage E for TCP-PRESS or the VIA versions.
SEQUENTIAL_ROSTER = (
    FaultKind.APP_CRASH,
    FaultKind.KERNEL_MEMORY,
    FaultKind.BAD_PARAM_NULL,
    FaultKind.APP_HANG,
)


@dataclass
class ValidationResult:
    version: str
    simulated_availability: float
    predicted_availability: float
    faults_injected: int
    horizon: float

    @property
    def absolute_error(self) -> float:
        return abs(self.simulated_availability - self.predicted_availability)

    @property
    def relative_error(self) -> float:
        """Error relative to the predicted *unavailability* (the model's
        output quantity — availabilities are all ≈ 1)."""
        u = 1.0 - self.predicted_availability
        if u <= 0:
            return self.absolute_error
        return self.absolute_error / u


def _mttr_faithful_cluster(
    config, settings: Phase1Settings, seed_offset: int
) -> PressCluster:
    return PressCluster(
        config,
        scale=settings.scale,
        seed=settings.seed + seed_offset,
        utilization=settings.utilization,
        restart_delay=MTTR_SECONDS,
        reboot_time=MTTR_SECONDS,
    )


def _mttr_settings(settings: Phase1Settings) -> Phase1Settings:
    """Phase-1 settings whose recovery timings match the MTTR world.

    Crucially this raises the restart delay to the MTTR so stage C's
    *throughput* is measured over the true outage plateau (§2.1: the
    fault must last long enough for every stage to be observed), not over
    the seconds before a fast supervisor restart.
    """
    return dataclasses.replace(
        settings,
        fault_duration=MTTR_SECONDS,
        post_recovery=100.0,
        restart_delay=MTTR_SECONDS,
        reboot_time=MTTR_SECONDS,
    )


def run_sequential_validation(
    version: str,
    settings: Phase1Settings = DEFAULT_SETTINGS,
    spacing: float = 320.0,
    roster: Tuple[FaultKind, ...] = SEQUENTIAL_ROSTER,
    target: str = DEFAULT_TARGET,
) -> ValidationResult:
    """One long run with ``roster`` injected every ``spacing`` seconds."""
    config = ALL_VERSIONS_EXTENDED[version]
    cluster = _mttr_faithful_cluster(config, settings, seed_offset=7)
    cluster.start()
    warm_end = settings.warm + 20.0
    cluster.run_until(warm_end)
    tn = cluster.measured_rate(settings.warm, warm_end)

    slots: List[Tuple[float, FaultKind]] = []
    t = warm_end + 10.0
    for kind in roster:
        slots.append((t, kind))
        duration = MTTR_SECONDS if kind in DURATION_FAULTS else 0.0
        cluster.mendosus.schedule(
            FaultSpec(kind=kind, target=target, at=t, duration=duration)
        )
        t += spacing
    horizon_end = t
    cluster.run_until(horizon_end)
    measured = cluster.monitor.availability()

    # Prediction: sum the independently measured single-fault losses.
    profiles = measure_profile_set(
        version, _mttr_settings(settings), faults=tuple(set(roster))
    )
    lost_predicted = sum(
        profiles.get(kind.value).lost_work for _at, kind in slots
    )
    total_requests = tn * horizon_end
    predicted = 1.0 - lost_predicted / max(total_requests, 1e-9)

    return ValidationResult(
        version=version,
        simulated_availability=measured,
        predicted_availability=max(0.0, min(1.0, predicted)),
        faults_injected=len(slots),
        horizon=horizon_end,
    )


# ---------------------------------------------------------------------------
# Monte Carlo validation
# ---------------------------------------------------------------------------

MONTE_CARLO_KINDS = SEQUENTIAL_ROSTER


def run_monte_carlo(
    version: str,
    load: FaultLoad,
    horizon: float = 4000.0,
    acceleration: float = 60.0,
    settings: Phase1Settings = DEFAULT_SETTINGS,
) -> ValidationResult:
    """Random fault arrivals at ``acceleration``× the load's rates.

    The model is evaluated at the *same* accelerated rates for an
    apples-to-apples comparison; keep ``acceleration`` low enough that
    the model's total degraded-time fraction stays well below 1.
    """
    config = ALL_VERSIONS_EXTENDED[version]
    cluster = _mttr_faithful_cluster(config, settings, seed_offset=31)
    rng = cluster.rng.stream("monte-carlo-faults")
    cluster.start()

    kinds = set(MONTE_CARLO_KINDS)
    components = [c for c in load if c.kind in kinds and c.profile_key is None]

    arrivals: List[Tuple[float, ComponentFault]] = []
    for component in components:
        rate = acceleration / component.mttf
        t = 60.0 + rng.expovariate(rate)
        while t < horizon - 300.0:  # leave room to recover at the end
            arrivals.append((t, component))
            t += rng.expovariate(rate)
    arrivals.sort(key=lambda pair: pair[0])

    for at, component in arrivals:
        target = rng.choice(cluster.node_ids)
        duration = MTTR_SECONDS if component.kind in DURATION_FAULTS else 0.0
        cluster.mendosus.schedule(
            FaultSpec(kind=component.kind, target=target, at=at, duration=duration)
        )
    cluster.run_until(horizon)
    measured = cluster.monitor.availability()

    profiles = measure_profile_set(
        version, _mttr_settings(settings), faults=tuple(kinds)
    )
    accelerated = FaultLoad(
        components=tuple(
            dataclasses.replace(c, mttf=c.mttf / acceleration)
            for c in components
        )
    )
    predicted = evaluate(profiles, accelerated).availability

    return ValidationResult(
        version=version,
        simulated_availability=measured,
        predicted_availability=predicted,
        faults_injected=len(arrivals),
        horizon=horizon,
    )
