"""Sharded, resumable execution of the phase-1 campaign.

The full campaign is a (version x fault x replication) grid of
independent simulated runs plus one fault-free baseline per
(version, replication).  Each grid point is a *cell*: a pure function of
the experiment settings and its derived seed.  This module

* derives a collision-free deterministic seed per *warm group* (a
  stable hash of ``(base_seed, version, rep)`` plus the warm-segment
  layout — the old ``seed + 101 * rep`` arithmetic collides across
  nearby base seeds); the baseline and every fault of a group share the
  seed, so their pre-injection trajectories are identical and the
  warm-start cache (:mod:`.warmstart`) simulates each group's warm
  segment exactly once,
* executes cells either serially or on a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``jobs > 1``), with
  a transparent serial fallback on platforms where worker processes
  cannot be spawned,
* consults a :class:`~repro.experiments.store.ResultStore` before
  running anything, so a warm store replays a campaign with zero
  simulation work, and
* merges per-cell fitted profiles into :class:`ProfileSet`s exactly the
  way the serial code always has (throughputs averaged per fault,
  duration-weighted), so parallel and serial campaigns are
  interchangeable.

A :class:`CampaignReport` records per-cell wall-clock and cache
provenance; ``repro.analysis.report.campaign_timing_report`` renders it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.model import ProfileSet
from ..core.stages import SevenStageProfile, average_profiles
from ..faults.spec import FaultKind
from ..obs.metrics import MetricsRegistry
from ..press.config import ALL_VERSIONS_EXTENDED
from .repeaters import (
    REASON_BUDGET,
    Decision,
    RepBudget,
    make_rule,
)
from .settings import CAMPAIGN_FAULTS, FAULT_MTTR, Phase1Settings
from .store import CellKey, DiskStore, MemoryStore, ResultStore, SummaryKey
from .warmstart import (
    STATUS_COLD,
    STATUS_HIT,
    STATUS_INVALIDATED,
    STATUS_MISS,
    WarmSpec,
    WarmStartCache,
)


def cell_seed(
    base_seed: int, version: str, rep: int, *, warm: float, fault_at: float
) -> int:
    """Deterministic 64-bit seed for one *warm group* (version, rep).

    Every cell of a (version, replication) group — the fault-free
    baseline and all fault cells — shares one seed: their trajectories
    are identical up to the injection instant (the fault spec only
    enters the simulation there), which is what lets the warm-start
    cache (:mod:`.warmstart`) simulate that shared prefix once per
    group.  It also restores the Tn correlation the historical serial
    path had (baseline and faults of a replication under one seed).

    A stable hash keeps distinct groups on distinct seeds for *any*
    base seed — unlike linear schemes (``base + 101 * rep``) where
    nearby base seeds reuse each other's replication seeds.  The
    warm-segment layout settings (``warm``, ``fault_at``) are folded in
    so campaigns that reposition the measurement window or the
    injection instant land on fresh seed universes instead of reusing
    trajectories judged under a different layout.
    """
    tag = f"{base_seed}|{version}|rep{rep}|warm={warm!r}|at={fault_at!r}"
    digest = hashlib.sha256(tag.encode()).digest()
    return int.from_bytes(digest[:8], "little")


# ----------------------------------------------------------------------
# Cell workers.  Module-level so they pickle for worker processes; each
# returns a JSON-ready payload so results are identical whether they
# travel through memory, a pipe, or the on-disk store.
# ----------------------------------------------------------------------


def _timeline_payload(
    series, bucket_width: float, availability: float, tn: float
) -> dict:
    """Compact JSON-ready timeline for the campaign dashboard.

    Rates are in paper units (req/s after ``report_factor`` scaling) and
    rounded — the dashboard draws pixels, not statistics.
    """
    return {
        "series": [[t, round(rate, 3)] for t, rate in series],
        "bucket_width": bucket_width,
        "availability": round(availability, 6),
        "tn": round(tn, 3),
    }


def _warm_cell(
    version: str,
    settings: Phase1Settings,
    seed: int,
    keep_events: bool,
    warm: WarmSpec,
) -> dict:
    """Warm-wave worker: make one warm group's checkpoint exist."""
    cell_settings = dataclasses.replace(settings, seed=seed)
    return WarmStartCache(warm).ensure(version, cell_settings, keep_events)


def _start_cell(
    version: str,
    cell_settings: Phase1Settings,
    keep_events: bool,
    warm: Optional[WarmSpec],
):
    """Warm (cluster, observatory, provenance) for one cell.

    With a :class:`WarmSpec` the warm segment is restored from (or
    captured into) the campaign's checkpoint cache; without one the cell
    runs cold and the caller simulates the warm segment itself.
    """
    from ..obs.bus import EventRecorder
    from ..obs.observatory import Observatory

    if warm is not None:
        return WarmStartCache(warm).obtain(
            version, cell_settings, keep_events
        )
    obs = Observatory(
        recorder=EventRecorder(keep_events=keep_events),
        env=cell_settings.environment,
    )
    return None, obs, {"status": STATUS_COLD}


def _make_spans(spans: Optional[tuple]):
    """Build a collector for ``spans`` = (dir, fmt, sample, label)."""
    if spans is None:
        return None
    from ..obs.spans import SpanCollector

    return SpanCollector(sample_every=spans[2])


def _make_profiler(profile: bool):
    """A fresh :class:`~repro.obs.profiler.FlightRecorder`, or None."""
    if not profile:
        return None
    from ..obs.profiler import FlightRecorder

    return FlightRecorder()


def _perf_record(
    recorder, cluster, payload: dict, restore_s: float, execute_s: float,
    warm_prov: dict,
) -> dict:
    """One cell's wall-clock breakdown + flight-recorder digest.

    Built *after* the payload so the store-serialize cost can be
    measured on the exact bytes the store will write; the record itself
    never enters the payload the runner persists (it is popped into the
    store's volatile ``perf/`` namespace).
    """
    ser0 = time.perf_counter()
    json.dumps(payload)
    serialize_s = time.perf_counter() - ser0
    return {
        "restore_s": restore_s,
        "execute_s": execute_s,
        "serialize_s": serialize_s,
        # Warm-segment simulate+capture cost, paid by the group's first
        # cell on a checkpoint miss (0.0 on hits and cold cells).
        "snapshot_s": float(warm_prov.get("capture_s") or 0.0),
        "elapsed_s": float(payload.get("elapsed", 0.0)),
        "warm_status": warm_prov.get("status"),
        "profile": recorder.digest(cluster.engine),
    }


def _baseline_cell(
    version: str,
    settings: Phase1Settings,
    seed: int,
    trace: Optional[tuple] = None,
    spans: Optional[tuple] = None,
    warm: Optional[WarmSpec] = None,
    profile: bool = False,
) -> dict:
    from ..obs.exporters import telemetry_summary
    from .phase1 import run_baseline

    cell_settings = dataclasses.replace(settings, seed=seed)
    start = time.perf_counter()
    cluster, obs, warm_prov = _start_cell(
        version, cell_settings, trace is not None, warm
    )
    restore_s = time.perf_counter() - start
    collector = _make_spans(spans)
    recorder = _make_profiler(profile)
    run_at = time.perf_counter()
    tn, cluster = run_baseline(
        ALL_VERSIONS_EXTENDED[version],
        cell_settings,
        recorder=None if cluster is not None else obs,
        warm_cluster=cluster,
        spans=collector,
        profiler=recorder,
    )
    execute_s = time.perf_counter() - run_at
    obs.finish(cluster)
    _export_cell_spans(
        collector, spans, cluster, version=version, fault=None, seed=seed
    )
    end = cell_settings.warm + cell_settings.fault_at
    payload = {
        "kind": "baseline",
        "tn": tn,
        "elapsed": time.perf_counter() - start,
        "restore_elapsed": restore_s,
        "warm_start": warm_prov,
        "telemetry": telemetry_summary(
            obs.recorder, cluster.metrics, bus=cluster.bus
        ),
        "observatory": obs.summary(),
        "timeline": _timeline_payload(
            [
                (t, rate * cluster.scale.report_factor)
                for t, rate in cluster.monitor.series(0.0, end)
            ],
            cluster.monitor.bucket_width,
            cluster.monitor.availability(),
            tn,
        ),
    }
    if recorder is not None:
        payload["perf"] = _perf_record(
            recorder, cluster, payload, restore_s, execute_s, warm_prov
        )
    _export_cell_trace(
        obs.recorder, trace, version=version, fault=None, seed=seed
    )
    return payload


def _fault_cell(
    version: str,
    fault_value: str,
    settings: Phase1Settings,
    seed: int,
    trace: Optional[tuple] = None,
    spans: Optional[tuple] = None,
    warm: Optional[WarmSpec] = None,
    profile: bool = False,
) -> dict:
    from ..core.divergence import divergence_report
    from ..core.extract import extract_profile
    from ..obs.exporters import telemetry_summary
    from .phase1 import run_single_fault

    kind = FaultKind(fault_value)
    cell_settings = dataclasses.replace(settings, seed=seed)
    start = time.perf_counter()
    cluster, obs, warm_prov = _start_cell(
        version, cell_settings, trace is not None, warm
    )
    restore_s = time.perf_counter() - start
    collector = _make_spans(spans)
    recorder = _make_profiler(profile)
    run_at = time.perf_counter()
    # The cell measures its *own* pre-injection throughput as Tn.  The
    # extraction thresholds (impact/recovery, a few percent of Tn) need
    # Tn correlated with the run they judge; with per-group seeds that
    # correlation is exact — baseline and faults of a (version, rep)
    # share the pre-injection trajectory, as the historical serial path
    # arranged by running them under one seed per replication.
    record, cluster = run_single_fault(
        ALL_VERSIONS_EXTENDED[version],
        kind,
        cell_settings,
        recorder=None if cluster is not None else obs,
        warm_cluster=cluster,
        spans=collector,
        profiler=recorder,
    )
    execute_s = time.perf_counter() - run_at
    obs.finish(cluster)
    _export_cell_spans(
        collector, spans, cluster, version=version, fault=fault_value, seed=seed
    )
    fitted = extract_profile(
        record, mttr=FAULT_MTTR[kind], env=settings.environment
    )
    payload = {
        "kind": "profile",
        "profile": fitted.to_dict(),
        "elapsed": time.perf_counter() - start,
        "restore_elapsed": restore_s,
        "warm_start": warm_prov,
        "telemetry": telemetry_summary(
            obs.recorder, cluster.metrics, bus=cluster.bus
        ),
        "observatory": obs.summary(),
        "divergence": divergence_report(
            obs.detector.summary(), record, settings.environment
        ),
        "timeline": _timeline_payload(
            record.timeline.series,
            record.timeline.bucket_width,
            record.timeline.availability,
            record.normal_throughput,
        ),
    }
    if recorder is not None:
        payload["perf"] = _perf_record(
            recorder, cluster, payload, restore_s, execute_s, warm_prov
        )
    _export_cell_trace(
        obs.recorder, trace, version=version, fault=fault_value, seed=seed
    )
    return payload


def _export_cell_trace(
    recorder, trace: Optional[tuple], version: str, fault: Optional[str], seed: int
) -> None:
    """Write one cell's recorded events when tracing is on.

    ``trace`` is ``(trace_dir, trace_format, label)`` as packed by
    :class:`CampaignRunner`, or ``None`` when tracing is off.
    """
    if trace is None:
        return
    from ..obs.exporters import export_run

    trace_dir, fmt, label = trace
    export_run(
        recorder.events,
        trace_dir,
        label,
        fmt,
        meta={"version": version, "fault": fault, "seed": seed},
    )


def _export_cell_spans(
    collector,
    spans: Optional[tuple],
    cluster,
    version: str,
    fault: Optional[str],
    seed: int,
) -> None:
    """Finish and write one cell's span files when span tracing is on.

    ``spans`` is ``(spans_dir, fmt, sample_every, label)`` as packed by
    :class:`CampaignRunner`, or ``None`` when spans are off.  Spans
    never enter the cell payload: the stored result stays byte-identical
    to a span-disabled run, which is the determinism contract.
    """
    if spans is None:
        return
    from ..obs.exporters import export_spans

    collector.finish(cluster.engine.now)
    spans_dir, fmt, _sample, label = spans
    export_spans(
        collector,
        spans_dir,
        label,
        fmt,
        meta={"version": version, "fault": fault, "seed": seed},
    )


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CellRecord:
    """Provenance of one cell within a campaign run."""

    version: str
    fault: Optional[str]  # None = baseline
    rep: int
    seed: int
    elapsed: float  # simulation wall-clock (0.0 for cache hits)
    cached: bool
    #: wall-clock spent restoring the warm checkpoint (contained in
    #: ``elapsed``; 0.0 for cache hits and pre-flight-recorder payloads)
    restore_s: float = 0.0
    #: per-cell run telemetry (event counts + metrics snapshot); None
    #: for cells loaded from a pre-telemetry (schema v1) payload
    telemetry: Optional[dict] = None
    #: per-cell observatory summary (stages/health/latency/attribution);
    #: None for cells loaded from a pre-observatory payload
    observatory: Optional[dict] = None
    #: warm-start provenance ("hit"/"miss"/"invalidated"/"cold"); None
    #: for result-store hits (those cells never touched a checkpoint)
    warm: Optional[str] = None


@dataclass(frozen=True)
class StreamRecord:
    """How one replication stream ended: reps spent, and why it stopped.

    A stream is the replication series of one (version, fault) pair —
    ``fault=None`` is the baseline stream (judged on Tn; fault streams
    are judged on run availability).  The CI fields describe the
    Student-t interval of the stream metric at the moment the rule
    fired, which is exactly the band the dashboard reports.
    """

    version: str
    fault: Optional[str]
    metric: str  # "tn" | "availability"
    reps: int
    reason: str  # a repeaters.REASON_* constant
    mean: float
    std: float
    rse: float
    ci_half_width: float
    confidence: float

    @property
    def label(self) -> str:
        return f"{self.version}/{self.fault or 'baseline'}"

    def to_payload(self) -> dict:
        """JSON-ready form persisted as a store repetition summary."""
        return {
            "kind": "repetition",
            "metric": self.metric,
            "reps": self.reps,
            "reason": self.reason,
            "mean": self.mean,
            "std": self.std,
            "rse": self.rse,
            "ci_half_width": self.ci_half_width,
            "confidence": self.confidence,
        }


@dataclass
class CampaignReport:
    """Where a campaign's wall-clock went, cell by cell."""

    jobs: int = 1
    wall_clock: float = 0.0
    cells: List[CellRecord] = field(default_factory=list)
    #: one-line run-telemetry notices (e.g. schema-bump invalidations)
    notices: List[str] = field(default_factory=list)
    #: warm-start checkpoint traffic: {"hit", "miss", "invalidated"}
    #: counts (mirrors the campaign.warm_start.* metrics counters);
    #: empty when warm-start was disabled or every cell was store-cached
    warm_start: Dict[str, int] = field(default_factory=dict)
    #: the repetition rule that shaped the grid ("fixed" / "rse" / "ci")
    policy: str = "fixed"
    #: per-stream replication outcome (reps spent, stopping reason, CI)
    repetition: List[StreamRecord] = field(default_factory=list)
    #: max reps the policy allowed per stream (the fixed-N comparison)
    reps_ceiling_per_stream: int = 0
    #: per-version replicate ProfileSets — one per *complete* replication
    #: (a rep every stream of the version ran) — the samples the CI
    #: bands on AT/AA/P are computed from
    replicates: Dict[str, List[ProfileSet]] = field(default_factory=dict)
    #: per-cell flight-recorder records (profiled campaigns only): the
    #: cell identity plus the wall-clock breakdown and profiler digest
    #: that also land in the store's volatile ``perf/`` namespace
    perf: List[dict] = field(default_factory=list)

    @property
    def reps_spent(self) -> int:
        return sum(r.reps for r in self.repetition)

    @property
    def reps_ceiling(self) -> int:
        """Reps a fixed-``max_reps`` campaign would have spent."""
        return self.reps_ceiling_per_stream * len(self.repetition)

    @property
    def reps_saved_fraction(self) -> float:
        if self.reps_ceiling <= 0:
            return 0.0
        return 1.0 - self.reps_spent / self.reps_ceiling

    @property
    def executed(self) -> int:
        return sum(1 for c in self.cells if not c.cached)

    @property
    def cached(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def cell_seconds(self) -> float:
        """Total simulation time across cells (ignores pool overhead)."""
        return sum(c.elapsed for c in self.cells)

    @property
    def restore_seconds(self) -> float:
        """Warm-checkpoint restore time contained in :attr:`cell_seconds`."""
        return sum(c.restore_s for c in self.cells)

    @property
    def execute_seconds(self) -> float:
        """Pure simulation time: :attr:`cell_seconds` minus restores.

        A warm hit's restore is real wall-clock but not simulation work;
        folding it into the execute column overstated how much the pool
        parallelized (the historical ``speedup`` did exactly that, which
        is why both columns are reported now).
        """
        return self.cell_seconds - self.restore_seconds

    @property
    def speedup(self) -> float:
        """Aggregate cell time over wall time (1.0 = serial, no cache)."""
        if self.wall_clock <= 0:
            return 1.0
        return self.cell_seconds / self.wall_clock

    @property
    def parallelism(self) -> float:
        """Execute-only time over wall time: the honest pool ratio.

        Unlike :attr:`speedup` this excludes warm-restore cost, so a
        campaign that spent its wall-clock unpickling checkpoints cannot
        masquerade as well-parallelized simulation.
        """
        if self.wall_clock <= 0:
            return 1.0
        return self.execute_seconds / self.wall_clock

    def by_version(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for c in self.cells:
            out[c.version] = out.get(c.version, 0.0) + c.elapsed
        return out

    def by_fault(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for c in self.cells:
            label = c.fault if c.fault is not None else "baseline"
            out[label] = out.get(label, 0.0) + c.elapsed
        return out

    def event_totals(self) -> Dict[str, int]:
        """Campaign-wide event counts summed over cell telemetry."""
        out: Dict[str, int] = {}
        for c in self.cells:
            if not c.telemetry:
                continue
            for name, n in c.telemetry.get("events", {}).items():
                out[name] = out.get(name, 0) + n
        return out


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Cell:
    version: str
    fault: Optional[str]
    rep: int
    seed: int

    def key(self, settings_key: tuple) -> CellKey:
        return CellKey(
            version=self.version,
            settings_key=settings_key,
            fault=self.fault,
            seed=self.seed,
            rep=self.rep,
        )

    @property
    def stream(self) -> Tuple[str, Optional[str]]:
        return (self.version, self.fault)


class CampaignRunner:
    """Executes a campaign grid against a result store.

    ``jobs=1`` runs cells inline; ``jobs>1`` fans misses out to a
    process pool.  Either way the merged :class:`ProfileSet`s are a pure
    function of the settings, so the two paths agree bit-for-bit.
    """

    def __init__(
        self,
        settings: Phase1Settings,
        store: Optional[ResultStore] = None,
        jobs: int = 1,
        use_cache: bool = True,
        on_cell: Optional[Callable[[CellRecord], None]] = None,
        trace_dir: Optional[str] = None,
        trace_format: str = "both",
        spans_dir: Optional[str] = None,
        span_sample: int = 1,
        warm_start: bool = True,
        profile: bool = False,
    ):
        self.settings = settings
        self.store = store if store is not None else MemoryStore()
        self.jobs = max(1, int(jobs))
        #: oversubscription guard: under --lp-backend processes every
        #: cell spawns `shards` worker processes *besides* its pool
        #: worker, so an unchecked --jobs J runs J*(shards+1) processes.
        #: Cap the pool so cells x per-cell workers stays within the
        #: host (never below 1; noted on the report when it bites).
        self._jobs_notice: Optional[str] = None
        if settings.lp_backend == "processes" and self.jobs > 1:
            per_cell = 1 + max(
                1, min(settings.shards, settings.n_nodes)
            )
            cap = max(1, (os.cpu_count() or 1) // per_cell)
            if self.jobs > cap:
                self._jobs_notice = (
                    f"campaign pool capped at {cap} job(s) (asked "
                    f"{self.jobs}): --lp-backend processes runs "
                    f"{per_cell - 1} LP worker(s) per cell, and "
                    f"{self.jobs} cells x {per_cell} processes would "
                    f"oversubscribe {os.cpu_count() or 1} CPU(s) — see "
                    "PERFORMANCE.md \"Parallel LP backend\""
                )
                self.jobs = cap
        self.use_cache = use_cache
        self.on_cell = on_cell
        self.trace_dir = str(trace_dir) if trace_dir is not None else None
        self.trace_format = trace_format
        self.spans_dir = str(spans_dir) if spans_dir is not None else None
        self.span_sample = max(1, int(span_sample))
        #: attach a wall-clock flight recorder to every executed cell.
        #: Deliberately NOT part of the settings key: profiling observes
        #: only host time, so profiled and unprofiled campaigns share one
        #: cache universe and byte-identical payloads.
        self.profile = bool(profile)
        #: run-scoped warm-checkpoint spool (in-memory parallel runs)
        self._spool = None
        self.warm_start = warm_start
        #: campaign-level observability (campaign.warm_start.* and
        #: campaign.reps.* counters)
        self.metrics = MetricsRegistry()
        self._settings_key = settings.sim_key()

    # -- grid ----------------------------------------------------------
    def _seed_for(self, version: str, rep: int) -> int:
        """The stable per-warm-group seed — unchanged from the fixed-rep
        scheme, so adaptive campaigns extend a stream with exactly the
        seeds a bigger fixed campaign would have used."""
        return cell_seed(
            self.settings.seed,
            version,
            rep,
            warm=self.settings.warm,
            fault_at=self.settings.fault_at,
        )

    # -- execution -----------------------------------------------------
    def _lookup(self, cell: _Cell) -> Optional[dict]:
        if not self.use_cache:
            return None
        if self.trace_dir is not None or self.spans_dir is not None:
            # Tracing forces execution: a cached payload has no event
            # stream (or span set) to export.  Results are still stored,
            # so the next un-traced run replays warm.
            return None
        return self.store.get(cell.key(self._settings_key))

    @staticmethod
    def _label(cell: _Cell) -> str:
        return f"{cell.version}__{cell.fault or 'baseline'}__rep{cell.rep}"

    def _trace_arg(self, cell: _Cell) -> Optional[tuple]:
        if self.trace_dir is None:
            return None
        return (self.trace_dir, self.trace_format, self._label(cell))

    def _spans_arg(self, cell: _Cell) -> Optional[tuple]:
        if self.spans_dir is None:
            return None
        return (
            self.spans_dir,
            self.trace_format,
            self.span_sample,
            self._label(cell),
        )

    def _record(
        self, report: CampaignReport, cell: _Cell, payload: dict, cached: bool
    ) -> None:
        rec = CellRecord(
            version=cell.version,
            fault=cell.fault,
            rep=cell.rep,
            seed=cell.seed,
            elapsed=0.0 if cached else float(payload.get("elapsed", 0.0)),
            cached=cached,
            restore_s=0.0
            if cached
            else float(payload.get("restore_elapsed", 0.0)),
            telemetry=payload.get("telemetry"),
            observatory=payload.get("observatory"),
            warm=None
            if cached
            else (payload.get("warm_start") or {}).get("status"),
        )
        report.cells.append(rec)
        if not cached:
            self._count_warm(rec.warm)
        if self.on_cell is not None:
            self.on_cell(rec)

    def _execute_wave(
        self,
        misses: List[Tuple[_Cell, tuple]],
        report: CampaignReport,
    ) -> Dict[_Cell, dict]:
        """Run every missed cell, through the pool when one is available."""
        results: Dict[_Cell, dict] = {}
        pool = self._pool() if len(misses) > 1 else None
        try:
            if pool is None:
                for cell, args in misses:
                    worker = _baseline_cell if cell.fault is None else _fault_cell
                    results[cell] = worker(*args)
            else:
                futures = {
                    pool.submit(
                        _baseline_cell if cell.fault is None else _fault_cell,
                        *args,
                    ): cell
                    for cell, args in misses
                }
                for future, cell in futures.items():
                    results[cell] = future.result()
        finally:
            if pool is not None:
                pool.shutdown()
        for cell, payload in results.items():
            # The flight-recorder record travels back on the payload but
            # never *in* it: it is volatile wall-clock, so it is stripped
            # into the store's perf/ namespace before the payload is
            # persisted or fingerprinted.
            perf = payload.pop("perf", None)
            if perf is not None:
                report.perf.append(
                    {
                        "version": cell.version,
                        "fault": cell.fault,
                        "rep": cell.rep,
                        "seed": cell.seed,
                        **perf,
                    }
                )
                if self.use_cache:
                    self.store.put_perf(cell.key(self._settings_key), perf)
            if self.use_cache:
                self.store.put(cell.key(self._settings_key), payload)
            self._record(report, cell, payload, cached=False)
        return results

    # -- warm-start ----------------------------------------------------
    def _warm_for(self, misses):
        """Pick where one wave's misses keep warm checkpoints.

        Disk-backed stores persist checkpoints next to their cells
        (surviving restarts like the cells do); in-memory parallel
        campaigns spool through a run-scoped temp dir — created lazily
        on the first wave that needs one and shared by later waves —
        since a per-process memory cache is invisible to pool workers;
        serial in-memory campaigns just use the process-local cache.
        """
        if not self.warm_start or not misses:
            return None
        if self.spans_dir is not None:
            # Span cells run cold: a checkpoint restored mid-stream has
            # no spans for its in-flight requests, which would violate
            # the trace-completeness invariant the validator enforces.
            return None
        if isinstance(self.store, DiskStore):
            return WarmSpec(dir=str(self.store.cache_dir / "warmstart"))
        if self.jobs > 1 and len(misses) > 1:
            if self._spool is None:
                self._spool = tempfile.TemporaryDirectory(
                    prefix="repro-warmstart-"
                )
            return WarmSpec(dir=self._spool.name)
        return WarmSpec(dir=None)

    def _warm_wave(self, misses, spec: WarmSpec) -> None:
        """Checkpoint every warm group exactly once, before the cells.

        This is what turns the campaign's warm-up cost from O(cells)
        into O(warm groups): by the time the cell wave fans out, every
        cell — parallel ones included — finds its group's checkpoint
        instead of re-simulating the shared prefix.
        """
        keep = self.trace_dir is not None
        groups = sorted({(cell.version, cell.seed) for cell, _ in misses})
        results: List[dict] = []
        pool = self._pool() if len(groups) > 1 else None
        try:
            if pool is None:
                for version, seed in groups:
                    results.append(
                        _warm_cell(version, self.settings, seed, keep, spec)
                    )
            else:
                futures = [
                    pool.submit(
                        _warm_cell, version, self.settings, seed, keep, spec
                    )
                    for version, seed in groups
                ]
                results = [f.result() for f in futures]
        finally:
            if pool is not None:
                pool.shutdown()
        for prov in results:
            # A warm-wave "hit" found a checkpoint from an earlier
            # campaign: nothing simulated, nothing restored — only the
            # cells' restores count as hits.
            if prov["status"] != STATUS_HIT:
                self._count_warm(prov["status"])

    def _count_warm(self, status: Optional[str]) -> None:
        if status in (STATUS_HIT, STATUS_MISS, STATUS_INVALIDATED):
            self.metrics.counter(f"campaign.warm_start.{status}").inc()

    def _finish_warm_report(self, report: CampaignReport) -> None:
        counts = {
            status: self.metrics.counter(f"campaign.warm_start.{status}").value
            for status in (STATUS_HIT, STATUS_MISS, STATUS_INVALIDATED)
        }
        report.warm_start = {k: v for k, v in counts.items() if v}
        if not report.warm_start:
            return
        notice = (
            f"warm-start: {counts[STATUS_MISS]} warm segment(s) simulated, "
            f"{counts[STATUS_HIT]} checkpoint restore(s)"
        )
        if counts[STATUS_INVALIDATED]:
            notice += (
                f", {counts[STATUS_INVALIDATED]} invalidated checkpoint(s) "
                "recomputed (format/python changed)"
            )
        notice += " — see PERFORMANCE.md"
        report.notices.append(notice)

    def _pool(self):
        """A process pool, or ``None`` to fall back to inline execution."""
        if self.jobs <= 1:
            return None
        try:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else "spawn"
            return ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context(method),
            )
        except (ImportError, NotImplementedError, OSError, ValueError):
            return None

    # -- adaptive scheduling -------------------------------------------
    def _cell_args(self, cell: _Cell) -> tuple:
        """Worker arguments for one cell (warm spec appended later)."""
        if cell.fault is None:
            return (
                cell.version,
                self.settings,
                cell.seed,
                self._trace_arg(cell),
                self._spans_arg(cell),
            )
        return (
            cell.version,
            cell.fault,
            self.settings,
            cell.seed,
            self._trace_arg(cell),
            self._spans_arg(cell),
        )

    @staticmethod
    def _stream_sample(cell: _Cell, payload: dict) -> float:
        """The scalar a stream's stopping rule judges.

        Baseline streams are judged on Tn, fault streams on the run's
        availability — the quantities whose stability bounds the AT/AA/P
        estimates downstream.  (Pre-v3 payloads without a timeline can
        only appear under the fixed policy, where samples never change
        the schedule.)
        """
        if cell.fault is None:
            return float(payload["tn"])
        return float((payload.get("timeline") or {}).get("availability", 0.0))

    def _run_wave(
        self,
        wave: List[_Cell],
        report: CampaignReport,
        payloads: Dict[_Cell, dict],
        samples: Dict[Tuple[str, Optional[str]], List[float]],
    ) -> None:
        """Execute one wave of cells: store lookups, then warm-start and
        (possibly pooled) simulation of the misses."""
        self.metrics.counter("campaign.reps.scheduled").inc(len(wave))
        misses: List[Tuple[_Cell, tuple]] = []
        for cell in wave:
            hit = self._lookup(cell)
            if hit is not None:
                payloads[cell] = hit
                self._record(report, cell, hit, cached=True)
            else:
                misses.append((cell, self._cell_args(cell)))
        if misses:
            warm_spec = self._warm_for(misses)
            if warm_spec is not None:
                self._warm_wave(misses, warm_spec)
            executed = self._execute_wave(
                [
                    (cell, args + (warm_spec, self.profile))
                    for cell, args in misses
                ],
                report,
            )
            payloads.update(executed)
        for cell in wave:
            samples[cell.stream].append(
                self._stream_sample(cell, payloads[cell])
            )

    def _finalize_stream(
        self,
        stream: Tuple[str, Optional[str]],
        decision: Decision,
        reason: str,
        rule,
        report: CampaignReport,
    ) -> None:
        version, fault = stream
        record = StreamRecord(
            version=version,
            fault=fault,
            metric="tn" if fault is None else "availability",
            reps=decision.n,
            reason=reason,
            mean=decision.mean,
            std=decision.std,
            rse=decision.rse,
            ci_half_width=decision.half_width,
            confidence=rule.confidence,
        )
        report.repetition.append(record)
        skipped = rule.max_reps - decision.n
        if skipped > 0:
            self.metrics.counter("campaign.reps.skipped").inc(skipped)
        if self.use_cache:
            self.store.put_summary(
                SummaryKey(
                    version=version,
                    settings_key=self._settings_key,
                    fault=fault,
                    policy_key=self.settings.repetition_policy().key(),
                ),
                record.to_payload(),
            )

    def _replicates(
        self,
        versions: List[str],
        faults: Tuple[FaultKind, ...],
        payloads: Dict[_Cell, dict],
    ) -> Dict[str, List[ProfileSet]]:
        """Per-version single-replication ProfileSets over the reps every
        stream of the version completed — the AT/AA/P band samples."""
        by_cell = {(c.version, c.fault, c.rep): p for c, p in payloads.items()}
        out: Dict[str, List[ProfileSet]] = {}
        for version in versions:
            sets: List[ProfileSet] = []
            for rep in range(self.settings.repetition_policy().max_reps):
                base = by_cell.get((version, None, rep))
                rest = [
                    by_cell.get((version, f.value, rep)) for f in faults
                ]
                if base is None or any(p is None for p in rest):
                    continue
                ps = ProfileSet(version, float(base["tn"]))
                for payload in rest:
                    ps.add(SevenStageProfile.from_dict(payload["profile"]))
                sets.append(ps)
            out[version] = sets
        return out

    # -- public API ----------------------------------------------------
    def run(
        self,
        versions: Iterable[str],
        faults: Iterable[FaultKind] = CAMPAIGN_FAULTS,
    ) -> Tuple[Dict[str, ProfileSet], CampaignReport]:
        versions = list(versions)
        faults = tuple(faults)
        policy = self.settings.repetition_policy()
        rule = make_rule(policy)
        budget = RepBudget(policy.rep_budget)
        report = CampaignReport(
            jobs=self.jobs,
            policy=policy.rule,
            reps_ceiling_per_stream=rule.max_reps,
        )
        if self._jobs_notice:
            report.notices.append(self._jobs_notice)
        started = time.perf_counter()

        # Streams: the baseline and every fault of each version
        # replicate independently under one rule.  Every cell is
        # independent (fault cells measure their own pre-injection Tn),
        # so each wave fans out in parallel.
        streams: List[Tuple[str, Optional[str]]] = [
            (v, f)
            for v in versions
            for f in [None] + [k.value for k in faults]
        ]
        labels = {s: f"{s[0]}/{s[1] or 'baseline'}" for s in streams}
        by_label = {label: s for s, label in labels.items()}
        samples: Dict[Tuple[str, Optional[str]], List[float]] = {
            s: [] for s in streams
        }
        payloads: Dict[_Cell, dict] = {}
        active = list(streams)
        try:
            # Wave 0: the policy's minimum for every stream — in fixed
            # mode that is the whole grid, exactly the historical
            # single-wave campaign.
            self._run_wave(
                [
                    _Cell(v, f, rep, self._seed_for(v, rep))
                    for (v, f) in streams
                    for rep in range(rule.min_reps)
                ],
                report,
                payloads,
                samples,
            )
            rep = rule.min_reps
            while active:
                requests: List[Tuple[str, Decision]] = []
                decided: Dict[str, Decision] = {}
                for stream in active:
                    decision = rule.decide(samples[stream])
                    if decision.stop:
                        self._finalize_stream(
                            stream, decision, decision.reason, rule, report
                        )
                    else:
                        requests.append((labels[stream], decision))
                        decided[labels[stream]] = decision
                granted, denied = budget.allocate(requests)
                for label in denied:
                    self.metrics.counter(
                        "campaign.reps.budget_exhausted"
                    ).inc()
                    self._finalize_stream(
                        by_label[label],
                        decided[label],
                        REASON_BUDGET,
                        rule,
                        report,
                    )
                active = [by_label[label] for label in granted]
                if not active:
                    break
                self._run_wave(
                    [
                        _Cell(v, f, rep, self._seed_for(v, rep))
                        for (v, f) in active
                    ],
                    report,
                    payloads,
                    samples,
                )
                rep += 1
        finally:
            if self._spool is not None:
                self._spool.cleanup()
                self._spool = None
        report.repetition.sort(key=lambda r: (r.version, r.fault or ""))

        # Merge: identical arithmetic to the historical fixed-rep path —
        # Tn averaged over the baseline reps that ran, per-fault
        # profiles averaged in replication order.
        out: Dict[str, ProfileSet] = {}
        for version in versions:
            tns = [
                payloads[c]["tn"]
                for c in sorted(
                    (c for c in payloads if c.version == version and c.fault is None),
                    key=lambda c: c.rep,
                )
            ]
            profiles = ProfileSet(version, sum(tns) / len(tns))
            for kind in faults:
                reps_of_fault = sorted(
                    (
                        c
                        for c in payloads
                        if c.version == version and c.fault == kind.value
                    ),
                    key=lambda c: c.rep,
                )
                profiles.add(
                    average_profiles(
                        [
                            SevenStageProfile.from_dict(
                                payloads[c]["profile"]
                            )
                            for c in reps_of_fault
                        ]
                    )
                )
            out[version] = profiles
        report.replicates = self._replicates(versions, faults, payloads)

        report.notices.extend(self.store.drain_notices())
        self._finish_warm_report(report)
        if policy.adaptive:
            saved = report.reps_saved_fraction * 100.0
            notice = (
                f"adaptive replication ({policy.rule}): "
                f"{report.reps_spent} rep(s) across "
                f"{len(report.repetition)} stream(s) vs "
                f"{report.reps_ceiling} at fixed-{rule.max_reps} "
                f"({saved:.0f}% saved)"
            )
            if budget.denied:
                notice += (
                    f"; rep budget exhausted on {budget.denied} stream(s)"
                )
            report.notices.append(notice)
        errors = 0
        error_cells = 0
        for rec in report.cells:
            n = (rec.telemetry or {}).get("subscriber_errors", 0)
            if n:
                errors += n
                error_cells += 1
        if errors:
            report.notices.append(
                f"{errors} bus subscriber error(s) across {error_cells} "
                "cell(s) — observers saw a partial event stream "
                "(bus.subscriber_errors)"
            )
        report.wall_clock = time.perf_counter() - started
        if self.profile:
            self._write_ledger(report)
        return out, report

    def _write_ledger(self, report: CampaignReport) -> None:
        """Consolidate the run's perf records into ``BENCH_campaign.json``.

        Only disk-backed campaigns persist the ledger (it sits beside the
        store's namespaces, where ``perf-compare`` finds it); either way
        the report carries a one-line pointer so a profiled run is never
        silent about where its measurements went.
        """
        from ..analysis.perf import campaign_ledger

        ledger = campaign_ledger(report, settings=self.settings)
        if isinstance(self.store, DiskStore):
            path = self.store.cache_dir / "BENCH_campaign.json"
            path.write_text(
                json.dumps(ledger, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            report.notices.append(
                f"flight recorder: {len(report.perf)} cell record(s) in "
                f"perf/, campaign ledger at {path} — "
                "read with `python -m repro perf-report`"
            )
        else:
            report.notices.append(
                f"flight recorder: {len(report.perf)} cell record(s) "
                "profiled (in-memory store; use --cache-dir to persist "
                "a campaign ledger)"
            )


def run_campaign(
    settings: Phase1Settings,
    versions: Iterable[str],
    faults: Iterable[FaultKind] = CAMPAIGN_FAULTS,
    jobs: int = 1,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
    on_cell: Optional[Callable[[CellRecord], None]] = None,
    trace_dir: Optional[str] = None,
    trace_format: str = "both",
    spans_dir: Optional[str] = None,
    span_sample: int = 1,
    warm_start: bool = True,
    profile: bool = False,
) -> Tuple[Dict[str, ProfileSet], CampaignReport]:
    """One-shot convenience wrapper around :class:`CampaignRunner`."""
    runner = CampaignRunner(
        settings,
        store=store,
        jobs=jobs,
        use_cache=use_cache,
        on_cell=on_cell,
        trace_dir=trace_dir,
        trace_format=trace_format,
        spans_dir=spans_dir,
        span_sample=span_sample,
        warm_start=warm_start,
        profile=profile,
    )
    return runner.run(versions, faults)
