"""Seed-sweep stability analysis of the headline results.

Phase-1 measurements are stochastic (arrival sampling, fault phase);
the log-scale performability metric amplifies that noise.  This module
reruns the headline computations across seeds and reports mean and
range, so every number quoted from this reproduction can carry an
honest error bar.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence

from ..core.faultload import MONTH, WEEK, FaultLoad
from ..core.metric import performability_of
from ..core.model import evaluate
from .campaign import measure_profile_set
from .performability import CROSSOVER_KINDS, run_crossover
from .settings import DEFAULT_SETTINGS, Phase1Settings


@dataclass
class SweepStat:
    """Mean and range of one scalar across seeds."""

    name: str
    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.samples.append(value)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def lo(self) -> float:
        return min(self.samples)

    @property
    def hi(self) -> float:
        return max(self.samples)

    @property
    def spread(self) -> float:
        """Half-range relative to the mean (a crude error bar)."""
        if self.mean == 0:
            return 0.0
        return (self.hi - self.lo) / 2 / abs(self.mean)

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.mean:.3f}"
            f"  [{self.lo:.3f}, {self.hi:.3f}]"
            f"  (±{self.spread * 100:.0f}%)"
        )


def sweep(
    quantity: Callable[[Phase1Settings], Mapping[str, float]],
    seeds: Sequence[int],
    settings: Phase1Settings = DEFAULT_SETTINGS,
) -> Dict[str, SweepStat]:
    """Evaluate ``quantity`` under each seed and aggregate per key."""
    stats: Dict[str, SweepStat] = {}
    for seed in seeds:
        values = quantity(dataclasses.replace(settings, seed=seed))
        for key, value in values.items():
            stats.setdefault(key, SweepStat(key)).add(value)
    return stats


def availability_quantity(
    versions: Sequence[str] = ("TCP-PRESS", "TCP-PRESS-HB", "VIA-PRESS-5"),
    app_mttf: float = MONTH,
) -> Callable[[Phase1Settings], Dict[str, float]]:
    """Figure-6 availability per version, as a sweepable quantity."""

    def compute(settings: Phase1Settings) -> Dict[str, float]:
        load = FaultLoad.table3(app_fault_mttf=app_mttf)
        out = {}
        for version in versions:
            profiles = measure_profile_set(version, settings)
            out[version] = evaluate(profiles, load).availability
        return out

    return compute


def performability_quantity(
    versions: Sequence[str] = ("TCP-PRESS", "TCP-PRESS-HB", "VIA-PRESS-5"),
    app_mttf: float = MONTH,
) -> Callable[[Phase1Settings], Dict[str, float]]:
    def compute(settings: Phase1Settings) -> Dict[str, float]:
        load = FaultLoad.table3(app_fault_mttf=app_mttf)
        out = {}
        for version in versions:
            profiles = measure_profile_set(version, settings)
            out[version] = performability_of(evaluate(profiles, load))
        return out

    return compute


def crossover_quantity() -> Callable[[Phase1Settings], Dict[str, float]]:
    """The §9 multiplier per VIA version, as a sweepable quantity."""

    def compute(settings: Phase1Settings) -> Dict[str, float]:
        return run_crossover(settings)

    return compute


def format_sweep(stats: Mapping[str, SweepStat], title: str = "") -> str:
    lines = [title] if title else []
    for stat in stats.values():
        lines.append("  " + str(stat))
    return "\n".join(lines)
