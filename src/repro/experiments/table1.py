"""Table 1: near-peak throughput of the five PRESS versions.

Drives each version slightly past its estimated saturation point and
measures delivered throughput.  We report measured peaks next to the
paper's numbers; the claim being reproduced is the *ordering and the
ratios* (VIA-5 > VIA-3 > VIA-0 > TCP ≈ TCP-HB, with VIA-5 roughly 1.4×
TCP), not absolute hardware-era req/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..press.cluster import PressCluster
from ..press.config import ALL_VERSIONS, ALL_VERSIONS_EXTENDED, PAPER_TABLE1_THROUGHPUT
from .settings import DEFAULT_SETTINGS, Phase1Settings

#: Offered load relative to estimated capacity for the peak measurement.
PEAK_UTILIZATION = 1.05


@dataclass(frozen=True)
class Table1Row:
    version: str
    measured: float
    paper: float

    @property
    def measured_normalized(self) -> float:
        """Measured throughput relative to TCP-PRESS (ratio table)."""
        return self.measured

    def __str__(self) -> str:
        return (
            f"{self.version:14s} measured {self.measured:7.0f} req/s"
            f"   paper {self.paper:6.0f} req/s"
        )


def measure_peak(
    version: str,
    settings: Phase1Settings = DEFAULT_SETTINGS,
    warm: float = 30.0,
    window: float = 60.0,
) -> float:
    """Near-peak delivered throughput for one version (paper units)."""
    cluster = PressCluster(
        ALL_VERSIONS_EXTENDED[version],
        scale=settings.scale,
        seed=settings.seed,
        utilization=PEAK_UTILIZATION,
    )
    cluster.start()
    cluster.run_until(warm + window)
    return cluster.measured_rate(warm, warm + window)


def run_table1(
    settings: Phase1Settings = DEFAULT_SETTINGS,
    versions: Optional[List[str]] = None,
) -> List[Table1Row]:
    names = versions if versions is not None else list(ALL_VERSIONS)
    return [
        Table1Row(
            version=name,
            measured=measure_peak(name, settings),
            paper=PAPER_TABLE1_THROUGHPUT[name],
        )
        for name in names
    ]


def format_table1(rows: List[Table1Row]) -> str:
    base_measured = rows[0].measured
    base_paper = rows[0].paper
    lines = [
        "Table 1 — near-peak throughput (vs. paper)",
        f"{'version':14s} {'measured':>10s} {'paper':>8s} "
        f"{'meas./TCP':>10s} {'paper/TCP':>10s}",
    ]
    for row in rows:
        lines.append(
            f"{row.version:14s} {row.measured:10.0f} {row.paper:8.0f} "
            f"{row.measured / base_measured:10.2f} {row.paper / base_paper:10.2f}"
        )
    return "\n".join(lines)
