"""The full phase-1 campaign: every (version, fault) pair → ProfileSet.

Profile sets are memoized per (version, settings) because Figures 6-10
all consume the same measurements under different fault loads — exactly
how the paper reuses its phase-1 data.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional, Tuple

from ..core.extract import extract_profile
from ..core.model import ProfileSet
from ..core.stages import average_profiles
from ..faults.spec import FaultKind
from ..press.config import ALL_VERSIONS, ALL_VERSIONS_EXTENDED
from .phase1 import run_baseline, run_single_fault
from .settings import CAMPAIGN_FAULTS, DEFAULT_SETTINGS, FAULT_MTTR, Phase1Settings

_cache: Dict[tuple, ProfileSet] = {}


def measure_profile_set(
    version: str,
    settings: Phase1Settings = DEFAULT_SETTINGS,
    faults: Iterable[FaultKind] = CAMPAIGN_FAULTS,
    use_cache: bool = True,
) -> ProfileSet:
    """Run phase 1 for ``version`` across ``faults`` and fit profiles.

    The experiment is repeated ``settings.replications`` times under
    distinct seeds and the fitted profiles averaged per fault.
    """
    faults = tuple(faults)
    key = (version, settings.cache_key(), tuple(f.value for f in faults))
    if use_cache and key in _cache:
        return _cache[key]

    config = ALL_VERSIONS_EXTENDED[version]
    tns = []
    per_fault: Dict[FaultKind, list] = {kind: [] for kind in faults}
    for rep in range(max(1, settings.replications)):
        rep_settings = dataclasses.replace(
            settings, seed=settings.seed + 101 * rep
        )
        tn, _ = run_baseline(config, rep_settings)
        tns.append(tn)
        for kind in faults:
            record, _cluster = run_single_fault(
                config, kind, rep_settings, normal_throughput=tn
            )
            per_fault[kind].append(
                extract_profile(
                    record, mttr=FAULT_MTTR[kind], env=settings.environment
                )
            )

    profiles = ProfileSet(version, sum(tns) / len(tns))
    for kind in faults:
        profiles.add(average_profiles(per_fault[kind]))

    if use_cache:
        _cache[key] = profiles
    return profiles


def full_campaign(
    settings: Phase1Settings = DEFAULT_SETTINGS,
    versions: Optional[Iterable[str]] = None,
    faults: Iterable[FaultKind] = CAMPAIGN_FAULTS,
) -> Dict[str, ProfileSet]:
    """Profile sets for every requested version (default: all five)."""
    names = list(versions) if versions is not None else list(ALL_VERSIONS)
    return {
        name: measure_profile_set(name, settings, faults) for name in names
    }


def clear_cache() -> None:
    _cache.clear()
