"""The full phase-1 campaign: every (version, fault) pair → ProfileSet.

Execution is delegated to :mod:`repro.experiments.runner`, which shards
the (version x fault x replication) grid into independent cells and runs
them serially or on a process pool.  Cell results are memoized in a
:class:`~repro.experiments.store.ResultStore` — by default a
process-local :class:`MemoryStore` (Figures 6-10 all consume the same
phase-1 measurements, exactly how the paper reuses its data), optionally
a :class:`DiskStore` that survives interpreter restarts.

``configure(store=..., jobs=..., trace_dir=...)`` changes the
process-wide defaults so entry points (the CLI's ``--jobs`` /
``--cache-dir`` / ``--trace-dir`` flags, the benchmark fixtures) can
redirect every internal campaign without threading arguments through
each figure function.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..core.model import ProfileSet
from ..faults.spec import FaultKind
from ..press.config import ALL_VERSIONS
from .runner import CampaignReport, run_campaign
from .settings import CAMPAIGN_FAULTS, DEFAULT_SETTINGS, Phase1Settings
from .store import MemoryStore, ResultStore

#: Process-wide defaults, set once by entry points via :func:`configure`.
_default_store: ResultStore = MemoryStore()
_default_jobs: int = 1
_default_trace_dir: Optional[str] = None
_default_trace_format: str = "both"
_default_warm_start: bool = True
_default_spans_dir: Optional[str] = None
_default_span_sample: int = 1
_default_profile: bool = False


def configure(
    store: Optional[ResultStore] = None,
    jobs: Optional[int] = None,
    trace_dir: Optional[str] = None,
    trace_format: Optional[str] = None,
    warm_start: Optional[bool] = None,
    spans_dir: Optional[str] = None,
    span_sample: Optional[int] = None,
    profile: Optional[bool] = None,
) -> None:
    """Set the store/parallelism/tracing every campaign uses unless
    overridden."""
    global _default_store, _default_jobs, _default_trace_dir
    global _default_trace_format, _default_warm_start
    global _default_spans_dir, _default_span_sample, _default_profile
    if store is not None:
        _default_store = store
    if jobs is not None:
        _default_jobs = max(1, int(jobs))
    if trace_dir is not None:
        _default_trace_dir = str(trace_dir)
    if trace_format is not None:
        _default_trace_format = trace_format
    if warm_start is not None:
        _default_warm_start = bool(warm_start)
    if spans_dir is not None:
        _default_spans_dir = str(spans_dir)
    if span_sample is not None:
        _default_span_sample = max(1, int(span_sample))
    if profile is not None:
        _default_profile = bool(profile)


def default_store() -> ResultStore:
    return _default_store


def measure_profile_set(
    version: str,
    settings: Phase1Settings = DEFAULT_SETTINGS,
    faults: Iterable[FaultKind] = CAMPAIGN_FAULTS,
    use_cache: bool = True,
    store: Optional[ResultStore] = None,
    jobs: Optional[int] = None,
) -> ProfileSet:
    """Run phase 1 for ``version`` across ``faults`` and fit profiles.

    The experiment is repeated ``settings.replications`` times under
    distinct derived seeds and the fitted profiles averaged per fault.
    """
    sets, _report = run_campaign(
        settings,
        versions=[version],
        faults=faults,
        jobs=jobs if jobs is not None else _default_jobs,
        store=store if store is not None else _default_store,
        use_cache=use_cache,
        trace_dir=_default_trace_dir,
        trace_format=_default_trace_format,
        warm_start=_default_warm_start,
        spans_dir=_default_spans_dir,
        span_sample=_default_span_sample,
        profile=_default_profile,
    )
    return sets[version]


def full_campaign(
    settings: Phase1Settings = DEFAULT_SETTINGS,
    versions: Optional[Iterable[str]] = None,
    faults: Iterable[FaultKind] = CAMPAIGN_FAULTS,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
) -> Dict[str, ProfileSet]:
    """Profile sets for every requested version (default: all five)."""
    sets, _report = full_campaign_with_report(
        settings, versions, faults, jobs=jobs, store=store, use_cache=use_cache
    )
    return sets


def full_campaign_with_report(
    settings: Phase1Settings = DEFAULT_SETTINGS,
    versions: Optional[Iterable[str]] = None,
    faults: Iterable[FaultKind] = CAMPAIGN_FAULTS,
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    use_cache: bool = True,
) -> Tuple[Dict[str, ProfileSet], CampaignReport]:
    """Like :func:`full_campaign`, but also return the timing report."""
    names = list(versions) if versions is not None else list(ALL_VERSIONS)
    return run_campaign(
        settings,
        versions=names,
        faults=faults,
        jobs=jobs if jobs is not None else _default_jobs,
        store=store if store is not None else _default_store,
        use_cache=use_cache,
        trace_dir=_default_trace_dir,
        trace_format=_default_trace_format,
        warm_start=_default_warm_start,
        spans_dir=_default_spans_dir,
        span_sample=_default_span_sample,
        profile=_default_profile,
    )


def clear_cache() -> None:
    """Drop every memoized cell in the process-wide default store."""
    _default_store.clear()
