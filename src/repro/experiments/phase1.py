"""Phase-1 experiment driver: one fault, one version, one timeline.

Lays out a run exactly like the paper's fault-injection experiments:
warm-up, steady measurement of Tn, fault injection, observation through
recovery, and — when the service cannot restore itself (splintered
partitions, stranded rejoins) — a simulated operator reset with a
post-reset observation tail.

Every cell is structured as a **warm segment** plus a **continuation**.
The warm segment (:func:`run_warm`) carries the simulation to
:func:`warm_point` — the injection instant — and is the part that is
identical across every fault of a (version, settings, seed) group: the
fault spec only enters the simulation *at* the injection instant, so the
pre-injection trajectory cannot depend on it.  The campaign warm-start
cache (:mod:`repro.experiments.warmstart`) exploits exactly this: it
snapshots the warm segment once and restores it per cell.  Cold runs
execute the same two segments back to back, which is behaviourally
identical to one straight run (the engine's clock and sequence counter
advance the same way), so warm-started and cold cells produce
bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.extract import ExperimentRecord
from ..faults.spec import FaultKind, FaultSpec
from ..press.cluster import PressCluster
from ..press.config import ALL_VERSIONS, ALL_VERSIONS_EXTENDED, PressConfig
from ..sim import ids
from ..sim.monitor import Timeline
from .settings import (
    DEFAULT_SETTINGS,
    DEFAULT_TARGET,
    DURATION_FAULTS,
    Phase1Settings,
)


def build_cluster(config: PressConfig, settings: Phase1Settings) -> PressCluster:
    return PressCluster(
        config,
        n_nodes=settings.n_nodes,
        scale=settings.scale,
        seed=settings.seed,
        utilization=settings.utilization,
        restart_delay=settings.restart_delay,
        reboot_time=settings.reboot_time,
        fastpath=settings.fastpath,
        shards=settings.shards,
        lp_backend=settings.lp_backend,
    )


def _collect_timeline(
    cluster: PressCluster, version: str, fault: str, end: float
) -> Timeline:
    """Snapshot the monitor into a Timeline in paper units."""
    factor = cluster.scale.report_factor
    series = [
        (t, rate * factor) for t, rate in cluster.monitor.series(0.0, end)
    ]
    failures = [
        (t, rate * factor)
        for t, rate in cluster.monitor.failure_series(0.0, end)
    ]
    return Timeline(
        version=version,
        fault=fault,
        bucket_width=cluster.monitor.bucket_width,
        series=series,
        failures=failures,
        annotations=list(cluster.annotations.entries),
        availability=cluster.monitor.availability(),
    )


def warm_point(settings: Phase1Settings) -> float:
    """Sim-time up to which every cell of a settings group is identical.

    This is the injection instant: a fault spec enters the simulation at
    ``fault_at`` and the baseline never injects at all, so the trajectory
    up to (and including every event strictly before) this time is a pure
    function of (version, settings, seed).
    """
    return settings.fault_at


def run_warm(
    config: PressConfig,
    settings: Phase1Settings = DEFAULT_SETTINGS,
    recorder=None,
    spans=None,
    profiler=None,
) -> PressCluster:
    """Build, start, and run a cluster to :func:`warm_point`.

    The returned cluster (with ``recorder`` attached to its bus, when
    given) is the shared prefix of every phase-1 cell: baseline and fault
    continuations both pick up from exactly here.  ``spans`` (a
    :class:`~repro.obs.spans.SpanCollector`) attaches before the first
    event, so every request the run ever issues is trace-complete.
    ``profiler`` (a :class:`~repro.obs.profiler.FlightRecorder`) attaches
    the wall-clock flight recorder; unlike spans it observes host time
    only, so it composes freely with warm restores.

    Global id counters rewind first, so the request/message/span ids a
    run draws — and embeds in exported traces — depend on the run alone,
    not on how many runs this process executed before it.
    """
    ids.reset_global_ids()
    cluster = build_cluster(config, settings)
    if recorder is not None:
        recorder.attach(cluster.bus)
    if spans is not None:
        cluster.engine.spans = spans
    if profiler is not None:
        cluster.engine.profiler = profiler
    cluster.start()
    cluster.run_until(warm_point(settings))
    return cluster


def run_baseline(
    config: PressConfig,
    settings: Phase1Settings = DEFAULT_SETTINGS,
    recorder=None,
    warm_cluster: Optional[PressCluster] = None,
    spans=None,
    profiler=None,
) -> Tuple[float, PressCluster]:
    """Fault-free run; returns (Tn in paper units, cluster).

    ``recorder`` (an :class:`~repro.obs.bus.EventRecorder` or any object
    with ``attach(bus)``) is subscribed to the cluster's event bus before
    the run starts.  ``warm_cluster`` continues a prepared warm segment
    (typically restored from a checkpoint) instead of simulating one; its
    recorder was attached before the warm segment ran, so the two
    arguments are mutually exclusive.  ``spans`` requires a cold run: a
    checkpoint restored mid-stream has no spans for its in-flight
    requests, which would violate the trace-completeness invariant.
    ``profiler`` observes wall-clock only, so it attaches to cold and
    warm-restored clusters alike (checkpoints never carry one).
    """
    if warm_cluster is None:
        cluster = run_warm(config, settings, recorder, spans, profiler)
    elif recorder is not None:
        raise ValueError("warm_cluster already carries its recorder")
    elif spans is not None:
        raise ValueError("span collection requires a cold run")
    else:
        cluster = warm_cluster
        if profiler is not None:
            cluster.engine.profiler = profiler
    end = settings.warm + settings.fault_at
    cluster.run_until(end)
    tn = cluster.measured_rate(settings.warm, end)
    return tn, cluster


def run_single_fault(
    config: PressConfig,
    kind: FaultKind,
    settings: Phase1Settings = DEFAULT_SETTINGS,
    target: Optional[str] = DEFAULT_TARGET,
    normal_throughput: Optional[float] = None,
    recorder=None,
    warm_cluster: Optional[PressCluster] = None,
    spans=None,
    profiler=None,
) -> Tuple[ExperimentRecord, PressCluster]:
    """Inject ``kind`` into a running cluster and record the response.

    The fault is scheduled only once the warm segment has reached the
    injection instant, so the pre-injection simulation is byte-identical
    whether the warm segment was simulated here (cold) or restored from a
    checkpoint (``warm_cluster``).  ``spans`` requires a cold run (see
    :func:`run_baseline`); ``profiler`` attaches either way.
    """
    if warm_cluster is None:
        cluster = run_warm(config, settings, recorder, spans, profiler)
    elif recorder is not None:
        raise ValueError("warm_cluster already carries its recorder")
    elif spans is not None:
        raise ValueError("span collection requires a cold run")
    else:
        cluster = warm_cluster
        if profiler is not None:
            cluster.engine.profiler = profiler

    duration = settings.fault_duration if kind in DURATION_FAULTS else 0.0
    spec = FaultSpec(
        kind=kind,
        target=None if kind is FaultKind.SWITCH_DOWN else target,
        at=settings.fault_at,
        duration=duration,
    )
    cluster.mendosus.schedule(spec)

    # Expected end of the fault's active period (node crashes clear at
    # reboot; faults that kill the process recover via the restart
    # daemon — give it time before judging the cluster partitioned).
    if kind is FaultKind.NODE_CRASH:
        active = cluster.nodes[target].reboot_time + settings.restart_delay
    elif kind in (
        FaultKind.APP_CRASH,
        FaultKind.BAD_PARAM_NULL,
        FaultKind.BAD_PARAM_OFFSET,
        FaultKind.BAD_PARAM_SIZE,
    ):
        active = max(duration, settings.restart_delay)
    else:
        active = duration
    observe_until = settings.fault_at + active + settings.post_recovery
    cluster.run_until(observe_until)

    reset_at: Optional[float] = None
    if cluster.is_partitioned():
        reset_at = cluster.engine.now
        cluster.operator_reset()
        cluster.run_until(observe_until + settings.tail)
    end = cluster.engine.now

    tn = (
        normal_throughput
        if normal_throughput is not None
        else cluster.measured_rate(settings.warm, settings.fault_at)
    )
    timeline = _collect_timeline(cluster, config.name, kind.value, end)

    ann = cluster.annotations
    injected_at = _first_after(ann, "fault-injected", 0.0) or settings.fault_at
    cleared = _first_after(ann, "fault-cleared", injected_at)
    restarts = [
        t for t in ann.times("process-restarted") if t > injected_at
    ]
    if reset_at is not None:
        restarts = [t for t in restarts if t < reset_at]
    cleared_at = max(
        [x for x in (cleared, *restarts) if x is not None],
        default=injected_at,
    )
    detection = _detection_time(ann, injected_at)
    rejoined = [
        t
        for t in ann.times("rejoined")
        if t > injected_at and (reset_at is None or t < reset_at)
    ]
    record = ExperimentRecord(
        version=config.name,
        fault=kind.value,
        timeline=timeline,
        normal_throughput=tn,
        injected_at=injected_at,
        cleared_at=cleared_at,
        end_time=end,
        reset_at=reset_at,
        # "Recovered" means the service restored itself *without* the
        # operator; a simulated reset re-merging the cluster afterwards
        # does not count.
        recovered_fully=reset_at is None and not cluster.is_partitioned(),
        detection_at=detection,
        rejoined_at=max(rejoined) if rejoined else None,
    )
    return record, cluster


def run_by_name(
    version: str,
    kind: FaultKind,
    settings: Phase1Settings = DEFAULT_SETTINGS,
    target: Optional[str] = DEFAULT_TARGET,
) -> Tuple[ExperimentRecord, PressCluster]:
    return run_single_fault(ALL_VERSIONS_EXTENDED[version], kind, settings, target)


def _first_after(ann, label: str, after: float) -> Optional[float]:
    times = [t for t in ann.times(label) if t >= after]
    return min(times) if times else None


def _detection_time(ann, injected_at: float) -> Optional[float]:
    """Earliest sign the service noticed: reconfiguration or fail-fast."""
    candidates = [
        t
        for label in ("reconfigured", "fail-fast")
        for t in ann.times(label)
        if t >= injected_at
    ]
    return min(candidates) if candidates else None
