"""Persistent result store for the phase-1 campaign.

Each campaign *cell* — one simulated run, either a fault-free baseline
or a single-fault experiment — is cached under a key built from
everything that determines its outcome:

    (version, settings.sim_key(), fault, cell seed, schema version)

The schema version is bumped whenever the simulation or the extraction
code changes in a result-affecting way, which invalidates every cached
cell at once.  Two store flavors share one interface:

* :class:`MemoryStore` — a process-local dict, the default.  Matches the
  lifetime semantics of the old module-global campaign cache.
* :class:`DiskStore` — one JSON file per cell under a cache directory,
  so campaigns survive interpreter restarts and are shared between the
  worker processes of a parallel run.  Corrupted or truncated files are
  treated as misses (the cell is simply re-run), and writes are atomic
  (tmp file + rename) so a crashed run never poisons the cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

#: Bump when simulation/extraction changes invalidate previously cached
#: cell results.  History:
#:   v1 — original payload shape ({"kind", "tn"/"profile", "elapsed"}).
#:   v2 — payloads carry a per-cell "telemetry" summary (event counts +
#:        metrics registry snapshot) recorded by the obs subsystem.
#:   v3 — payloads carry the observatory digest ("observatory": online
#:        stage transitions + SLO health), the detector-vs-ground-truth
#:        "divergence" report (fault cells), a compact "timeline" for
#:        the campaign dashboard, and telemetry "subscriber_errors".
#:   v4 — per-(version, rep) warm-group seeds: the baseline and every
#:        fault of a replication now share one derived seed (the fault
#:        is no longer folded in), so the warm-start layer can simulate
#:        each group's pre-injection prefix once; payloads carry a
#:        volatile "warm_start" provenance key (see
#:        VOLATILE_PAYLOAD_KEYS).
#:   v5 — adaptive replication: the settings key is now
#:        ``Phase1Settings.sim_key()`` (grid-layout knobs like the
#:        replication count no longer shard the cache universe, so
#:        fixed and adaptive campaigns share cells), the on-disk key
#:        record carries the replication index ("rep"), and the store
#:        gains a repetition-summary namespace (per-stream rep counts,
#:        stopping reasons, and CI half widths under ``repetition/``).
#:   v6 — request-scoped observability: the observatory digest gains
#:        always-on "latency" (streaming P² quantile sketches, overall
#:        and per online stage) and "attribution" (per-mechanism
#:        unavailability cost table) sections, the event stream gains
#:        ``workload.request.done``, and phase-1 runs rewind the global
#:        id counters at the warm boundary so exported traces embed
#:        run-deterministic request ids.
#:   v7 — cluster scale and LP sharding become settings: the settings
#:        key gains ``n_nodes`` (cluster size, previously fixed at the
#:        paper's 4) and ``shards`` (logical-process partitioning of the
#:        engine, repro.sim.lp).  Payloads are byte-identical for every
#:        ``shards`` value — it is keyed, like ``fastpath``, only so a
#:        verification run cannot be satisfied from another mode's
#:        cache.
#:   v8 — parallel LP execution: the settings key gains ``lp_backend``
#:        (serial / threads / processes execution of the sharded
#:        engine, repro.sim.lpexec).  Same contract as ``shards``:
#:        payloads are byte-identical for every backend, keyed only so
#:        a verification run actually runs.
SCHEMA_VERSION = 8

#: Environment variable consulted by the CLI for a default cache dir.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Subdirectory of a DiskStore holding per-stream repetition summaries
#: (schema v5) — beside the two-hex-char cell shards, like `warmstart/`.
SUMMARY_DIR = "repetition"

#: Subdirectory of a DiskStore holding per-cell wall-clock perf records
#: (the flight-recorder digests; see repro.obs.profiler).  Like
#: ``warmstart/`` and ``repetition/``, it sits beside the two-hex-char
#: cell shards, so ``iter_cells`` and ``store-diff`` never see it.  No
#: schema bump accompanies it: perf records are volatile host timings,
#: never part of the deterministic payload, so existing cached cells
#: stay valid.
PERF_DIR = "perf"

#: Payload keys that legitimately differ between two executions of the
#: *same* cell: host wall-clock (total / warm-restore split), warm-start
#: checkpoint provenance, and the in-flight flight-recorder record (the
#: runner strips "perf" into the PERF_DIR namespace before put(), this
#: entry is defense in depth).  Everything else is simulation output and
#: must be bit-identical run to run — that is the contract
#: :func:`payload_fingerprint` checks and the CI warm/cold double-run
#: diff enforces.
VOLATILE_PAYLOAD_KEYS = ("elapsed", "restore_elapsed", "warm_start", "perf")


def payload_fingerprint(payload: dict) -> str:
    """Stable digest of a cell payload's *deterministic* content.

    Volatile keys (:data:`VOLATILE_PAYLOAD_KEYS`) are dropped; the rest
    is hashed over canonical JSON.  Two runs of one cell — cold, warm
    started, serial, parallel — must agree on this digest exactly.
    """
    deterministic = {
        k: v for k, v in payload.items() if k not in VOLATILE_PAYLOAD_KEYS
    }
    canonical = json.dumps(
        deterministic, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class CellKey:
    """Identity of one campaign cell's result.

    ``rep`` (the replication index) is provenance, not identity: the
    seed already encodes it, so it is written into the on-disk key
    record — the dashboard groups per-replication CI bands by it — but
    kept out of the digest, and two keys differing only in ``rep``
    address the same cell.
    """

    version: str
    settings_key: tuple
    fault: Optional[str]  # None for the fault-free baseline run
    seed: int
    schema: int = SCHEMA_VERSION
    rep: Optional[int] = field(default=None, compare=False)

    def digest(self) -> str:
        """Stable hex digest used as the on-disk filename."""
        canonical = repr(
            (
                self.version,
                self.settings_key,
                self.fault,
                self.seed,
                self.schema,
            )
        )
        return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class SummaryKey:
    """Identity of one stream's repetition summary.

    A *stream* is the replication series of one (version, fault) pair
    under one repetition policy.  Unlike cells, summaries are
    policy-dependent — how many reps ran and why the stream stopped is
    exactly what the policy decides — so the policy key is part of the
    identity and differently-policied campaigns over one store keep
    separate summaries.
    """

    version: str
    settings_key: tuple
    fault: Optional[str]  # None = the baseline stream
    policy_key: tuple
    schema: int = SCHEMA_VERSION

    def digest(self) -> str:
        canonical = repr(
            (
                self.version,
                self.settings_key,
                self.fault,
                self.policy_key,
                self.schema,
            )
        )
        return hashlib.sha256(canonical.encode()).hexdigest()


class ResultStore:
    """Interface: ``get`` returns a payload dict or ``None`` (miss)."""

    def get(self, key: CellKey) -> Optional[dict]:  # pragma: no cover
        raise NotImplementedError

    def put(self, key: CellKey, payload: dict) -> None:  # pragma: no cover
        raise NotImplementedError

    def clear(self) -> None:  # pragma: no cover
        raise NotImplementedError

    def drain_notices(self) -> "list[str]":
        """One-line run-telemetry notices accumulated since last drain.

        A schema bump must not silently re-run cached cells: stores that
        notice stale-generation results report them here, and the
        campaign surfaces the notices in its report.
        """
        return []

    # -- repetition summaries (schema v5) -----------------------------
    def get_summary(self, key: SummaryKey) -> Optional[dict]:
        return None

    def put_summary(self, key: SummaryKey, payload: dict) -> None:
        pass

    # -- volatile perf records (flight recorder) ----------------------
    def get_perf(self, key: CellKey) -> Optional[dict]:
        return None

    def put_perf(self, key: CellKey, record: dict) -> None:
        pass

    def iter_perf(self):
        """Yield ``(key_info, record)`` per stored perf record."""
        return iter(())


class MemoryStore(ResultStore):
    """Process-local store; survives nothing, costs nothing."""

    def __init__(self) -> None:
        self._cells: Dict[CellKey, dict] = {}
        self._summaries: Dict[SummaryKey, dict] = {}
        self._perf: Dict[CellKey, dict] = {}

    def get(self, key: CellKey) -> Optional[dict]:
        return self._cells.get(key)

    def put(self, key: CellKey, payload: dict) -> None:
        self._cells[key] = payload

    def get_summary(self, key: SummaryKey) -> Optional[dict]:
        return self._summaries.get(key)

    def put_summary(self, key: SummaryKey, payload: dict) -> None:
        self._summaries[key] = payload

    def get_perf(self, key: CellKey) -> Optional[dict]:
        return self._perf.get(key)

    def put_perf(self, key: CellKey, record: dict) -> None:
        self._perf[key] = record

    def iter_perf(self):
        for key, record in self._perf.items():
            yield (
                {
                    "version": key.version,
                    "fault": key.fault,
                    "seed": key.seed,
                    "schema": key.schema,
                    "rep": key.rep,
                },
                record,
            )

    def clear(self) -> None:
        self._cells.clear()
        self._summaries.clear()
        self._perf.clear()

    def __len__(self) -> int:
        return len(self._cells)


class DiskStore(ResultStore):
    """JSON-per-cell store under ``cache_dir``.

    Files are sharded by the first two digest characters to keep
    directory listings manageable for full campaigns (hundreds of
    cells per (settings, schema) generation).
    """

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        except FileExistsError:
            raise NotADirectoryError(
                f"cache dir {self.cache_dir} exists and is not a directory"
            ) from None
        # Misses whose key exists under an older schema version, counted
        # per old version for drain_notices().
        self._stale_schema_hits: Dict[int, int] = {}

    def _path(self, key: CellKey) -> Path:
        digest = key.digest()
        return self.cache_dir / digest[:2] / f"{digest}.json"

    def get(self, key: CellKey) -> Optional[dict]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            self._note_stale_generation(key)
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # Truncated or corrupted: treat as a miss so the cell is
            # re-run rather than crashing the campaign.
            return None
        if not isinstance(data, dict) or "payload" not in data:
            return None
        return data["payload"]

    def put(self, key: CellKey, payload: dict) -> None:
        record = {
            "key": {
                "version": key.version,
                "fault": key.fault,
                "seed": key.seed,
                "schema": key.schema,
                "rep": key.rep,
            },
            "payload": payload,
        }
        self._write_record(self._path(key), record)

    # -- repetition summaries (schema v5) -----------------------------
    def _summary_path(self, key: SummaryKey) -> Path:
        return self.cache_dir / SUMMARY_DIR / f"{key.digest()}.json"

    def get_summary(self, key: SummaryKey) -> Optional[dict]:
        try:
            with open(self._summary_path(key), "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(data, dict) or "payload" not in data:
            return None
        return data["payload"]

    def put_summary(self, key: SummaryKey, payload: dict) -> None:
        record = {
            "summary_key": {
                "version": key.version,
                "fault": key.fault,
                "policy": list(key.policy_key),
                "schema": key.schema,
            },
            "payload": payload,
        }
        self._write_record(self._summary_path(key), record)

    def iter_summaries(self):
        """Yield ``(key_info, payload)`` per readable repetition summary."""
        root = self.cache_dir / SUMMARY_DIR
        if not root.is_dir():
            return
        for path in sorted(root.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    data = json.load(fh)
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue
            if (
                not isinstance(data, dict)
                or "payload" not in data
                or "summary_key" not in data
            ):
                continue
            yield data["summary_key"], data["payload"]

    # -- volatile perf records (flight recorder) ----------------------
    def _perf_path(self, key: CellKey) -> Path:
        return self.cache_dir / PERF_DIR / f"{key.digest()}.json"

    def get_perf(self, key: CellKey) -> Optional[dict]:
        try:
            with open(self._perf_path(key), "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(data, dict) or "perf" not in data:
            return None
        return data["perf"]

    def put_perf(self, key: CellKey, record: dict) -> None:
        self._write_record(
            self._perf_path(key),
            {
                "key": {
                    "version": key.version,
                    "fault": key.fault,
                    "seed": key.seed,
                    "schema": key.schema,
                    "rep": key.rep,
                },
                "perf": record,
            },
        )

    def iter_perf(self):
        """Yield ``(key_info, record)`` per readable stored perf record.

        A reporting walk like :meth:`iter_cells` — unreadable or foreign
        files are skipped, and newest-schema filtering is the caller's
        concern (perf records carry their cell's schema in ``key``).
        """
        root = self.cache_dir / PERF_DIR
        if not root.is_dir():
            return
        for path in sorted(root.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    data = json.load(fh)
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue
            if (
                not isinstance(data, dict)
                or "perf" not in data
                or "key" not in data
            ):
                continue
            yield data["key"], data["perf"]

    @staticmethod
    def _write_record(path: Path, record: dict) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: never leave a half-written record visible.
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _note_stale_generation(self, key: CellKey) -> None:
        """A miss at the current schema: check for older-schema results.

        Finding one means a schema bump (not a cold cache) is forcing the
        re-run — worth a notice instead of mutely re-simulating.
        """
        for old in range(1, key.schema):
            old_key = dataclasses.replace(key, schema=old)
            if self._path(old_key).exists():
                self._stale_schema_hits[old] = (
                    self._stale_schema_hits.get(old, 0) + 1
                )
                return

    def drain_notices(self) -> "list[str]":
        notices = [
            f"cache invalidated (schema v{old}\u2192v{SCHEMA_VERSION}): "
            f"{n} cell(s) re-run"
            for old, n in sorted(self._stale_schema_hits.items())
        ]
        self._stale_schema_hits = {}
        return notices

    def iter_cells(self):
        """Yield ``(key_info, payload)`` for every readable cached cell.

        ``key_info`` is the JSON key dict written by :meth:`put`
        (version / fault / seed / schema).  Unreadable or foreign files
        are skipped — this is a reporting walk (the campaign dashboard),
        not a cache lookup, so it must tolerate a dirty directory.
        """
        for shard in sorted(self.cache_dir.iterdir()):
            if not self._is_shard(shard):
                continue
            for cell in sorted(shard.glob("*.json")):
                try:
                    with open(cell, "r", encoding="utf-8") as fh:
                        data = json.load(fh)
                except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                    continue
                if (
                    not isinstance(data, dict)
                    or "payload" not in data
                    or "key" not in data
                ):
                    continue
                yield data["key"], data["payload"]

    @staticmethod
    def _is_shard(path: Path) -> bool:
        """Cell shards are the two-hex-char directories; siblings like
        ``warmstart/``, ``repetition/`` and ``perf/`` are other
        namespaces."""
        return path.is_dir() and len(path.name) == 2

    def clear(self) -> None:
        """Remove every cached cell, repetition summary, and perf record
        (the directory itself is kept)."""
        for shard in self.cache_dir.iterdir():
            if (
                not self._is_shard(shard)
                and shard.name != SUMMARY_DIR
                and shard.name != PERF_DIR
            ):
                continue
            for cell in shard.glob("*.json"):
                try:
                    cell.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        return sum(
            1
            for shard in self.cache_dir.iterdir()
            if self._is_shard(shard)
            for _ in shard.glob("*.json")
        )


def open_store(cache_dir: Optional[Union[str, Path]]) -> ResultStore:
    """A :class:`DiskStore` when a directory is given, else memory."""
    if cache_dir is None:
        return MemoryStore()
    return DiskStore(cache_dir)
