"""Persistent result store for the phase-1 campaign.

Each campaign *cell* — one simulated run, either a fault-free baseline
or a single-fault experiment — is cached under a key built from
everything that determines its outcome:

    (version, settings.cache_key(), fault, cell seed, schema version)

The schema version is bumped whenever the simulation or the extraction
code changes in a result-affecting way, which invalidates every cached
cell at once.  Two store flavors share one interface:

* :class:`MemoryStore` — a process-local dict, the default.  Matches the
  lifetime semantics of the old module-global campaign cache.
* :class:`DiskStore` — one JSON file per cell under a cache directory,
  so campaigns survive interpreter restarts and are shared between the
  worker processes of a parallel run.  Corrupted or truncated files are
  treated as misses (the cell is simply re-run), and writes are atomic
  (tmp file + rename) so a crashed run never poisons the cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

#: Bump when simulation/extraction changes invalidate previously cached
#: cell results.  History:
#:   v1 — original payload shape ({"kind", "tn"/"profile", "elapsed"}).
#:   v2 — payloads carry a per-cell "telemetry" summary (event counts +
#:        metrics registry snapshot) recorded by the obs subsystem.
#:   v3 — payloads carry the observatory digest ("observatory": online
#:        stage transitions + SLO health), the detector-vs-ground-truth
#:        "divergence" report (fault cells), a compact "timeline" for
#:        the campaign dashboard, and telemetry "subscriber_errors".
#:   v4 — per-(version, rep) warm-group seeds: the baseline and every
#:        fault of a replication now share one derived seed (the fault
#:        is no longer folded in), so the warm-start layer can simulate
#:        each group's pre-injection prefix once; payloads carry a
#:        volatile "warm_start" provenance key (see
#:        VOLATILE_PAYLOAD_KEYS).
SCHEMA_VERSION = 4

#: Environment variable consulted by the CLI for a default cache dir.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Payload keys that legitimately differ between two executions of the
#: *same* cell: host wall-clock and warm-start checkpoint provenance.
#: Everything else is simulation output and must be bit-identical run to
#: run — that is the contract :func:`payload_fingerprint` checks and the
#: CI warm/cold double-run diff enforces.
VOLATILE_PAYLOAD_KEYS = ("elapsed", "warm_start")


def payload_fingerprint(payload: dict) -> str:
    """Stable digest of a cell payload's *deterministic* content.

    Volatile keys (:data:`VOLATILE_PAYLOAD_KEYS`) are dropped; the rest
    is hashed over canonical JSON.  Two runs of one cell — cold, warm
    started, serial, parallel — must agree on this digest exactly.
    """
    deterministic = {
        k: v for k, v in payload.items() if k not in VOLATILE_PAYLOAD_KEYS
    }
    canonical = json.dumps(
        deterministic, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class CellKey:
    """Identity of one campaign cell's result."""

    version: str
    settings_key: tuple
    fault: Optional[str]  # None for the fault-free baseline run
    seed: int
    schema: int = SCHEMA_VERSION

    def digest(self) -> str:
        """Stable hex digest used as the on-disk filename."""
        canonical = repr(
            (
                self.version,
                self.settings_key,
                self.fault,
                self.seed,
                self.schema,
            )
        )
        return hashlib.sha256(canonical.encode()).hexdigest()


class ResultStore:
    """Interface: ``get`` returns a payload dict or ``None`` (miss)."""

    def get(self, key: CellKey) -> Optional[dict]:  # pragma: no cover
        raise NotImplementedError

    def put(self, key: CellKey, payload: dict) -> None:  # pragma: no cover
        raise NotImplementedError

    def clear(self) -> None:  # pragma: no cover
        raise NotImplementedError

    def drain_notices(self) -> "list[str]":
        """One-line run-telemetry notices accumulated since last drain.

        A schema bump must not silently re-run cached cells: stores that
        notice stale-generation results report them here, and the
        campaign surfaces the notices in its report.
        """
        return []


class MemoryStore(ResultStore):
    """Process-local store; survives nothing, costs nothing."""

    def __init__(self) -> None:
        self._cells: Dict[CellKey, dict] = {}

    def get(self, key: CellKey) -> Optional[dict]:
        return self._cells.get(key)

    def put(self, key: CellKey, payload: dict) -> None:
        self._cells[key] = payload

    def clear(self) -> None:
        self._cells.clear()

    def __len__(self) -> int:
        return len(self._cells)


class DiskStore(ResultStore):
    """JSON-per-cell store under ``cache_dir``.

    Files are sharded by the first two digest characters to keep
    directory listings manageable for full campaigns (hundreds of
    cells per (settings, schema) generation).
    """

    def __init__(self, cache_dir: Union[str, Path]) -> None:
        self.cache_dir = Path(cache_dir)
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        except FileExistsError:
            raise NotADirectoryError(
                f"cache dir {self.cache_dir} exists and is not a directory"
            ) from None
        # Misses whose key exists under an older schema version, counted
        # per old version for drain_notices().
        self._stale_schema_hits: Dict[int, int] = {}

    def _path(self, key: CellKey) -> Path:
        digest = key.digest()
        return self.cache_dir / digest[:2] / f"{digest}.json"

    def get(self, key: CellKey) -> Optional[dict]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except FileNotFoundError:
            self._note_stale_generation(key)
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # Truncated or corrupted: treat as a miss so the cell is
            # re-run rather than crashing the campaign.
            return None
        if not isinstance(data, dict) or "payload" not in data:
            return None
        return data["payload"]

    def put(self, key: CellKey, payload: dict) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "key": {
                "version": key.version,
                "fault": key.fault,
                "seed": key.seed,
                "schema": key.schema,
            },
            "payload": payload,
        }
        # Atomic publish: never leave a half-written cell visible.
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _note_stale_generation(self, key: CellKey) -> None:
        """A miss at the current schema: check for older-schema results.

        Finding one means a schema bump (not a cold cache) is forcing the
        re-run — worth a notice instead of mutely re-simulating.
        """
        for old in range(1, key.schema):
            old_key = dataclasses.replace(key, schema=old)
            if self._path(old_key).exists():
                self._stale_schema_hits[old] = (
                    self._stale_schema_hits.get(old, 0) + 1
                )
                return

    def drain_notices(self) -> "list[str]":
        notices = [
            f"cache invalidated (schema v{old}\u2192v{SCHEMA_VERSION}): "
            f"{n} cell(s) re-run"
            for old, n in sorted(self._stale_schema_hits.items())
        ]
        self._stale_schema_hits = {}
        return notices

    def iter_cells(self):
        """Yield ``(key_info, payload)`` for every readable cached cell.

        ``key_info`` is the JSON key dict written by :meth:`put`
        (version / fault / seed / schema).  Unreadable or foreign files
        are skipped — this is a reporting walk (the campaign dashboard),
        not a cache lookup, so it must tolerate a dirty directory.
        """
        for shard in sorted(self.cache_dir.iterdir()):
            if not shard.is_dir():
                continue
            for cell in sorted(shard.glob("*.json")):
                try:
                    with open(cell, "r", encoding="utf-8") as fh:
                        data = json.load(fh)
                except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                    continue
                if (
                    not isinstance(data, dict)
                    or "payload" not in data
                    or "key" not in data
                ):
                    continue
                yield data["key"], data["payload"]

    def clear(self) -> None:
        """Remove every cached cell (the directory itself is kept)."""
        for shard in self.cache_dir.iterdir():
            if not shard.is_dir():
                continue
            for cell in shard.glob("*.json"):
                try:
                    cell.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        return sum(
            1
            for shard in self.cache_dir.iterdir()
            if shard.is_dir()
            for _ in shard.glob("*.json")
        )


def open_store(cache_dir: Optional[Union[str, Path]]) -> ResultStore:
    """A :class:`DiskStore` when a directory is given, else memory."""
    if cache_dir is None:
        return MemoryStore()
    return DiskStore(cache_dir)
