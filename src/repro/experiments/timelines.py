"""Shared machinery for the timeline figures (Figures 2-5).

Each figure is a set of phase-1 runs — one per PRESS version — around a
single injected fault, rendered as a bucketed throughput series with the
key instants annotated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.extract import ExperimentRecord
from ..faults.spec import FaultKind
from ..press.config import ALL_VERSIONS, ALL_VERSIONS_EXTENDED
from .phase1 import run_single_fault
from .settings import DEFAULT_SETTINGS, Phase1Settings


@dataclass
class TimelineFigure:
    """One figure: per-version timelines for a single fault."""

    fault: FaultKind
    records: Dict[str, ExperimentRecord] = field(default_factory=dict)

    def series(self, version: str, bucket: float = 10.0) -> List[Tuple[float, float]]:
        """Coarsened (time, req/s) points for plotting/printing."""
        tl = self.records[version].timeline
        if not tl.series:
            return []
        end = tl.series[-1][0] + tl.bucket_width
        out = []
        t = 0.0
        while t < end:
            out.append((t, tl.mean_rate(t, t + bucket)))
            t += bucket
        return out

    def end_members_ok(self, version: str) -> bool:
        return self.records[version].recovered_fully


def run_timeline_figure(
    fault: FaultKind,
    versions: Optional[List[str]] = None,
    settings: Phase1Settings = DEFAULT_SETTINGS,
) -> TimelineFigure:
    names = versions if versions is not None else list(ALL_VERSIONS)
    fig = TimelineFigure(fault=fault)
    for name in names:
        record, _cluster = run_single_fault(ALL_VERSIONS_EXTENDED[name], fault, settings)
        fig.records[name] = record
    return fig


def format_timeline_figure(
    fig: TimelineFigure, bucket: float = 10.0, title: str = ""
) -> str:
    """ASCII rendering: one row per version, columns are time buckets."""
    lines = []
    if title:
        lines.append(title)
    for version, record in fig.records.items():
        pts = fig.series(version, bucket)
        cells = " ".join(f"{rate:5.0f}" for _t, rate in pts)
        lines.append(f"{version:14s} | {cells}")
        marks = []
        if record.detection_at is not None:
            marks.append(f"detected@{record.detection_at:.1f}s")
        if record.reset_at is not None:
            marks.append(f"operator-reset@{record.reset_at:.1f}s")
        marks.append(
            "recovered" if record.recovered_fully else "left partitioned"
        )
        lines.append(
            f"{'':14s} | injected@{record.injected_at:.1f}s "
            f"cleared@{record.cleared_at:.1f}s " + " ".join(marks)
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The four timeline figures
# ---------------------------------------------------------------------------

def run_figure2(settings: Phase1Settings = DEFAULT_SETTINGS) -> TimelineFigure:
    """Transient link failure (paper shows TCP, TCP-HB, VIA-5)."""
    return run_timeline_figure(FaultKind.LINK_DOWN, settings=settings)


def run_figure3(settings: Phase1Settings = DEFAULT_SETTINGS) -> TimelineFigure:
    """Node crash (hard reboot)."""
    return run_timeline_figure(FaultKind.NODE_CRASH, settings=settings)


def run_figure4(
    settings: Phase1Settings = DEFAULT_SETTINGS,
) -> Dict[str, TimelineFigure]:
    """Kernel-memory exhaustion (TCP versions; VIA immune) and
    pinnable-memory exhaustion (VIA-PRESS-5's zero-copy cache)."""
    return {
        "kernel-memory": run_timeline_figure(
            FaultKind.KERNEL_MEMORY, settings=settings
        ),
        "memory-pinning": run_timeline_figure(
            FaultKind.MEMORY_PINNING,
            versions=["TCP-PRESS", "VIA-PRESS-0", "VIA-PRESS-5"],
            settings=settings,
        ),
    }


def run_figure5(settings: Phase1Settings = DEFAULT_SETTINGS) -> TimelineFigure:
    """NULL pointer passed to the send API."""
    return run_timeline_figure(FaultKind.BAD_PARAM_NULL, settings=settings)
