"""Adaptive replication: stopping rules and a campaign rep allocator.

Campaign cost used to scale linearly with a fixed ``replications`` count
— wasteful for low-variance cells and statistically weak for
high-variance ones.  Following the adaptive-stopping-rule approach of
Mittal et al. (SC'23 workshops; the design SHARP's ``repeaters`` module
implements), each campaign *stream* — the replication series of one
(version, fault-or-baseline) pair — is instead extended one replication
at a time until its metric is statistically stable:

* :class:`FixedCountRule` — run exactly N replications (the legacy
  behaviour; ``min == max == N``).
* :class:`RelativeStandardErrorRule` — stop once the relative standard
  error of the mean, ``(s / sqrt(n)) / |mean|``, falls below a target.
* :class:`CIHalfWidthRule` — stop once the Student-t confidence
  interval's half width, relative to the mean, falls below a target.
  This is the rule the paper-style AT/AA/P bands are built from: the
  interval the rule converged on is the band that gets reported.

Every rule is bounded by ``min_reps``/``max_reps``: it never stops
before ``min_reps`` samples exist (a variance estimate from one or two
points is noise) and always stops at ``max_reps`` (reported as such, so
an unconverged stream is visible rather than silent).

On top of the per-stream rules sits :class:`RepBudget`: a campaign-level
allocator that spends a global budget of *extra* replications (beyond
each stream's ``min_reps``) on the highest-dispersion streams first, so
a thousand-cell sweep can cap its total cost and still put the
replications where they buy the most variance reduction.

Everything here is pure arithmetic over the sample lists — no
simulation, no randomness — so adaptive campaigns stay exactly as
deterministic as fixed ones: the same payloads produce the same
decisions, serial or parallel, cold or warm-started.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Callable, List, Optional, Sequence, Tuple

#: Stopping reasons recorded per stream (persisted in the result store
#: and asserted identical across runs by the CI stats-smoke job).
REASON_FIXED = "fixed-count"
REASON_CONVERGED = "converged"
REASON_MAX_REPS = "max-reps"
REASON_BUDGET = "budget-exhausted"


# ----------------------------------------------------------------------
# Student-t arithmetic (no scipy in the image; stdlib math only)
# ----------------------------------------------------------------------


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the regularized incomplete beta function,
    evaluated with the modified Lentz method."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        # Even step.
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        # Odd step.
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 3e-15:
            break
    return h


def _betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    # The continued fraction converges fast only below the distribution
    # mode; use the symmetry relation on the other side.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - math.exp(
        math.lgamma(a + b)
        - math.lgamma(b)
        - math.lgamma(a)
        + b * math.log(1.0 - x)
        + a * math.log(x)
    ) * _betacf(b, a, 1.0 - x) / b


def student_t_cdf(t: float, df: int) -> float:
    """CDF of Student's t distribution with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError(f"degrees of freedom must be positive (got {df})")
    x = df / (df + t * t)
    p = 0.5 * _betainc(df / 2.0, 0.5, x)
    return 1.0 - p if t >= 0 else p

def student_t_quantile(p: float, df: int) -> float:
    """Inverse CDF of Student's t: the two-sided CI multiplier is
    ``student_t_quantile(1 - alpha / 2, n - 1)``."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile probability must be in (0, 1), got {p}")
    if df <= 0:
        raise ValueError(f"degrees of freedom must be positive (got {df})")
    if df > 200:
        # Indistinguishable from normal at double precision tolerances
        # that matter here, and the normal inverse is exact in stdlib.
        return NormalDist().inv_cdf(p)
    if p == 0.5:
        return 0.0
    if p < 0.5:
        return -student_t_quantile(1.0 - p, df)
    # Bisection on the CDF: monotone, and the bracket grows until it
    # straddles (heavy df=1 tails need a wide one).
    lo, hi = 0.0, 2.0
    while student_t_cdf(hi, df) < p:
        hi *= 2.0
        if hi > 1e9:  # pragma: no cover - p astronomically close to 1
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if student_t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


def sample_stats(samples: Sequence[float]) -> Tuple[float, float]:
    """(mean, sample standard deviation); std is 0.0 below two samples."""
    n = len(samples)
    if n == 0:
        raise ValueError("no samples")
    mean = math.fsum(samples) / n
    if n < 2:
        return mean, 0.0
    var = math.fsum((x - mean) ** 2 for x in samples) / (n - 1)
    return mean, math.sqrt(var)


def ci_half_width(samples: Sequence[float], confidence: float) -> float:
    """Student-t half width of the two-sided CI of the mean; 0.0 below
    two samples (no variance estimate exists yet)."""
    n = len(samples)
    if n < 2:
        return 0.0
    _, std = sample_stats(samples)
    t = student_t_quantile(0.5 + confidence / 2.0, n - 1)
    return t * std / math.sqrt(n)


def relative_standard_error(samples: Sequence[float]) -> float:
    """RSE of the mean: ``(s / sqrt(n)) / |mean|``.

    Zero-variance samples have RSE 0 whatever the mean; a zero mean with
    nonzero variance is infinitely unstable.
    """
    mean, std = sample_stats(samples)
    if std == 0.0:
        return 0.0
    if mean == 0.0:
        return math.inf
    return (std / math.sqrt(len(samples))) / abs(mean)


# ----------------------------------------------------------------------
# Decisions and rules
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Decision:
    """One rule invocation over a stream's current samples."""

    stop: bool
    reason: str  # REASON_* once stopped; diagnostic hint while running
    n: int
    mean: float
    std: float
    rse: float
    half_width: float  #: Student-t CI half width at the rule's confidence

    @property
    def rel_half_width(self) -> float:
        if self.mean == 0.0:
            return math.inf if self.half_width > 0 else 0.0
        return self.half_width / abs(self.mean)

    #: The allocator ranks continue-requests by this: streams whose mean
    #: is least pinned down get the next replication first.
    @property
    def dispersion(self) -> float:
        return max(self.rse, self.rel_half_width)


class StoppingRule:
    """Decides, per stream, whether another replication is needed."""

    name: str = "rule"

    def __init__(self, min_reps: int, max_reps: int, confidence: float = 0.95):
        if min_reps < 1:
            raise ValueError(
                f"min_reps must be >= 1 (got {min_reps}): every stream "
                "needs at least one replication"
            )
        if max_reps < min_reps:
            raise ValueError(
                f"max_reps ({max_reps}) must be >= min_reps ({min_reps})"
            )
        if not 0.0 < confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        self.min_reps = int(min_reps)
        self.max_reps = int(max_reps)
        self.confidence = float(confidence)

    # -- shared bookkeeping -------------------------------------------
    def _decision(
        self, samples: Sequence[float], stop: bool, reason: str
    ) -> Decision:
        mean, std = sample_stats(samples)
        return Decision(
            stop=stop,
            reason=reason,
            n=len(samples),
            mean=mean,
            std=std,
            rse=relative_standard_error(samples),
            half_width=ci_half_width(samples, self.confidence),
        )

    def decide(self, samples: Sequence[float]) -> Decision:
        n = len(samples)
        if n < self.min_reps:
            return self._decision(samples, False, "below-min-reps")
        converged = self.converged(samples)
        if converged:
            return self._decision(samples, True, self.stop_reason())
        if n >= self.max_reps:
            return self._decision(samples, True, REASON_MAX_REPS)
        return self._decision(samples, False, "unconverged")

    # -- rule-specific ------------------------------------------------
    def converged(self, samples: Sequence[float]) -> bool:
        raise NotImplementedError

    def stop_reason(self) -> str:
        return REASON_CONVERGED


class FixedCountRule(StoppingRule):
    """Exactly N replications — the legacy ``replications: int`` mode."""

    name = "fixed"

    def __init__(self, count: int, confidence: float = 0.95):
        super().__init__(count, count, confidence)

    def converged(self, samples: Sequence[float]) -> bool:
        return len(samples) >= self.max_reps

    def stop_reason(self) -> str:
        return REASON_FIXED


class RelativeStandardErrorRule(StoppingRule):
    """Stop when the RSE of the mean drops to ``target`` or below."""

    name = "rse"

    def __init__(
        self,
        target: float = 0.05,
        min_reps: int = 3,
        max_reps: int = 10,
        confidence: float = 0.95,
    ):
        super().__init__(min_reps, max_reps, confidence)
        if target <= 0.0:
            raise ValueError(f"RSE target must be positive, got {target}")
        self.target = float(target)

    def converged(self, samples: Sequence[float]) -> bool:
        return relative_standard_error(samples) <= self.target


class CIHalfWidthRule(StoppingRule):
    """Stop when the Student-t CI half width, relative to the mean,
    drops to ``target`` or below."""

    name = "ci"

    def __init__(
        self,
        target: float = 0.02,
        min_reps: int = 3,
        max_reps: int = 10,
        confidence: float = 0.95,
    ):
        super().__init__(min_reps, max_reps, confidence)
        if target <= 0.0:
            raise ValueError(
                f"CI half-width target must be positive, got {target}"
            )
        self.target = float(target)

    def converged(self, samples: Sequence[float]) -> bool:
        mean, _ = sample_stats(samples)
        half = ci_half_width(samples, self.confidence)
        if mean == 0.0:
            return half == 0.0
        return half / abs(mean) <= self.target


# ----------------------------------------------------------------------
# Campaign-level budget allocation
# ----------------------------------------------------------------------


class RepBudget:
    """A global budget of extra replications (beyond every stream's
    ``min_reps``), spent highest-dispersion-first.

    ``None`` means unbounded — every stream replicates until its rule
    stops it.  The allocator is deterministic: requests are ranked by
    ``(dispersion descending, stream label ascending)``, so two runs of
    the same campaign always grant the same replications.
    """

    def __init__(self, budget: Optional[int]):
        if budget is not None and budget < 0:
            raise ValueError(f"rep budget must be >= 0, got {budget}")
        self.budget = budget
        self.spent = 0
        self.denied = 0

    @property
    def remaining(self) -> Optional[int]:
        if self.budget is None:
            return None
        return max(0, self.budget - self.spent)

    def allocate(
        self, requests: Sequence[Tuple[str, Decision]]
    ) -> Tuple[List[str], List[str]]:
        """Split continue-requests into (granted, denied) stream labels.

        ``requests`` is ``(label, decision)`` per stream whose rule asked
        for another replication this wave.  Grants debit the budget;
        denials are terminal for the stream (the budget only shrinks).
        """
        ranked = sorted(
            requests, key=lambda item: (-item[1].dispersion, item[0])
        )
        granted: List[str] = []
        denied: List[str] = []
        for label, _decision in ranked:
            if self.remaining is None or self.remaining > 0:
                self.spent += 1
                granted.append(label)
            else:
                self.denied += 1
                denied.append(label)
        return granted, denied


def make_rule(policy) -> StoppingRule:
    """Build the stopping rule a :class:`RepetitionPolicy` describes.

    (Imported lazily by type to keep settings ↔ repeaters dependency-
    free in both directions.)
    """
    if policy.rule == "fixed":
        return FixedCountRule(policy.max_reps, confidence=policy.confidence)
    if policy.rule == "rse":
        return RelativeStandardErrorRule(
            target=policy.rse_target,
            min_reps=policy.min_reps,
            max_reps=policy.max_reps,
            confidence=policy.confidence,
        )
    if policy.rule == "ci":
        return CIHalfWidthRule(
            target=policy.ci_rel_half_width,
            min_reps=policy.min_reps,
            max_reps=policy.max_reps,
            confidence=policy.confidence,
        )
    raise ValueError(
        f"unknown repetition rule {policy.rule!r}; "
        "expected 'fixed', 'rse', or 'ci'"
    )


def run_rule(
    rule: StoppingRule,
    sampler: Callable[[int], float],
) -> Tuple[List[float], Decision]:
    """Drive one rule over a synthetic sample source until it stops.

    ``sampler(i)`` produces the i-th replication's metric.  This is the
    harness the statistical tests (and EXPERIMENTS.md examples) use to
    study rule behaviour on known distributions without simulating.
    """
    samples: List[float] = []
    while True:
        samples.append(float(sampler(len(samples))))
        decision = rule.decide(samples)
        if decision.stop:
            return samples, decision
