"""Warm-state checkpoint cache: simulate each warm segment once.

Every cell of a campaign *warm group* — the fault-free baseline and all
eleven fault cells of one (version, replication) — shares a seed and is
bit-identical up to the injection instant (:func:`~.phase1.warm_point`):
the fault spec only enters the simulation *at* that instant.  Before the
warm-start layer, every cell re-simulated that shared prefix; with it,
the prefix is simulated once per group, captured with
:mod:`repro.sim.snapshot`, and every sibling cell restores the checkpoint
and diverges from there.  The campaign's warm-up cost drops from
O(cells) to O(warm groups).

Storage
-------
Checkpoints live as ``<digest>.ckpt`` files under a ``warmstart/``
directory — placed next to the campaign's
:class:`~repro.experiments.store.DiskStore` cells when there is a cache
dir, or in a run-scoped spool directory (parallel runs), or in a
per-process memory dict (serial in-memory runs).  The digest is a
content address over ``(version, settings.sim_key(), keep_events)``;
anything that could change the warm trajectory changes the file name.

Each file opens with a one-line ASCII header naming the snapshot format
and the Python/marshal versions that produced the blob.  The header is
deliberately *not* part of the file name: when any of those versions
change, the lookup finds the old file, sees the mismatch, and reports an
**invalidated** checkpoint (recounted in the campaign report) instead of
silently missing — the same visibility contract the result store gives
schema bumps.

Hit/miss uniformity
-------------------
``obtain`` *always* returns an unpickled object graph: on a miss it
simulates the warm segment, captures it, persists the blob, and then
restores **from the blob it just wrote**.  Hit and miss cells therefore
continue from identically-constructed objects, so a cell's payload
cannot depend on which side of the cache it landed on.  Equivalence with
fully cold runs (no checkpointing at all) is enforced by
``tests/experiments/test_warmstart.py`` and the CI double-run diff.
"""

from __future__ import annotations

import hashlib
import marshal
import os
import sys
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..sim import snapshot
from ..sim.ids import global_id_state, restore_global_id_state
from .settings import Phase1Settings

#: Statuses a checkpoint lookup can report (cell payload provenance).
STATUS_HIT = "hit"
STATUS_MISS = "miss"
STATUS_INVALIDATED = "invalidated"
#: Cells run with warm-start disabled mark their payloads with this.
STATUS_COLD = "cold"


def _header() -> bytes:
    """First line of every checkpoint file.

    Names every process-level ingredient the blob depends on beyond the
    keyed settings: the snapshot wire format and the Python/marshal
    versions whose bytecode the blob embeds.  A mismatch is a *visible*
    invalidation, not a silent miss.
    """
    return (
        f"repro-warmstart format={snapshot.FORMAT_VERSION} "
        f"python={sys.version_info[0]}.{sys.version_info[1]} "
        f"marshal={marshal.version}\n"
    ).encode("ascii")


def warm_digest(version: str, settings: Phase1Settings, keep_events: bool) -> str:
    """Content address of one warm segment.

    Covers everything that determines the pre-injection trajectory: the
    software version and the full settings cache key (scale, seed,
    utilization, timing layout, fastpath mode, ...), plus whether the
    attached recorder keeps its event backlog (a traced warm segment
    carries more state than an untraced one).
    """
    canonical = repr((version, settings.sim_key(), bool(keep_events)))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class WarmSpec:
    """Picklable description of where a campaign keeps its checkpoints.

    Travels to worker processes as a plain cell argument.  ``dir=None``
    selects the per-process in-memory cache — only useful when the
    cells run in this process (serial campaigns without a cache dir).
    """

    dir: Optional[str] = None


#: Per-process memory cache for ``WarmSpec(dir=None)`` campaigns.
_memory_blobs: Dict[str, bytes] = {}


class WarmStartCache:
    """Checkpoint store + simulate-on-miss logic for one campaign."""

    def __init__(self, spec: WarmSpec):
        self.spec = spec
        self.dir = Path(spec.dir) if spec.dir is not None else None

    # -- blob I/O ------------------------------------------------------
    def _path(self, digest: str) -> Path:
        assert self.dir is not None
        return self.dir / f"{digest}.ckpt"

    def _load(self, digest: str) -> Tuple[Optional[bytes], str]:
        """Return ``(blob, status)``; blob is None on miss/invalidation."""
        if self.dir is None:
            blob = _memory_blobs.get(digest)
            return blob, STATUS_HIT if blob is not None else STATUS_MISS
        try:
            with open(self._path(digest), "rb") as fh:
                header = fh.readline()
                if header != _header():
                    return None, STATUS_INVALIDATED
                return fh.read(), STATUS_HIT
        except FileNotFoundError:
            return None, STATUS_MISS
        except OSError:
            return None, STATUS_MISS

    def _store(self, digest: str, blob: bytes) -> None:
        if self.dir is None:
            _memory_blobs[digest] = blob
            return
        self.dir.mkdir(parents=True, exist_ok=True)
        path = self._path(digest)
        # Atomic publish, like the result store: concurrent workers may
        # race to write the same checkpoint, but the bytes are
        # deterministic, so last-rename-wins is harmless.
        fd, tmp = tempfile.mkstemp(dir=self.dir, prefix=digest, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_header())
                fh.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- warm-segment lifecycle ----------------------------------------
    def ensure(
        self, version: str, settings: Phase1Settings, keep_events: bool
    ) -> dict:
        """Make the checkpoint for this warm group exist; don't restore.

        The campaign's warm wave calls this once per group before the
        cell wave, so sibling cells — even parallel ones — find a
        checkpoint instead of each re-simulating the warm segment.
        """
        digest = warm_digest(version, settings, keep_events)
        blob, status = self._load(digest)
        if blob is not None:
            return {"status": STATUS_HIT, "digest": digest[:16], "elapsed": 0.0}
        start = time.perf_counter()
        blob = self._capture(version, settings, keep_events)
        self._store(digest, blob)
        return {
            "status": status,  # "miss", or "invalidated" when stale
            "digest": digest[:16],
            "bytes": len(blob),
            "elapsed": time.perf_counter() - start,
        }

    def obtain(
        self, version: str, settings: Phase1Settings, keep_events: bool
    ):
        """Warm (cluster, observatory) pair for one cell, plus provenance.

        Always returns freshly *unpickled* objects — see the module
        docstring on hit/miss uniformity.
        """
        digest = warm_digest(version, settings, keep_events)
        blob, status = self._load(digest)
        capture_s = 0.0
        if blob is None:
            start = time.perf_counter()
            blob = self._capture(version, settings, keep_events)
            self._store(digest, blob)
            capture_s = time.perf_counter() - start
        cluster, obs, id_state = snapshot.restore(blob)
        # Continue process-global id streams (request ids, message ids,
        # connection generations) exactly where the captured run stood.
        # Without this, ids issued by the *restoring* process can collide
        # with ids still live in the restored state (pending client
        # requests, unacked messages) and the continuation diverges from
        # cold — the pool-worker bug of ROADMAP item 3.
        restore_global_id_state(id_state)
        provenance = {
            "status": status,  # hit, miss, or invalidated at lookup time
            "digest": digest[:16],
            "bytes": len(blob),
            # Wall-clock spent simulating+capturing the warm segment on a
            # miss (0.0 on a hit); feeds the flight recorder's per-cell
            # snapshot column.  Lives under the volatile "warm_start"
            # payload key, so determinism checks never see it.
            "capture_s": capture_s,
        }
        return cluster, obs, provenance

    def _capture(
        self, version: str, settings: Phase1Settings, keep_events: bool
    ) -> bytes:
        cluster, obs = _simulate_warm(version, settings, keep_events)
        return snapshot.capture((cluster, obs, global_id_state()))


def _simulate_warm(version: str, settings: Phase1Settings, keep_events: bool):
    """Run one warm segment from scratch: the checkpoint's content."""
    from ..obs.bus import EventRecorder
    from ..obs.observatory import Observatory
    from ..press.config import ALL_VERSIONS_EXTENDED
    from .phase1 import run_warm

    obs = Observatory(
        recorder=EventRecorder(keep_events=keep_events),
        env=settings.environment,
    )
    cluster = run_warm(ALL_VERSIONS_EXTENDED[version], settings, recorder=obs)
    return cluster, obs
