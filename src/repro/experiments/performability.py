"""Figures 6-10 and the §9 crossover: phase-2 model evaluations.

All of these consume the memoized phase-1 campaign (every version ×
every fault) and vary only the assumed fault environment — exactly how
the paper reuses its measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.faultload import (
    DAY,
    MONTH,
    WEEK,
    FaultLoad,
    packet_drop_component,
    software_bug_component,
    system_bug_component,
)
from ..core.metric import performability_of
from ..core.model import PerformabilityResult, ProfileSet, evaluate
from ..core.sensitivity import crossover_multiplier
from ..faults.spec import FAULT_CATALOG, FaultKind, category_of
from .campaign import full_campaign
from .settings import DEFAULT_SETTINGS, Phase1Settings

TCP_VERSIONS = ("TCP-PRESS", "TCP-PRESS-HB")
VIA_VERSIONS = ("VIA-PRESS-0", "VIA-PRESS-3", "VIA-PRESS-5")


# ---------------------------------------------------------------------------
# CI bands: phase-2 metrics with replication uncertainty
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MetricBand:
    """One phase-2 metric with its replication confidence interval.

    ``value`` is the point estimate from the *merged* campaign (the
    number every fixed-rep report has always printed); the band is a
    Student-t interval over per-replicate evaluations, so it reflects
    seed-to-seed spread — zero when fewer than two complete replicates
    exist.
    """

    metric: str  # "AA" | "AT" | "P"
    value: float
    mean: float
    half_width: float
    n: int
    confidence: float

    @property
    def lo(self) -> float:
        return self.mean - self.half_width

    @property
    def hi(self) -> float:
        return self.mean + self.half_width

    def covers(self, x: float) -> bool:
        return self.lo <= x <= self.hi


def _usable_load(load: FaultLoad, profiles: ProfileSet) -> FaultLoad:
    """The components of ``load`` this (possibly partial) set measured."""
    return FaultLoad(components=tuple(c for c in load if c.key in profiles))


def banded_evaluation(
    profiles: ProfileSet,
    replicates: List[ProfileSet],
    load: FaultLoad,
    confidence: float = 0.95,
) -> Dict[str, MetricBand]:
    """AA / AT / P of the merged campaign, banded by replicate spread.

    Each replicate ProfileSet (one complete replication of every stream,
    as collected on ``CampaignReport.replicates``) is evaluated against
    the same fault load; the per-replicate metrics give the Student-t
    half widths around the merged point estimates.
    """
    from .repeaters import ci_half_width, sample_stats

    merged = evaluate(profiles, _usable_load(load, profiles))
    point = {
        "AA": merged.availability,
        "AT": merged.average_throughput,
        "P": performability_of(merged),
    }
    samples: Dict[str, List[float]] = {"AA": [], "AT": [], "P": []}
    for ps in replicates:
        r = evaluate(ps, _usable_load(load, ps))
        samples["AA"].append(r.availability)
        samples["AT"].append(r.average_throughput)
        samples["P"].append(performability_of(r))
    out: Dict[str, MetricBand] = {}
    for metric in ("AA", "AT", "P"):
        xs = samples[metric]
        mean = sample_stats(xs)[0] if xs else point[metric]
        out[metric] = MetricBand(
            metric=metric,
            value=point[metric],
            mean=mean,
            half_width=ci_half_width(xs, confidence),
            n=len(xs),
            confidence=confidence,
        )
    return out

#: Base per-node application fault rate used in the §6.3 sensitivity
#: figures.  The paper studies the 1/day..1/month band and does not state
#: which point its sensitivity plots fix; the once-per-month end — the
#: optimistic rate for a mature, well-tested service — reproduces Figure
#: 10's published outcome (two of three VIA versions below the TCP
#: baseline, all below TCP-HB) and leaves Figures 7-9's crossovers at the
#: published positions.
SENSITIVITY_BASE_APP_MTTF = MONTH


# ---------------------------------------------------------------------------
# Figure 6: same fault load for everyone
# ---------------------------------------------------------------------------

@dataclass
class Figure6Row:
    version: str
    app_mttf: float
    availability: float
    performability: float
    unavailability_by_fault: Dict[str, float]


def run_figure6(
    settings: Phase1Settings = DEFAULT_SETTINGS,
    app_mttfs: Tuple[float, ...] = (DAY, MONTH),
) -> List[Figure6Row]:
    camp = full_campaign(settings)
    rows = []
    for version, profiles in camp.items():
        for mttf in app_mttfs:
            load = FaultLoad.table3(app_fault_mttf=mttf)
            result = evaluate(profiles, load)
            rows.append(
                Figure6Row(
                    version=version,
                    app_mttf=mttf,
                    availability=result.availability,
                    performability=performability_of(result),
                    unavailability_by_fault={
                        c.name: c.unavailability for c in result.contributions
                    },
                )
            )
    return rows


def format_figure6(rows: List[Figure6Row]) -> str:
    lines = [
        "Figure 6 — modeled unavailability and performability",
        f"{'version':14s} {'app rate':>9s} {'AA':>9s} {'unavail':>9s} {'P':>9s}"
        "   top contributors",
    ]
    for row in rows:
        label = "1/day" if abs(row.app_mttf - DAY) < 1 else "1/month"
        top = sorted(
            row.unavailability_by_fault.items(), key=lambda kv: -kv[1]
        )[:3]
        tops = ", ".join(f"{k}={v * 100:.3f}%" for k, v in top)
        lines.append(
            f"{row.version:14s} {label:>9s} {row.availability:9.5f}"
            f" {100 * (1 - row.availability):8.3f}% {row.performability:9.1f}"
            f"   {tops}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Figures 7-9: single pessimistic extras for VIA
# ---------------------------------------------------------------------------

@dataclass
class SensitivityFigure:
    """P for TCP (fixed) and VIA (per extra-fault rate)."""

    name: str
    tcp: Dict[str, float]
    via: Dict[str, Dict[str, float]]  # rate label -> version -> P


def _tcp_baseline(
    camp: Dict[str, ProfileSet], base: FaultLoad
) -> Dict[str, float]:
    return {
        v: performability_of(evaluate(camp[v], base)) for v in TCP_VERSIONS
    }


def run_figure7(settings: Phase1Settings = DEFAULT_SETTINGS) -> SensitivityFigure:
    """Transient packet drops charged to VIA only (reported as a fatal
    error → the process terminates itself); TCP tolerates drops."""
    camp = full_campaign(settings)
    base = FaultLoad.table3(app_fault_mttf=SENSITIVITY_BASE_APP_MTTF)
    via = {}
    for label, mttf in (("1/day", DAY), ("1/week", WEEK), ("1/month", MONTH)):
        load = base.with_extra(packet_drop_component(mttf))
        via[label] = {
            v: performability_of(evaluate(camp[v], load)) for v in VIA_VERSIONS
        }
    return SensitivityFigure("figure7-packet-drops", _tcp_baseline(camp, base), via)


def run_figure8(settings: Phase1Settings = DEFAULT_SETTINGS) -> SensitivityFigure:
    """Extra software bugs from VIA's harder programming model.  The
    paper charges TCP one extra bug per month; VIA scales 1/day..1/month."""
    camp = full_campaign(settings)
    base = FaultLoad.table3(app_fault_mttf=SENSITIVITY_BASE_APP_MTTF)
    tcp_load = base.with_extra(software_bug_component(MONTH))
    tcp = {
        v: performability_of(evaluate(camp[v], tcp_load)) for v in TCP_VERSIONS
    }
    via = {}
    for label, mttf in (("1/day", DAY), ("1/week", WEEK), ("1/month", MONTH)):
        load = base.with_extra(software_bug_component(mttf))
        via[label] = {
            v: performability_of(evaluate(camp[v], load)) for v in VIA_VERSIONS
        }
    return SensitivityFigure("figure8-software-bugs", tcp, via)


def run_figure9(settings: Phase1Settings = DEFAULT_SETTINGS) -> SensitivityFigure:
    """System crashes from immature VIA hardware/firmware, modeled as
    switch crashes; TCP (on mature Ethernet) is charged none."""
    camp = full_campaign(settings)
    base = FaultLoad.table3(app_fault_mttf=SENSITIVITY_BASE_APP_MTTF)
    via = {}
    for label, mttf in (
        ("1/week", WEEK),
        ("1/month", MONTH),
        ("1/3months", 3 * MONTH),
    ):
        load = base.with_extra(system_bug_component(mttf))
        via[label] = {
            v: performability_of(evaluate(camp[v], load)) for v in VIA_VERSIONS
        }
    return SensitivityFigure("figure9-system-bugs", _tcp_baseline(camp, base), via)


def run_figure10(settings: Phase1Settings = DEFAULT_SETTINGS) -> SensitivityFigure:
    """The combined pessimistic VIA load: packet drops 1/month + extra
    application bugs 1/2-weeks + system failures 1/month."""
    camp = full_campaign(settings)
    base = FaultLoad.table3(app_fault_mttf=SENSITIVITY_BASE_APP_MTTF)
    load = base.with_extra(
        packet_drop_component(MONTH),
        software_bug_component(2 * WEEK),
        system_bug_component(MONTH),
    )
    via = {
        "combined": {
            v: performability_of(evaluate(camp[v], load)) for v in VIA_VERSIONS
        }
    }
    return SensitivityFigure("figure10-combined", _tcp_baseline(camp, base), via)


def format_sensitivity(fig: SensitivityFigure) -> str:
    lines = [fig.name]
    for v, p in fig.tcp.items():
        lines.append(f"  {v:14s} (baseline) P = {p:8.1f}")
    for label, row in fig.via.items():
        for v, p in row.items():
            lines.append(f"  {v:14s} @ {label:10s} P = {p:8.1f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# §9: the ~4x crossover
# ---------------------------------------------------------------------------

#: The fault classes the paper scales for the crossover statement:
#: "faults in a VIA-based server, such as switch, link, and application
#: errors".
CROSSOVER_KINDS = (
    FaultKind.SWITCH_DOWN,
    FaultKind.LINK_DOWN,
    FaultKind.APP_CRASH,
    FaultKind.APP_HANG,
    FaultKind.BAD_PARAM_NULL,
    FaultKind.BAD_PARAM_OFFSET,
    FaultKind.BAD_PARAM_SIZE,
)


def run_crossover(
    settings: Phase1Settings = DEFAULT_SETTINGS,
    tcp_version: str = "TCP-PRESS",
    app_mttf: float = WEEK,
) -> Dict[str, float]:
    """Multiplier on VIA's switch/link/application fault rates at which
    its performability drops to the TCP baseline (paper: ≈ 4×)."""
    camp = full_campaign(settings)
    base = FaultLoad.table3(app_fault_mttf=app_mttf)
    out = {}
    for via_version in VIA_VERSIONS:
        out[via_version] = crossover_multiplier(
            camp[tcp_version],
            camp[via_version],
            base,
            lambda m: base.scaled(m, CROSSOVER_KINDS),
        )
    return out
