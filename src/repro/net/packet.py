"""Frames: the unit of transfer on the simulated fabric.

A frame is what a NIC puts on the wire.  Transports decide how application
messages map onto frames: TCP segments a byte stream into MSS-sized frames;
VIA sends one frame per descriptor (plus flow-control frames) or one RDMA
write per message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(slots=True)
class Frame:
    """One unit on the wire.

    Attributes:
        src: sending node id.
        dst: destination node id.
        size: bytes on the wire (payload + header estimate).
        kind: coarse class used by instrumentation and fault filters
            (``"tcp"``, ``"via"``, ``"rdma"``, ``"client"``...).
        payload: opaque object handed to the receiver's NIC handler.
        frame_id: unique id, useful in traces and tests.  Assigned by
            the fabric at submit time from a per-fabric counter, so two
            runs in one process produce identical ids (a process-global
            counter would make trace diffs depend on run order).
        trace_id: the client request this frame works for (0 = none).
            Set by the HTTP layer on request/response/reject frames so
            the span collector can attribute fabric transit to the
            request; transport-internal frames stay at 0 (their message
            already carries the trace).
    """

    src: str
    dst: str
    size: int
    kind: str
    payload: Any = None
    frame_id: int = 0
    trace_id: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError(f"frame size must be >= 0, got {self.size}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Frame #{self.frame_id} {self.src}->{self.dst}"
            f" {self.kind} {self.size}B>"
        )


#: Rough per-frame wire overhead (headers, CRC) charged on top of payload.
WIRE_OVERHEAD_BYTES = 42
