"""Simulated cluster network: frames, links, switch, NICs, fabric."""

from .fabric import Fabric
from .link import CLAN_BANDWIDTH, CLAN_LATENCY, Link, intra_cluster_kind
from .nic import Nic
from .packet import WIRE_OVERHEAD_BYTES, Frame
from .switch import SWITCH_DELAY, Switch

__all__ = [
    "Fabric",
    "Link",
    "Nic",
    "Frame",
    "Switch",
    "CLAN_BANDWIDTH",
    "CLAN_LATENCY",
    "intra_cluster_kind",
    "SWITCH_DELAY",
    "WIRE_OVERHEAD_BYTES",
]
