"""Network interface cards.

A NIC is the attachment point of a node to its link.  It exposes:

* ``send(frame)`` — put a frame on the wire (returns False when it is
  certain at submit time that the frame is lost: NIC powered off or link
  down *and the fabric reports errors*, see below);
* a registered receive handler, called for each arriving frame while the
  NIC is powered.

Error reporting is the crux of the paper's TCP-vs-VIA comparison, so the
NIC models it explicitly: a SAN NIC (``reports_errors=True``, like cLAN)
detects a dead link/peer at the hardware level and invokes the
``error_handler`` — this is what breaks VIA connections "almost
instantaneously".  A plain LAN NIC (``reports_errors=False``) silently
loses frames, leaving detection to transport timeouts — TCP's world.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..obs.metrics import bound_counter
from ..sim.engine import Engine
from .link import Link
from .packet import Frame


class Nic:
    """A node's interface to the fabric."""

    def __init__(
        self,
        engine: Engine,
        node_id: str,
        link: Link,
        reports_errors: bool = True,
    ):
        self.engine = engine
        self.node_id = node_id
        self.link = link
        self.reports_errors = reports_errors
        self.powered = True
        self.rx_handler: Optional[Callable[[Frame], None]] = None
        self._kind_handlers: dict[str, Callable[[Frame], None]] = {}
        self.error_handler: Optional[Callable[[str], None]] = None
        self._frames_sent = bound_counter(engine, "net.nic.frames_sent", node=node_id)
        self._frames_received = bound_counter(
            engine, "net.nic.frames_received", node=node_id
        )
        self._frames_dropped_rx = bound_counter(
            engine, "net.nic.frames_dropped_rx", node=node_id
        )
        self._fabric = None  # set by Fabric.attach

    @property
    def frames_sent(self) -> int:
        return self._frames_sent.value

    @property
    def frames_received(self) -> int:
        return self._frames_received.value

    @property
    def frames_dropped_rx(self) -> int:
        return self._frames_dropped_rx.value

    # -- wiring ------------------------------------------------------------
    def on_receive(self, handler: Callable[[Frame], None]) -> None:
        """Fallback handler for frame kinds without a registered handler."""
        self.rx_handler = handler

    def register(self, kind: str, handler: Callable[[Frame], None]) -> None:
        """Route frames of exactly ``kind`` to ``handler``.

        Transports and the HTTP front end each register their own kinds on
        the shared NIC.
        """
        self._kind_handlers[kind] = handler

    def on_error(self, handler: Callable[[str], None]) -> None:
        """Register the hardware error callback (SAN NICs only)."""
        self.error_handler = handler

    # -- power / fault control ----------------------------------------------
    def power_off(self) -> None:
        """Node crash: the NIC stops sending and receiving."""
        if self._fabric is not None:
            self._fabric._fastpath_transition()
        self.powered = False

    def power_on(self) -> None:
        if self._fabric is not None:
            self._fabric._fastpath_transition()
        self.powered = True

    # -- data path ---------------------------------------------------------
    def send(self, frame: Frame) -> bool:
        """Submit a frame to the fabric.

        Returns True when the frame was accepted for transmission.  A
        False return means the frame was lost at submit time; whether the
        *sender software* learns about it depends on ``reports_errors``
        (the fabric calls :meth:`report_error` for SAN NICs).
        """
        if not self.powered:
            return False
        if self._fabric is None:
            raise RuntimeError(f"NIC {self.node_id} not attached to a fabric")
        accepted = self._fabric.transmit(self, frame)
        if accepted:
            self._frames_sent.value += 1
        return accepted

    def fast_path_clear(self, dst: str) -> bool:
        """True when frames to ``dst`` would take the fabric fast path now
        (so a pre-collected train is safe; see :meth:`send_train`)."""
        fabric = self._fabric
        return (
            self.powered
            and fabric is not None
            and fabric.fast_eligible(self.node_id, dst)
        )

    def send_train(self, frames: list) -> bool:
        """Submit a burst of same-destination frames in one fabric call.

        Semantically identical to calling :meth:`send` per frame; on a
        clean path the fabric checks eligibility once and serializes the
        train in closed form (see :meth:`Fabric.transmit_train`).
        """
        if not self.powered:
            return False
        if self._fabric is None:
            raise RuntimeError(f"NIC {self.node_id} not attached to a fabric")
        accepted = self._fabric.transmit_train(self, frames)
        if accepted:
            self._frames_sent.value += accepted
        return accepted == len(frames)

    def deliver(self, frame: Frame) -> None:
        """Called by the fabric when a frame arrives."""
        if not self.powered:
            self._frames_dropped_rx.inc()
            return
        handler = self._kind_handlers.get(frame.kind, self.rx_handler)
        if handler is None:
            self._frames_dropped_rx.inc()
            return
        self._frames_received.value += 1
        handler(frame)

    def report_error(self, reason: str) -> None:
        """Hardware-level error indication (SAN semantics)."""
        if self.reports_errors and self.error_handler is not None and self.powered:
            self.error_handler(reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.powered else "OFF"
        return f"<Nic {self.node_id} {state}>"
