"""Point-to-point links with bandwidth, latency, and fail-stop faults.

A link connects one NIC to one switch port.  It serializes frames at its
bandwidth (a busy-until clock, not a queue of events) and can be taken
down/up by the fault injector.  Frames in flight or submitted while the
link is down are lost — exactly the failure the transports must then
detect (TCP by retransmission timeout, VIA by hardware error report).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..obs.events import NET_FRAME_DROP
from ..obs.metrics import bound_counter
from ..sim.engine import Engine

#: 1 Gb/s cLAN expressed in bytes/second.
CLAN_BANDWIDTH = 125_000_000
#: One-way cLAN hop latency in seconds (sub-10us hardware).
CLAN_LATENCY = 5e-6


def intra_cluster_kind(kind: str) -> bool:
    """True for intra-cluster traffic (everything but client HTTP).

    Mendosus differentiates traffic classes when injecting network faults
    so "the clients are never disturbed by faults injected into the
    intra-cluster communication" — a link fault with intra scope drops
    transport frames but carries client HTTP.
    """
    return not kind.startswith("http")


def drop_all_kinds(kind: str) -> bool:
    """Down-filter for a total fail-stop: no traffic class is carried.

    A module-level function (not a lambda) so that a failed link pickles
    by reference in simulation snapshots.
    """
    return True


class Link:
    """A unidirectionally-modeled full-duplex link.

    The serializer clock is tracked per direction so that simultaneous
    send/receive do not contend (full duplex), matching switched
    point-to-point fabrics.
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        bandwidth: float = CLAN_BANDWIDTH,
        latency: float = CLAN_LATENCY,
        loss_fn: Optional[Callable[[], bool]] = None,
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.engine = engine
        self.name = name
        self.bandwidth = bandwidth
        self.latency = latency
        self.loss_fn = loss_fn
        self._down_filter: Optional[Callable[[str], bool]] = None
        self._busy_until = {"a2b": 0.0, "b2a": 0.0}
        self._fabric = None  # set by Fabric.attach
        # Logical-process affinity of the attached node (repro.sim.lp):
        # the fabric pins this LP around frame-delivery scheduling so the
        # receiver's events land on the receiver's queue.  None on a
        # plain single-loop engine.
        self._lp: Optional[int] = None
        self._resv: list = []  # fast-path b2a reservations (see Fabric)
        self._frames_carried = bound_counter(
            engine, "net.link.frames_carried", link=name
        )
        self._frames_lost = bound_counter(engine, "net.link.frames_lost", link=name)

    @property
    def frames_carried(self) -> int:
        return self._frames_carried.value

    @property
    def frames_lost(self) -> int:
        return self._frames_lost.value

    def _lose(self, kind: str, reason: str) -> None:
        self._frames_lost.inc()
        bus = self.engine.bus
        if bus is not None:
            bus.publish(NET_FRAME_DROP, link=self.name, kind=kind, reason=reason)

    # -- fault control ---------------------------------------------------
    @property
    def up(self) -> bool:
        """True when the link carries at least some traffic class."""
        return self._down_filter is None

    def fail(self) -> None:
        """Fail-stop: the link carries nothing until :meth:`repair`."""
        self._notify_fabric()
        self._down_filter = drop_all_kinds

    def fail_for(self, predicate: Callable[[str], bool]) -> None:
        """Fail-stop for frame kinds matching ``predicate`` only.

        Used with :func:`intra_cluster_kind` to emulate Mendosus's
        traffic-class-scoped network faults.
        """
        self._notify_fabric()
        self._down_filter = predicate

    def repair(self) -> None:
        self._notify_fabric()
        self._down_filter = None

    def _notify_fabric(self) -> None:
        # Fail-stop transitions must be visible to frames already in
        # flight on the fast path: the fabric re-expands them into
        # per-hop events before the state changes.
        if self._fabric is not None:
            self._fabric._fastpath_transition()

    def carries(self, kind: str) -> bool:
        return self._down_filter is None or not self._down_filter(kind)

    # -- data path ---------------------------------------------------------
    def transmit(
        self, direction: str, size: int, kind: str, deliver: Callable[[], None]
    ) -> bool:
        """Serialize ``size`` bytes and schedule ``deliver`` at arrival.

        Returns False (frame lost) when the link is down for this traffic
        class or the loss process fires.  The caller decides what loss
        means (TCP: wait for RTO; VIA: hardware error).
        """
        if not self.carries(kind):
            self._lose(kind, "link-down")
            return False
        if self.loss_fn is not None and self.loss_fn():
            self._lose(kind, "loss-process")
            return False
        engine = self.engine
        start = max(engine.now, self._busy_until[direction])
        done = start + size / self.bandwidth
        self._busy_until[direction] = done
        self._frames_carried.inc()
        engine.call_at(done + self.latency, self._arrive, kind, deliver)
        return True

    def _arrive(self, kind: str, deliver: Callable[[], None]) -> None:
        # A frame already on the wire when the link fails is lost too:
        # fail-stop kills in-flight data.
        if not self.carries(kind):
            self._lose(kind, "link-down-in-flight")
            return
        deliver()

    def utilization_horizon(self, direction: str) -> float:
        """Time at which the serializer frees up (test/diagnostic aid)."""
        return self._busy_until[direction]

    def snapshot_state(self) -> dict:
        """Deterministic-state digest input (see repro.sim.snapshot)."""
        return {
            "up": self.up,
            "busy": dict(self._busy_until),
            "reservations": len(self._resv),
            "carried": self._frames_carried.value,
            "lost": self._frames_lost.value,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "DOWN"
        return f"<Link {self.name} {state}>"
