"""Fabric: topology assembly and the end-to-end frame path.

The testbed topology is a star: every node (cluster servers and client
machines) hangs off a single cLAN switch.  A frame's journey is::

    src NIC --link--> switch --link--> dst NIC

with loss possible at each hop when the component has fail-stopped.  For
SAN NICs the fabric synchronously reports unreachable destinations back to
the sender's NIC (``report_error``) — the hardware-level fault visibility
that VIA translates into broken connections.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..obs.events import NET_FRAME_DROP
from ..obs.metrics import bound_counter
from ..sim.engine import Engine
from .link import CLAN_BANDWIDTH, CLAN_LATENCY, Link
from .nic import Nic
from .packet import WIRE_OVERHEAD_BYTES, Frame
from .switch import Switch


class Fabric:
    """A star topology of NICs around one switch."""

    def __init__(self, engine: Engine, switch: Optional[Switch] = None):
        self.engine = engine
        self.switch = switch if switch is not None else Switch(engine)
        self.nics: Dict[str, Nic] = {}
        self.links: Dict[str, Link] = {}
        self._frames_delivered = bound_counter(engine, "net.fabric.frames_delivered")
        self._frames_lost = bound_counter(engine, "net.fabric.frames_lost")

    @property
    def frames_delivered(self) -> int:
        return self._frames_delivered.value

    @property
    def frames_lost(self) -> int:
        return self._frames_lost.value

    def _lose(self, frame: Frame, reason: str) -> None:
        self._frames_lost.inc()
        bus = self.engine.bus
        if bus is not None:
            bus.publish(
                NET_FRAME_DROP,
                node=frame.src,
                kind=frame.kind,
                dst=frame.dst,
                reason=reason,
            )

    # -- assembly ------------------------------------------------------------
    def attach(
        self,
        node_id: str,
        bandwidth: float = CLAN_BANDWIDTH,
        latency: float = CLAN_LATENCY,
        reports_errors: bool = True,
        loss_fn=None,
    ) -> Nic:
        """Create a NIC + link for ``node_id`` and wire them to the switch."""
        if node_id in self.nics:
            raise ValueError(f"node {node_id!r} already attached")
        link = Link(
            self.engine,
            name=f"link-{node_id}",
            bandwidth=bandwidth,
            latency=latency,
            loss_fn=loss_fn,
        )
        nic = Nic(self.engine, node_id, link, reports_errors=reports_errors)
        nic._fabric = self
        self.links[node_id] = link
        self.nics[node_id] = nic
        return nic

    def nic(self, node_id: str) -> Nic:
        return self.nics[node_id]

    def link(self, node_id: str) -> Link:
        return self.links[node_id]

    # -- reachability (used by SAN error reporting and by tests) -----------
    def path_up(self, src: str, dst: str, kind: str = "via-msg") -> bool:
        """True when every fail-stop component on the src→dst path carries
        frames of ``kind``."""
        src_nic = self.nics.get(src)
        dst_nic = self.nics.get(dst)
        if src_nic is None or dst_nic is None:
            return False
        return (
            src_nic.powered
            and dst_nic.powered
            and self.links[src].carries(kind)
            and self.links[dst].carries(kind)
            and self.switch.up
        )

    # -- data path ---------------------------------------------------------
    def transmit(self, src_nic: Nic, frame: Frame) -> bool:
        """Carry ``frame`` from ``src_nic`` toward ``frame.dst``.

        Returns True when the frame made it onto the first link.  Loss at
        later hops is reported to SAN senders via ``report_error`` but is
        invisible to LAN senders.
        """
        dst_nic = self.nics.get(frame.dst)
        if dst_nic is None:
            raise KeyError(f"unknown destination {frame.dst!r}")
        wire_size = frame.size + WIRE_OVERHEAD_BYTES

        # SAN hardware detects unreachable peers at send time: a dead link
        # or a powered-off remote NIC yields an immediate error report.
        if src_nic.reports_errors and not self.path_up(
            frame.src, frame.dst, frame.kind
        ):
            self._lose(frame, f"unreachable:{frame.dst}")
            src_nic.report_error(f"unreachable:{frame.dst}")
            return False

        src_link = self.links[frame.src]
        sent = src_link.transmit(
            "a2b",
            wire_size,
            frame.kind,
            lambda: self._at_switch(frame, wire_size),
        )
        if not sent:
            self._lose(frame, f"link-down:{frame.src}")
            src_nic.report_error(f"link-down:{frame.src}")
            return False
        return True

    def _at_switch(self, frame: Frame, wire_size: int) -> None:
        forwarded = self.switch.forward(
            frame.dst, lambda: self._at_dst_link(frame, wire_size)
        )
        if not forwarded:
            self._lose(frame, "switch-down")
            self._report_to_sender(frame, "switch-down")

    def _at_dst_link(self, frame: Frame, wire_size: int) -> None:
        dst_link = self.links[frame.dst]
        sent = dst_link.transmit(
            "b2a", wire_size, frame.kind, lambda: self._deliver(frame)
        )
        if not sent:
            self._lose(frame, f"link-down:{frame.dst}")
            self._report_to_sender(frame, f"link-down:{frame.dst}")

    def _deliver(self, frame: Frame) -> None:
        dst_nic = self.nics[frame.dst]
        if not dst_nic.powered:
            self._lose(frame, f"node-down:{frame.dst}")
            self._report_to_sender(frame, f"node-down:{frame.dst}")
            return
        self._frames_delivered.inc()
        dst_nic.deliver(frame)

    def _report_to_sender(self, frame: Frame, reason: str) -> None:
        src_nic = self.nics.get(frame.src)
        if src_nic is not None:
            src_nic.report_error(reason)
