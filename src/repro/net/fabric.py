"""Fabric: topology assembly and the end-to-end frame path.

The testbed topology is a star: every node (cluster servers and client
machines) hangs off a single cLAN switch.  A frame's journey is::

    src NIC --link--> switch --link--> dst NIC

with loss possible at each hop when the component has fail-stopped.  For
SAN NICs the fabric synchronously reports unreachable destinations back to
the sender's NIC (``report_error``) — the hardware-level fault visibility
that VIA translates into broken connections.

Fast path
---------

Per frame, the slow path costs three heap events (source-link arrival,
switch forwarding delay, destination-link arrival) plus three closures.
When the whole path is *clean* — both links up with no loss process, the
switch up and not in drop mode, the destination NIC powered — every hop
time is a pure function of the serializer clocks, so the fabric computes
them in closed form at submit time and schedules a single delivery event.

The arithmetic replicates the slow path operation-for-operation (same
``max``, same addition order), so timestamps are bit-identical.  Because
in-flight frames must still die mid-flight when a fault lands, every
fault-injection entry point (link fail/repair, switch fail/repair, NIC
power off/on) notifies the fabric, which *materializes* the in-flight
fast frames back into ordinary per-hop events at their precomputed hop
times: hops already virtually traversed are accounted, hops still ahead
re-enter the stock slow-path machinery and see the degraded topology
exactly as slow-path frames would.

Destination links serialize frames from many sources, so the fast path
keeps a per-link reservation queue ordered by switch-exit time; slow
frames arriving at a link with live reservations splice into that queue,
and any reservation whose start moves is recomputed and its delivery
event rescheduled.  End-of-run counters are identical in both modes
(hop counters that the slow path increments mid-flight are applied by
the fast path at delivery or materialization; counters carry no
timestamps, so only the totals are observable).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..obs.events import NET_FRAME_DROP
from ..obs.metrics import bound_counter
from ..sim.engine import Engine
from .link import CLAN_BANDWIDTH, CLAN_LATENCY, Link
from .nic import Nic
from .packet import WIRE_OVERHEAD_BYTES, Frame
from .switch import Switch


class _FastFlight:
    """An in-flight frame whose whole trajectory was precomputed."""

    __slots__ = (
        "frame",
        "wire",
        "seq",
        "arrive1",  # arrival at the switch (src serialization + latency)
        "exit",  # exit from the switch (arrive1 + forwarding delay)
        "start_d",  # destination-link serializer start
        "end_d",  # destination-link serializer done
        "t3",  # delivery at the destination NIC (end_d + latency)
        "timer",
        "dst_final",  # destination serialization can no longer move
    )

    def __init__(
        self, frame: Frame, wire: int, seq: int, arrive1: float, exit: float
    ):
        self.frame = frame
        self.wire = wire
        self.seq = seq
        self.arrive1 = arrive1
        self.exit = exit
        # start_d/end_d/t3 are assigned before first read (the ``timer is
        # not None`` guard in _resequence covers the splice path).
        self.timer = None
        self.dst_final = False


class Fabric:
    """A star topology of NICs around one switch."""

    def __init__(
        self,
        engine: Engine,
        switch: Optional[Switch] = None,
        fastpath: bool = True,
    ):
        self.engine = engine
        self.switch = switch if switch is not None else Switch(engine)
        self.switch._fabric = self
        self.nics: Dict[str, Nic] = {}
        self.links: Dict[str, Link] = {}
        self.fastpath = fastpath
        self._frame_ids = itertools.count(1)
        self._submit_seq = 0
        self._flights: Dict[_FastFlight, None] = {}  # insertion-ordered set
        # Eligibility cache: (src, dst) -> (epoch, src_link, dst_link).
        # Valid while _topo_epoch is unchanged; every eligibility input is
        # either fixed at construction (fastpath, loss_fn, drop_mode) or
        # mutated only through the fault entry points, all of which call
        # _fastpath_transition and hence bump the epoch.
        self._topo_epoch = 0
        self._fast_cache: Dict[tuple, tuple] = {}
        self._frames_delivered = bound_counter(engine, "net.fabric.frames_delivered")
        self._frames_lost = bound_counter(engine, "net.fabric.frames_lost")

    @property
    def frames_delivered(self) -> int:
        return self._frames_delivered.value

    @property
    def frames_lost(self) -> int:
        return self._frames_lost.value

    def _lose(self, frame: Frame, reason: str) -> None:
        self._frames_lost.inc()
        spans = self.engine.spans
        if spans is not None and frame.trace_id:
            spans.end_key(
                ("net", frame.frame_id), self.engine.now, "lost", reason=reason
            )
        bus = self.engine.bus
        if bus is not None:
            bus.publish(
                NET_FRAME_DROP,
                node=frame.src,
                kind=frame.kind,
                dst=frame.dst,
                reason=reason,
            )

    def _span_open(self, spans, frame: Frame) -> None:
        """Open the transit span for a request-carrying frame.

        Callers have already loaded ``engine.spans`` and checked
        ``frame.trace_id`` — the span-disabled path never gets here.
        """
        spans.start(
            frame.trace_id,
            "net.frame",
            self.engine.now,
            node=frame.src,
            key=("net", frame.frame_id),
            kind=frame.kind,
            dst=frame.dst,
        )

    # -- assembly ------------------------------------------------------------
    def attach(
        self,
        node_id: str,
        bandwidth: float = CLAN_BANDWIDTH,
        latency: float = CLAN_LATENCY,
        reports_errors: bool = True,
        loss_fn=None,
    ) -> Nic:
        """Create a NIC + link for ``node_id`` and wire them to the switch."""
        if node_id in self.nics:
            raise ValueError(f"node {node_id!r} already attached")
        self._topo_epoch += 1
        link = Link(
            self.engine,
            name=f"link-{node_id}",
            bandwidth=bandwidth,
            latency=latency,
            loss_fn=loss_fn,
        )
        link._fabric = self
        # On a sharded engine (repro.sim.lp), remember the owner node's
        # LP so delivery events can be pinned to the receiver's queue.
        shard_of = getattr(self.engine, "shard_of", None)
        if shard_of is not None:
            link._lp = shard_of(node_id)
        nic = Nic(self.engine, node_id, link, reports_errors=reports_errors)
        nic._fabric = self
        self.links[node_id] = link
        self.nics[node_id] = nic
        return nic

    def nic(self, node_id: str) -> Nic:
        return self.nics[node_id]

    def link(self, node_id: str) -> Link:
        return self.links[node_id]

    # -- reachability (used by SAN error reporting and by tests) -----------
    def path_up(self, src: str, dst: str, kind: str = "via-msg") -> bool:
        """True when every fail-stop component on the src→dst path carries
        frames of ``kind``."""
        src_nic = self.nics.get(src)
        dst_nic = self.nics.get(dst)
        if src_nic is None or dst_nic is None:
            return False
        return (
            src_nic.powered
            and dst_nic.powered
            and self.links[src].carries(kind)
            and self.links[dst].carries(kind)
            and self.switch.up
        )

    def fast_eligible(self, src: str, dst: str) -> bool:
        """True when a src→dst frame would take the fast path right now.

        Transports use this to decide whether pre-collecting a segment
        train is safe: on a clean path a submit can neither fail nor
        trigger a synchronous error report, so batching cannot diverge
        from per-frame submission.
        """
        cached = self._fast_cache.get((src, dst))
        if cached is not None and cached[0] == self._topo_epoch:
            return True
        return self._check_fast(src, dst) is not None

    def _check_fast(self, src: str, dst: str):
        """Full eligibility check; caches and returns the entry on success."""
        switch = self.switch
        if not (self.fastpath and switch.up and not switch.drop_mode):
            return None
        dst_nic = self.nics.get(dst)
        if dst_nic is None or not dst_nic.powered:
            return None
        src_link = self.links.get(src)
        if (
            src_link is None
            or src_link._down_filter is not None
            or src_link.loss_fn is not None
        ):
            return None
        dst_link = self.links[dst]
        if dst_link._down_filter is not None or dst_link.loss_fn is not None:
            return None
        entry = (self._topo_epoch, src_link, dst_link)
        self._fast_cache[(src, dst)] = entry
        return entry

    # -- data path ---------------------------------------------------------
    def transmit(self, src_nic: Nic, frame: Frame) -> bool:
        """Carry ``frame`` from ``src_nic`` toward ``frame.dst``.

        Returns True when the frame made it onto the first link.  Loss at
        later hops is reported to SAN senders via ``report_error`` but is
        invisible to LAN senders.
        """
        cached = self._fast_cache.get((frame.src, frame.dst))
        if cached is not None and cached[0] == self._topo_epoch:
            # A clean path implies reachability, so the SAN pre-check
            # below cannot fire — skip straight to the fast submit.
            frame.frame_id = next(self._frame_ids)
            spans = self.engine.spans
            if spans is not None and frame.trace_id:
                self._span_open(spans, frame)
            profiler = self.engine.profiler
            if profiler is not None:
                profiler.count("fabric.fast_cached")
            self._submit_seq = seq = self._submit_seq + 1
            self._fast_submit(
                frame, frame.size + WIRE_OVERHEAD_BYTES, seq, cached[1], cached[2]
            )
            return True

        if self.nics.get(frame.dst) is None:
            raise KeyError(f"unknown destination {frame.dst!r}")
        frame.frame_id = next(self._frame_ids)
        spans = self.engine.spans
        if spans is not None and frame.trace_id:
            self._span_open(spans, frame)
        wire_size = frame.size + WIRE_OVERHEAD_BYTES

        entry = self._check_fast(frame.src, frame.dst)
        profiler = self.engine.profiler
        if entry is not None:
            if profiler is not None:
                profiler.count("fabric.fast_checked")
            self._submit_seq = seq = self._submit_seq + 1
            self._fast_submit(frame, wire_size, seq, entry[1], entry[2])
            return True
        if profiler is not None:
            profiler.count("fabric.slow")

        # SAN hardware detects unreachable peers at send time: a dead link
        # or a powered-off remote NIC yields an immediate error report.
        if src_nic.reports_errors and not self.path_up(
            frame.src, frame.dst, frame.kind
        ):
            self._lose(frame, f"unreachable:{frame.dst}")
            src_nic.report_error(f"unreachable:{frame.dst}")
            return False

        self._submit_seq = seq = self._submit_seq + 1
        sent = self.links[frame.src].transmit(
            "a2b",
            wire_size,
            frame.kind,
            _AtSwitchCb(self, frame, wire_size, seq),
        )
        if not sent:
            self._lose(frame, f"link-down:{frame.src}")
            src_nic.report_error(f"link-down:{frame.src}")
            return False
        return True

    def transmit_train(self, src_nic: Nic, frames: List[Frame]) -> int:
        """Carry a burst of same-destination frames from ``src_nic``.

        Semantically identical to calling :meth:`transmit` per frame (and
        falls back to exactly that whenever the path is not clean); on a
        clean path the eligibility checks run once and the whole train is
        serialized in closed form, one delivery event per frame.  Returns
        the number of frames accepted onto the first link.
        """
        if not frames:
            return 0
        src = frames[0].src
        dst = frames[0].dst
        cached = self._fast_cache.get((src, dst))
        if cached is None or cached[0] != self._topo_epoch:
            if self.nics.get(dst) is None:
                raise KeyError(f"unknown destination {dst!r}")
            cached = self._check_fast(src, dst)
        if cached is None:
            return sum(1 for frame in frames if self.transmit(src_nic, frame))
        # A clean path implies reachability, so no SAN pre-check is needed;
        # no simulated time passes between the per-frame submits, so the
        # path state cannot change mid-train either.
        src_link = cached[1]
        dst_link = cached[2]
        frame_ids = self._frame_ids
        fast_submit = self._fast_submit
        spans = self.engine.spans
        profiler = self.engine.profiler
        if profiler is not None:
            profiler.count("fabric.fast_train", len(frames))
        seq = self._submit_seq
        for frame in frames:
            frame.frame_id = next(frame_ids)
            if spans is not None and frame.trace_id:
                self._span_open(spans, frame)
            seq += 1
            fast_submit(frame, frame.size + WIRE_OVERHEAD_BYTES, seq,
                        src_link, dst_link)
        self._submit_seq = seq
        return len(frames)

    # -- fast path ---------------------------------------------------------
    def _fast_submit(
        self, frame: Frame, wire: int, seq: int, src_link: Link, dst_link: Link
    ) -> None:
        """Precompute the whole trajectory; schedule only the delivery.

        Every float operation matches the slow path exactly: source
        serialization as in ``Link.transmit``, switch exit as in
        ``Engine.call_after`` from the arrival timestamp, destination
        serialization as in ``Link.transmit`` evaluated at exit time.
        """
        engine = self.engine
        busy_s = src_link._busy_until
        start_s = max(engine.now, busy_s["a2b"])
        done_s = start_s + wire / src_link.bandwidth
        busy_s["a2b"] = done_s
        src_link._frames_carried.value += 1

        arrive1 = done_s + src_link.latency
        exit_t = arrive1 + self.switch.delay
        flight = _FastFlight(frame, wire, seq, arrive1, exit_t)

        resv = dst_link._resv
        if resv:
            last = resv[-1]
            if last.exit < exit_t or (last.exit == exit_t and last.seq < seq):
                # Tail append — the overwhelmingly common case: chain
                # straight off the last reservation, same arithmetic as
                # :meth:`_resequence` would apply at this position.
                start = max(exit_t, last.end_d)
            else:
                self._reserve(dst_link, flight)
                self._flights[flight] = None
                return
        else:
            # Empty destination queue: the flight starts serializing at
            # max(exit, link clock), same arithmetic as :meth:`_resequence`.
            start = max(exit_t, dst_link._busy_until["b2a"])
        flight.start_d = start
        flight.end_d = end = start + wire / dst_link.bandwidth
        flight.t3 = t3 = end + dst_link.latency
        resv.append(flight)
        # The closed-form delivery time doubles as the CMB lookahead
        # fast-forward: pinning the event to the destination's LP tells
        # that queue its next cross-channel event up front, at submit
        # time, instead of hop by hop.
        lp = dst_link._lp
        if lp is not None:
            prev = engine.pin(lp)
            flight.timer = engine.call_at(t3, self._fast_deliver, flight, dst_link)
            engine.pin(prev)
        else:
            flight.timer = engine.call_at(t3, self._fast_deliver, flight, dst_link)
        self._flights[flight] = None

    def _reserve(self, dst_link: Link, flight: _FastFlight) -> None:
        """Splice ``flight`` into the destination serializer queue."""
        resv = dst_link._resv
        key = (flight.exit, flight.seq)
        pos = len(resv)
        while pos > 0:
            prev = resv[pos - 1]
            if (prev.exit, prev.seq) <= key:
                break
            pos -= 1
        resv.insert(pos, flight)
        self._resequence(dst_link, pos)

    def _resequence(self, dst_link: Link, pos: int) -> None:
        """Recompute destination serialization from queue index ``pos``.

        Reproduces, per entry, what ``Link.transmit`` would compute at the
        entry's switch-exit instant.  Stops at the first entry whose
        timing is unchanged (later entries chain off it, so they cannot
        change either).
        """
        resv = dst_link._resv
        prev_end = resv[pos - 1].end_d if pos else dst_link._busy_until["b2a"]
        engine = self.engine
        bandwidth = dst_link.bandwidth
        latency = dst_link.latency
        lp = dst_link._lp
        pinned = engine.pin(lp) if lp is not None else None
        try:
            for i in range(pos, len(resv)):
                fl = resv[i]
                start = max(fl.exit, prev_end)
                end = start + fl.wire / bandwidth
                if fl.timer is not None and start == fl.start_d and end == fl.end_d:
                    return
                fl.start_d = start
                fl.end_d = end
                fl.t3 = t3 = end + latency
                if fl.timer is not None:
                    fl.timer.cancel()
                fl.timer = engine.call_at(t3, self._fast_deliver, fl, dst_link)
                prev_end = end
        finally:
            if pinned is not None:
                engine.pin(pinned)

    def _fast_deliver(self, flight: _FastFlight, dst_link: Link) -> None:
        """The single fast-path event: the frame reaches its NIC.

        Hop counters the slow path would have incremented mid-flight are
        applied here (totals are what's observable; see module docstring).
        """
        flight.timer = None
        del self._flights[flight]
        resv = dst_link._resv
        if resv and resv[0] is flight:
            del resv[0]
        busy = dst_link._busy_until
        if flight.end_d > busy["b2a"]:
            busy["b2a"] = flight.end_d
        self.switch.frames_forwarded += 1
        dst_link._frames_carried.value += 1
        spans = self.engine.spans
        if spans is not None and flight.frame.trace_id:
            # The precomputed hop times are bit-identical to what the
            # slow path stamps at its per-hop events, so fast and slow
            # runs export the same annotations.
            spans.note(
                spans.find(("net", flight.frame.frame_id)),
                arrive_switch=flight.arrive1,
                exit_switch=flight.exit,
            )
        self._deliver(flight.frame)

    # -- fast/slow interleaving on a shared destination link ----------------
    def _interleave_slow(self, dst_link: Link, seq: int) -> None:
        """A slow frame is about to serialize on a link with reservations.

        Reservations that exited the switch before this frame (or at the
        same instant with an earlier submission) keep their place: fold
        their serializer time into the link clock so the slow frame queues
        behind them.  Reservations behind the slow frame are resequenced
        by the caller once the slow frame has claimed its slot.
        """
        now = self.engine.now
        resv = dst_link._resv
        i = 0
        for fl in resv:
            if fl.exit < now or (fl.exit == now and fl.seq < seq):
                i += 1
            else:
                break
        if i:
            matured_end = resv[i - 1].end_d
            busy = dst_link._busy_until
            if matured_end > busy["b2a"]:
                busy["b2a"] = matured_end
            for fl in resv[:i]:
                fl.dst_final = True
            del resv[:i]

    def _call_pinned(self, lp: Optional[int], time: float, fn, *args) -> None:
        """Schedule ``fn`` at ``time`` on LP ``lp`` (or with inherited
        affinity when the engine is not sharded)."""
        engine = self.engine
        if lp is not None:
            prev = engine.pin(lp)
            engine.call_at(time, fn, *args)
            engine.pin(prev)
        else:
            engine.call_at(time, fn, *args)

    # -- materialization on topology transitions ----------------------------
    def _fastpath_transition(self) -> None:
        """A fail-stop state changed somewhere: re-expand in-flight fast
        frames into ordinary per-hop events.

        Hops whose precomputed time is in the past happened while the path
        was still clean — account them.  Hops at or after the current
        instant re-enter the stock slow-path machinery, which applies the
        degraded topology checks with the exact slow-path semantics.
        """
        self._topo_epoch += 1  # invalidate every cached eligibility entry
        if not self._flights:
            return
        now = self.engine.now
        flights = sorted(
            self._flights,
            key=lambda fl: (
                fl.t3 if (fl.dst_final or fl.exit < now)
                else (fl.arrive1 if fl.arrive1 >= now else fl.exit),
                fl.seq,
            ),
        )
        self._flights.clear()
        for link in self.links.values():
            link._resv.clear()
        switch = self.switch
        spans = self.engine.spans
        for fl in flights:
            if fl.timer is not None:
                fl.timer.cancel()
                fl.timer = None
            frame = fl.frame
            src_link = self.links[frame.src]
            if fl.dst_final or fl.exit < now:
                # Past the switch and the destination serializer: only the
                # wire flight to the NIC remains.
                if spans is not None and frame.trace_id:
                    # Hops already virtually traversed: stamp the same
                    # values the slow-path events would have.
                    spans.note(
                        spans.find(("net", frame.frame_id)),
                        arrive_switch=fl.arrive1,
                        exit_switch=fl.exit,
                    )
                switch.frames_forwarded += 1
                dst_link = self.links[frame.dst]
                dst_link._frames_carried.inc()
                busy = dst_link._busy_until
                if fl.end_d > busy["b2a"]:
                    busy["b2a"] = fl.end_d
                self._call_pinned(
                    dst_link._lp,
                    fl.t3,
                    dst_link._arrive,
                    frame.kind,
                    _DeliverCb(self, frame),
                )
            elif fl.arrive1 >= now:
                # Not yet at the switch: re-enter at the source-link
                # arrival, stock machinery from there.
                self._call_pinned(
                    src_link._lp,
                    fl.arrive1,
                    src_link._arrive,
                    frame.kind,
                    _AtSwitchCb(self, frame, fl.wire, fl.seq),
                )
            else:
                # Inside the switch: forwarding already happened.
                if spans is not None and frame.trace_id:
                    spans.note(
                        spans.find(("net", frame.frame_id)),
                        arrive_switch=fl.arrive1,
                    )
                switch.frames_forwarded += 1
                self._call_pinned(
                    self.links[frame.dst]._lp,
                    fl.exit,
                    self._switch_exit,
                    frame,
                    fl.wire,
                    fl.seq,
                )

    def _switch_exit(self, frame: Frame, wire_size: int, seq: int) -> None:
        """Materialized continuation at the switch-exit instant
        (mirrors :meth:`Switch._deliver`)."""
        if not self.switch.up:
            self.switch.frames_dropped += 1
            return
        self._at_dst_link(frame, wire_size, seq)

    # -- slow path ---------------------------------------------------------
    def _at_switch(self, frame: Frame, wire_size: int, seq: int = 0) -> None:
        spans = self.engine.spans
        if spans is not None and frame.trace_id:
            spans.note(
                spans.find(("net", frame.frame_id)),
                arrive_switch=self.engine.now,
            )
        forwarded = self.switch.forward(
            frame.dst, _AtDstLinkCb(self, frame, wire_size, seq)
        )
        if not forwarded:
            self._lose(frame, "switch-down")
            self._report_to_sender(frame, "switch-down")

    def _at_dst_link(self, frame: Frame, wire_size: int, seq: int = 0) -> None:
        spans = self.engine.spans
        if spans is not None and frame.trace_id:
            spans.note(
                spans.find(("net", frame.frame_id)),
                exit_switch=self.engine.now,
            )
        dst_link = self.links[frame.dst]
        if dst_link._resv:
            self._interleave_slow(dst_link, seq)
        lp = dst_link._lp
        if lp is not None:
            # Slow-path delivery is the LP hand-off point: the arrival
            # event (and everything the receiver schedules from it) must
            # live on the receiver's queue.
            prev = self.engine.pin(lp)
            sent = dst_link.transmit(
                "b2a", wire_size, frame.kind, _DeliverCb(self, frame)
            )
            self.engine.pin(prev)
        else:
            sent = dst_link.transmit(
                "b2a", wire_size, frame.kind, _DeliverCb(self, frame)
            )
        if dst_link._resv:
            self._resequence(dst_link, 0)
        if not sent:
            self._lose(frame, f"link-down:{frame.dst}")
            self._report_to_sender(frame, f"link-down:{frame.dst}")

    def _deliver(self, frame: Frame) -> None:
        dst_nic = self.nics[frame.dst]
        if not dst_nic.powered:
            self._lose(frame, f"node-down:{frame.dst}")
            self._report_to_sender(frame, f"node-down:{frame.dst}")
            return
        self._frames_delivered.value += 1
        spans = self.engine.spans
        if spans is not None and frame.trace_id:
            # Close before handing the frame up so the receiver's spans
            # nest under the request, not under this transit.
            spans.end_key(("net", frame.frame_id), self.engine.now)
        dst_nic.deliver(frame)

    def _report_to_sender(self, frame: Frame, reason: str) -> None:
        src_nic = self.nics.get(frame.src)
        if src_nic is not None:
            src_nic.report_error(reason)

    # -- snapshot support (see repro.sim.snapshot) --------------------------
    def snapshot_state(self) -> dict:
        """Deterministic-state digest input (see Snapshottable).

        Covers the frame/submit counters and every serializer clock, so
        a restored fabric whose next frame would be numbered or timed
        differently yields a different digest.  The eligibility cache is
        deliberately absent: it is a pure memo over state counted here.
        """
        return {
            "submit_seq": self._submit_seq,
            "topo_epoch": self._topo_epoch,
            "flights": len(self._flights),
            "frames_delivered": self._frames_delivered.value,
            "frames_lost": self._frames_lost.value,
            "switch": {
                "up": self.switch.up,
                "forwarded": self.switch.frames_forwarded,
                "dropped": self.switch.frames_dropped,
            },
            "links": {
                name: link.snapshot_state() for name, link in sorted(self.links.items())
            },
        }


class _DeliverCb:
    """Materialized final-hop continuation (avoids a closure per frame)."""

    __slots__ = ("fabric", "frame")

    def __init__(self, fabric: Fabric, frame: Frame):
        self.fabric = fabric
        self.frame = frame

    def __call__(self) -> None:
        self.fabric._deliver(self.frame)


class _AtSwitchCb:
    """Switch-arrival continuation (avoids a closure per slow frame)."""

    __slots__ = ("fabric", "frame", "wire", "seq")

    def __init__(self, fabric: Fabric, frame: Frame, wire: int, seq: int):
        self.fabric = fabric
        self.frame = frame
        self.wire = wire
        self.seq = seq

    def __call__(self) -> None:
        self.fabric._at_switch(self.frame, self.wire, self.seq)


class _AtDstLinkCb:
    """Switch-forwarding continuation (avoids a closure per slow frame)."""

    __slots__ = ("fabric", "frame", "wire", "seq")

    def __init__(self, fabric: Fabric, frame: Frame, wire: int, seq: int):
        self.fabric = fabric
        self.frame = frame
        self.wire = wire
        self.seq = seq

    def __call__(self) -> None:
        self.fabric._at_dst_link(self.frame, self.wire, self.seq)
