"""The cluster switch.

A single switch interconnects all cluster nodes (and, in our experiments,
the client machines), as in the paper's testbed.  It is modeled with a
fixed forwarding delay and a fail-stop state; per-port queueing is
intentionally *not* a drop point because the cLAN fabric uses hop-by-hop
flow control — under fault-free operation the paper's workloads never
saturate the switch, and faults are fail-stop rather than congestive.

A ``drop_mode`` switch variant (LAN-style tail-drop with finite queues) is
provided for the discussion-section ablations about fabrics that drop
packets under overrun.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..sim.engine import Engine

#: Store-and-forward delay through the switch.
SWITCH_DELAY = 2e-6


class Switch:
    """Fail-stop switch with a constant forwarding delay."""

    def __init__(
        self,
        engine: Engine,
        name: str = "switch0",
        delay: float = SWITCH_DELAY,
        drop_mode: bool = False,
        queue_limit: int = 512,
    ):
        self.engine = engine
        self.name = name
        self.delay = delay
        self.up = True
        self.drop_mode = drop_mode
        self.queue_limit = queue_limit
        self._inflight: Dict[str, int] = {}
        self.frames_forwarded = 0
        self.frames_dropped = 0
        self._fabric = None  # set by Fabric

    # -- fault control ---------------------------------------------------
    def fail(self) -> None:
        if self._fabric is not None:
            self._fabric._fastpath_transition()
        self.up = False

    def repair(self) -> None:
        if self._fabric is not None:
            self._fabric._fastpath_transition()
        self.up = True

    # -- data path ---------------------------------------------------------
    def forward(
        self, out_port: str, deliver: Callable[[], None]
    ) -> bool:
        """Queue a frame toward ``out_port``; False when dropped."""
        if not self.up:
            self.frames_dropped += 1
            return False
        if self.drop_mode:
            backlog = self._inflight.get(out_port, 0)
            if backlog >= self.queue_limit:
                self.frames_dropped += 1
                return False
            self._inflight[out_port] = backlog + 1
        self.frames_forwarded += 1
        self.engine.call_after(self.delay, self._deliver, out_port, deliver)
        return True

    def _deliver(self, out_port: str, deliver: Callable[[], None]) -> None:
        if self.drop_mode:
            self._inflight[out_port] = max(0, self._inflight.get(out_port, 1) - 1)
        if not self.up:
            self.frames_dropped += 1
            return
        deliver()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "DOWN"
        return f"<Switch {self.name} {state}>"
