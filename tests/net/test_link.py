"""Tests for links: serialization, latency, fail-stop, traffic scoping."""

import pytest

from repro.net.link import Link, intra_cluster_kind
from repro.sim.engine import Engine


def make_link(engine, bandwidth=1000.0, latency=0.1, loss_fn=None):
    return Link(engine, "l0", bandwidth=bandwidth, latency=latency, loss_fn=loss_fn)


def test_delivery_time_is_serialization_plus_latency():
    e = Engine()
    link = make_link(e)  # 1000 B/s, 0.1s latency
    seen = []
    link.transmit("a2b", 500, "tcp-seg", lambda: seen.append(e.now))
    e.run()
    assert seen == [pytest.approx(0.6)]  # 0.5s wire + 0.1s latency


def test_back_to_back_frames_serialize():
    e = Engine()
    link = make_link(e)
    seen = []
    link.transmit("a2b", 1000, "x", lambda: seen.append(e.now))
    link.transmit("a2b", 1000, "x", lambda: seen.append(e.now))
    e.run()
    assert seen == [pytest.approx(1.1), pytest.approx(2.1)]


def test_directions_are_independent():
    e = Engine()
    link = make_link(e)
    seen = []
    link.transmit("a2b", 1000, "x", lambda: seen.append(("fwd", e.now)))
    link.transmit("b2a", 1000, "x", lambda: seen.append(("rev", e.now)))
    e.run()
    assert seen[0][1] == pytest.approx(1.1)
    assert seen[1][1] == pytest.approx(1.1)


def test_failed_link_drops_at_submit():
    e = Engine()
    link = make_link(e)
    link.fail()
    assert not link.transmit("a2b", 100, "x", lambda: None)
    assert link.frames_lost == 1


def test_in_flight_frame_lost_on_failure():
    e = Engine()
    link = make_link(e)
    seen = []
    link.transmit("a2b", 500, "x", lambda: seen.append(1))
    e.call_after(0.2, link.fail)  # frame arrives at 0.6
    e.run()
    assert seen == []
    assert link.frames_lost == 1


def test_repair_restores_service():
    e = Engine()
    link = make_link(e)
    link.fail()
    link.repair()
    assert link.transmit("a2b", 100, "x", lambda: None)


def test_intra_scope_fault_spares_http():
    e = Engine()
    link = make_link(e)
    link.fail_for(intra_cluster_kind)
    assert not link.carries("tcp-seg")
    assert not link.carries("via-msg")
    assert not link.carries("rdma-write")
    assert link.carries("http-req")
    assert link.carries("http-resp")
    assert not link.up


def test_loss_fn_drops_probabilistically():
    e = Engine()
    flags = iter([False, True, False])
    link = make_link(e, loss_fn=lambda: next(flags))
    delivered = []
    for _ in range(3):
        link.transmit("a2b", 10, "x", lambda: delivered.append(1))
    e.run()
    assert len(delivered) == 2
    assert link.frames_lost == 1


def test_validation():
    e = Engine()
    with pytest.raises(ValueError):
        Link(e, "bad", bandwidth=0)
    with pytest.raises(ValueError):
        Link(e, "bad", latency=-1)


def test_intra_cluster_kind_classification():
    assert intra_cluster_kind("tcp-seg")
    assert intra_cluster_kind("via-credit")
    assert not intra_cluster_kind("http-req")
    assert not intra_cluster_kind("http-reject")
