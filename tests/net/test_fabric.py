"""Tests for switch, NIC, and end-to-end fabric behaviour."""

import pytest

from repro.net.fabric import Fabric
from repro.net.packet import Frame
from repro.net.switch import Switch
from repro.sim.engine import Engine


def build(engine, names=("a", "b"), **kw):
    fabric = Fabric(engine)
    nics = {n: fabric.attach(n, **kw) for n in names}
    return fabric, nics


def test_end_to_end_delivery():
    e = Engine()
    fabric, nics = build(e)
    got = []
    nics["b"].on_receive(lambda f: got.append(f.payload))
    nics["a"].send(Frame(src="a", dst="b", size=100, kind="x", payload="hi"))
    e.run()
    assert got == ["hi"]
    assert fabric.frames_delivered == 1


def test_kind_handler_takes_precedence():
    e = Engine()
    fabric, nics = build(e)
    fallback, specific = [], []
    nics["b"].on_receive(lambda f: fallback.append(f.kind))
    nics["b"].register("special", lambda f: specific.append(f.kind))
    nics["a"].send(Frame(src="a", dst="b", size=1, kind="special"))
    nics["a"].send(Frame(src="a", dst="b", size=1, kind="other"))
    e.run()
    assert specific == ["special"]
    assert fallback == ["other"]


def test_unknown_destination_raises():
    e = Engine()
    fabric, nics = build(e)
    with pytest.raises(KeyError):
        nics["a"].send(Frame(src="a", dst="zzz", size=1, kind="x"))


def test_duplicate_attach_rejected():
    e = Engine()
    fabric = Fabric(e)
    fabric.attach("a")
    with pytest.raises(ValueError):
        fabric.attach("a")


def test_powered_off_nic_does_not_send_or_receive():
    e = Engine()
    fabric, nics = build(e)
    got = []
    nics["b"].on_receive(lambda f: got.append(1))
    nics["b"].power_off()
    nics["a"].send(Frame(src="a", dst="b", size=1, kind="x"))
    e.run()
    assert got == []
    nics["b"].power_on()
    nics["b"].power_off()
    assert not nics["b"].send(Frame(src="b", dst="a", size=1, kind="x"))


def test_switch_failure_drops_everything():
    e = Engine()
    fabric, nics = build(e)
    got = []
    nics["b"].on_receive(lambda f: got.append(1))
    fabric.switch.fail()
    nics["a"].send(Frame(src="a", dst="b", size=1, kind="x"))
    e.run()
    assert got == []
    assert fabric.frames_lost >= 1


def test_san_nic_reports_unreachable_peer():
    """SAN (cLAN) semantics: a dead path is reported synchronously."""
    e = Engine()
    fabric, nics = build(e, reports_errors=True)
    errors = []
    nics["a"].on_error(errors.append)
    nics["b"].power_off()
    ok = nics["a"].send(Frame(src="a", dst="b", size=1, kind="via-msg"))
    assert not ok
    assert errors == ["unreachable:b"]


def test_lan_nic_loses_silently():
    """Without error reporting (TCP's world) losses are invisible."""
    e = Engine()
    fabric, nics = build(e, reports_errors=False)
    errors = []
    nics["a"].on_error(errors.append)
    nics["b"].power_off()
    nics["a"].send(Frame(src="a", dst="b", size=1, kind="tcp-seg"))
    e.run()
    assert errors == []


def test_error_reported_when_destination_dies_mid_flight():
    e = Engine()
    fabric, nics = build(e, reports_errors=True)
    errors = []
    nics["a"].on_error(errors.append)
    nics["a"].send(Frame(src="a", dst="b", size=125_000_000, kind="via-msg"))
    nics["b"].power_off()  # dies while the frame is on the wire
    e.run()
    assert any("node-down" in err or "unreachable" in err for err in errors)


def test_path_up_is_kind_aware():
    e = Engine()
    fabric, nics = build(e)
    from repro.net.link import intra_cluster_kind

    fabric.link("b").fail_for(intra_cluster_kind)
    assert not fabric.path_up("a", "b", "via-msg")
    assert fabric.path_up("a", "b", "http-req")


def test_switch_drop_mode_tail_drops():
    e = Engine()
    switch = Switch(e, drop_mode=True, queue_limit=2)
    fabric = Fabric(e, switch=switch)
    nics = {n: fabric.attach(n) for n in ("a", "b")}
    delivered = []
    nics["b"].on_receive(lambda f: delivered.append(1))
    for _ in range(5):
        # All submitted at t=0; queue_limit=2 per output port.
        switch.forward("b", lambda: delivered.append(1))
    e.run()
    assert switch.frames_dropped == 3
    assert len(delivered) == 2


def test_frame_size_validation():
    with pytest.raises(ValueError):
        Frame(src="a", dst="b", size=-1, kind="x")


def test_frame_ids_unique_and_deterministic_per_run():
    def run_ids():
        engine = Engine()
        fabric = Fabric(engine)
        src = fabric.attach("a")
        fabric.attach("b")
        f1 = Frame(src="a", dst="b", size=1, kind="x")
        f2 = Frame(src="a", dst="b", size=1, kind="x")
        src.send(f1)
        src.send(f2)
        return f1.frame_id, f2.frame_id

    first = run_ids()
    assert first[0] != first[1]
    # A fresh fabric restarts the counter: traces from two runs in the
    # same process are diffable.
    assert run_ids() == first
