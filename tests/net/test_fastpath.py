"""Unit tests for the fabric's event-reduction fast path.

Every test drives the same scenario through a fast-path fabric and a
reference fabric (``fastpath=False``) and asserts the observable outcome
— delivery timestamps, ordering, losses, error reports, counters — is
exactly identical, while the fast path uses fewer heap events.
"""

import pytest

from repro.net.fabric import Fabric
from repro.net.link import intra_cluster_kind
from repro.net.packet import Frame
from repro.sim.engine import Engine


def build(fastpath, names=("a", "b", "c"), **kw):
    e = Engine()
    fabric = Fabric(e, fastpath=fastpath)
    nics = {n: fabric.attach(n, **kw) for n in names}
    log = []
    for n in names:
        nics[n].on_receive(
            lambda f, _n=n: log.append((e.now, _n, f.frame_id, f.payload))
        )
    return e, fabric, nics, log


def frame(src, dst, size=1000, kind="x", payload=None):
    return Frame(src=src, dst=dst, size=size, kind=kind, payload=payload)


def run_both(scenario, **kw):
    """Run ``scenario(engine, fabric, nics)`` in both modes; return logs."""
    results = {}
    for fastpath in (True, False):
        e, fabric, nics, log = build(fastpath, **kw)
        scenario(e, fabric, nics)
        e.run()
        results[fastpath] = (e, fabric, nics, log)
    return results


def assert_identical(results):
    fast = results[True]
    slow = results[False]
    assert fast[3] == slow[3]  # timestamps, order, ids, payloads
    assert fast[1].frames_delivered == slow[1].frames_delivered
    assert fast[1].frames_lost == slow[1].frames_lost
    assert fast[1].switch.frames_forwarded == slow[1].switch.frames_forwarded
    for n in fast[2]:
        assert fast[2][n].frames_sent == slow[2][n].frames_sent
        assert fast[2][n].frames_received == slow[2][n].frames_received
    return fast, slow


def test_burst_identical_timestamps_fewer_events():
    def scenario(e, fabric, nics):
        for i in range(20):
            nics["a"].send(frame("a", "b", payload=i))

    fast, slow = assert_identical(run_both(scenario))
    assert len(fast[3]) == 20
    assert fast[0].events_processed < slow[0].events_processed


def test_mixed_sources_share_destination_serializer():
    """Reservations from several sources splice in switch-exit order."""

    def scenario(e, fabric, nics):
        for i in range(10):
            nics["a"].send(frame("a", "c", size=3000, payload=("a", i)))
            nics["b"].send(frame("b", "c", size=50, payload=("b", i)))

    fast, slow = assert_identical(run_both(scenario))
    assert len(fast[3]) == 20


def test_train_equals_per_frame_submission():
    def per_frame(e, fabric, nics):
        for i in range(12):
            nics["a"].send(frame("a", "b", payload=i))

    def train(e, fabric, nics):
        nics["a"].send_train([frame("a", "b", payload=i) for i in range(12)])

    e1, f1, n1, log1 = build(True)
    per_frame(e1, f1, n1)
    e1.run()
    e2, f2, n2, log2 = build(True)
    train(e2, f2, n2)
    e2.run()
    assert log1 == log2
    assert f1.frames_delivered == f2.frames_delivered
    assert n1["a"].frames_sent == n2["a"].frames_sent


def test_midflight_link_failure_materializes():
    """A link fault while fast frames are in flight: identical losses."""

    def scenario(e, fabric, nics):
        for i in range(15):
            nics["a"].send(frame("a", "b", size=125_000, payload=i))
        # Lands while part of the burst is still on the wire.
        e.call_after(0.004, fabric.link("b").fail)

    fast, slow = assert_identical(run_both(scenario, reports_errors=False))
    assert fast[1].frames_lost > 0  # the fault actually bit


def test_midflight_node_crash_reports_errors():
    """SAN semantics survive materialization: same error reports."""
    errors = {}

    def make(fastpath):
        e, fabric, nics, log = build(fastpath, reports_errors=True)
        errs = []
        nics["a"].on_error(errs.append)
        for i in range(10):
            nics["a"].send(frame("a", "b", size=125_000, kind="via-msg", payload=i))
        e.call_after(0.003, nics["b"].power_off)
        e.run()
        errors[fastpath] = errs
        return e, fabric, nics, log

    fast = make(True)
    slow = make(False)
    assert fast[3] == slow[3]
    assert errors[True] == errors[False]
    assert errors[True]  # the crash was observed


def test_switch_failure_midflight():
    def scenario(e, fabric, nics):
        for i in range(10):
            nics["a"].send(frame("a", "b", size=125_000, payload=i))
        e.call_after(0.003, fabric.switch.fail)

    assert_identical(run_both(scenario, reports_errors=False))


def test_kind_filtered_link_forces_slow_path():
    """A kind-selective link fault must disable the fast path entirely
    (the fast path cannot evaluate per-kind filters in closed form)."""

    def scenario(e, fabric, nics):
        fabric.link("b").fail_for(intra_cluster_kind)
        nics["a"].send(frame("a", "b", kind="via-msg", payload="dropped"))
        nics["a"].send(frame("a", "b", kind="http-req", payload="carried"))

    fast, slow = assert_identical(run_both(scenario, reports_errors=False))
    delivered = [entry[3] for entry in fast[3]]
    assert delivered == ["carried"]


def test_eligibility_cache_invalidated_by_faults():
    e, fabric, nics, log = build(True)
    assert fabric.fast_eligible("a", "b")
    fabric.link("b").fail()
    assert not fabric.fast_eligible("a", "b")
    fabric.link("b").repair()
    assert fabric.fast_eligible("a", "b")
    fabric.switch.fail()
    assert not fabric.fast_eligible("a", "b")
    fabric.switch.repair()
    assert fabric.fast_eligible("a", "b")
    nics["b"].power_off()
    assert not fabric.fast_eligible("a", "b")
    nics["b"].power_on()
    assert fabric.fast_eligible("a", "b")
    # Reference mode never claims eligibility.
    e2, fabric2, _, _ = build(False)
    assert not fabric2.fast_eligible("a", "b")


def test_repair_midflight_keeps_results_identical():
    """Fail *and* repair while traffic flows: two materializations."""

    def scenario(e, fabric, nics):
        def burst():
            for i in range(8):
                nics["a"].send(frame("a", "b", size=60_000, payload=i))

        burst()
        e.call_after(0.002, fabric.link("b").fail)
        e.call_after(0.004, fabric.link("b").repair)
        e.call_after(0.005, burst)

    assert_identical(run_both(scenario, reports_errors=False))
