"""Tests for the phase-2 availability/performance model (AT/AA)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.faultload import ComponentFault, FaultLoad
from repro.core.model import MissingProfile, ProfileSet, evaluate
from repro.core.stages import SevenStageProfile, Stage
from repro.faults.spec import FaultKind


def profile_set(tn=1000.0, version="V"):
    return ProfileSet(version, tn)


def simple_profile(fault, tn, duration, throughput):
    return SevenStageProfile.from_pairs(
        fault, "V", tn, [(Stage.A, duration, throughput)]
    )


def load_of(*components):
    return FaultLoad(components=tuple(components))


def test_no_faults_means_perfect_availability():
    ps = profile_set()
    result = evaluate(ps, load_of())
    assert result.availability == 1.0
    assert result.average_throughput == 1000.0


def test_single_fault_matches_hand_computation():
    """AT = (1 - D/MTTF) Tn + (D/MTTF) T_A."""
    ps = profile_set(tn=1000.0)
    ps.add(simple_profile("node-crash", 1000.0, duration=100.0, throughput=400.0))
    load = load_of(ComponentFault(FaultKind.NODE_CRASH, mttf=10_000.0, mttr=60.0))
    result = evaluate(ps, load)
    expected_at = (1 - 100 / 10_000) * 1000 + (100 / 10_000) * 400
    assert result.average_throughput == pytest.approx(expected_at)
    assert result.availability == pytest.approx(expected_at / 1000)


def test_total_outage_unavailability_is_time_fraction():
    ps = profile_set(tn=1000.0)
    ps.add(simple_profile("switch-down", 1000.0, duration=50.0, throughput=0.0))
    load = load_of(ComponentFault(FaultKind.SWITCH_DOWN, mttf=5000.0, mttr=50.0))
    result = evaluate(ps, load)
    assert result.unavailability == pytest.approx(50 / 5000)


def test_contributions_sum_to_total_unavailability():
    ps = profile_set(tn=1000.0)
    ps.add(simple_profile("node-crash", 1000.0, 100.0, 300.0))
    ps.add(simple_profile("link-down", 1000.0, 30.0, 0.0))
    load = load_of(
        ComponentFault(FaultKind.NODE_CRASH, mttf=10_000.0, mttr=60.0),
        ComponentFault(FaultKind.LINK_DOWN, mttf=50_000.0, mttr=60.0),
    )
    result = evaluate(ps, load)
    total = sum(c.unavailability for c in result.contributions)
    assert total == pytest.approx(result.unavailability)


def test_no_impact_profile_contributes_nothing():
    ps = profile_set(tn=1000.0)
    ps.add(SevenStageProfile.no_impact("kernel-memory-allocation", "V", 1000.0))
    load = load_of(
        ComponentFault(FaultKind.KERNEL_MEMORY, mttf=1000.0, mttr=60.0)
    )
    result = evaluate(ps, load)
    assert result.availability == 1.0


def test_profile_key_remapping():
    """Sensitivity scenarios reuse a measured profile under a new name
    (packet drops behave like app crashes)."""
    ps = profile_set(tn=1000.0)
    ps.add(simple_profile("application-crash", 1000.0, 100.0, 500.0))
    drop = ComponentFault(
        FaultKind.APP_CRASH,
        mttf=10_000.0,
        mttr=60.0,
        profile_key="application-crash",
        label="packet-drop",
    )
    result = evaluate(ps, load_of(drop))
    assert result.contributions[0].name == "packet-drop"
    assert result.unavailability > 0


def test_missing_profile_raises():
    ps = profile_set()
    load = load_of(ComponentFault(FaultKind.NODE_CRASH, mttf=100.0, mttr=1.0))
    with pytest.raises(MissingProfile):
        evaluate(ps, load)


def test_degraded_time_exceeding_mttf_rejected():
    ps = profile_set(tn=1000.0)
    ps.add(simple_profile("node-crash", 1000.0, duration=200.0, throughput=0.0))
    load = load_of(ComponentFault(FaultKind.NODE_CRASH, mttf=100.0, mttr=60.0))
    with pytest.raises(ValueError):
        evaluate(ps, load)


def test_grouped_unavailability():
    ps = profile_set(tn=1000.0)
    ps.add(simple_profile("node-crash", 1000.0, 100.0, 0.0))
    ps.add(simple_profile("node-freeze", 1000.0, 100.0, 0.0))
    load = load_of(
        ComponentFault(FaultKind.NODE_CRASH, mttf=10_000.0, mttr=60.0),
        ComponentFault(FaultKind.NODE_FREEZE, mttf=10_000.0, mttr=60.0),
    )
    result = evaluate(ps, load)
    grouped = result.grouped_unavailability(
        {"node-crash": "node", "node-freeze": "node"}
    )
    assert grouped == {"node": pytest.approx(0.02)}


@settings(max_examples=60)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=100.0),  # duration
            st.floats(min_value=0.0, max_value=1.0),  # throughput fraction
            st.floats(min_value=1e4, max_value=1e8),  # mttf
        ),
        min_size=0,
        max_size=6,
    )
)
def test_property_availability_in_unit_interval(rows):
    ps = profile_set(tn=500.0)
    kinds = list(FaultKind)
    components = []
    for i, (duration, frac, mttf) in enumerate(rows):
        kind = kinds[i % len(kinds)]
        key = f"fault{i}"
        ps.add(
            SevenStageProfile.from_pairs(
                key, "V", 500.0, [(Stage.A, duration, 500.0 * frac)]
            )
        )
        components.append(
            ComponentFault(kind, mttf=mttf, mttr=60.0, profile_key=key)
        )
    result = evaluate(ps, FaultLoad(components=tuple(components)))
    assert 0.0 <= result.availability <= 1.0
    assert result.average_throughput <= 500.0 + 1e-9


@settings(max_examples=40)
@given(st.floats(min_value=1e5, max_value=1e9))
def test_property_higher_mttf_never_hurts(mttf):
    ps = profile_set(tn=1000.0)
    ps.add(simple_profile("node-crash", 1000.0, 100.0, 200.0))

    def aa(m):
        load = load_of(ComponentFault(FaultKind.NODE_CRASH, mttf=m, mttr=60.0))
        return evaluate(ps, load).availability

    assert aa(mttf * 2) >= aa(mttf)
