"""Golden-profile regression tests.

Each fixture under ``tests/core/golden/`` is the fitted 7-stage profile
of one (version, fault) phase-1 run at a pinned seed.  Any refactor of
the simulation, the timeline collection, or the extraction/fit code that
shifts these numbers trips the comparison — intentionally: such a change
must either be a bug or come with regenerated goldens.

Regenerate with::

    PYTHONPATH=src python tests/core/test_golden_profiles.py --regen
"""

import json
import sys
from pathlib import Path

import pytest

from repro.core.extract import extract_profile
from repro.core.stages import STAGES, SevenStageProfile
from repro.experiments.phase1 import run_single_fault
from repro.experiments.settings import FAULT_MTTR, Phase1Settings
from repro.faults.spec import FaultKind
from repro.press.cluster import SMOKE_SCALE
from repro.press.config import ALL_VERSIONS_EXTENDED

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Pinned layout — changing any of this invalidates the fixtures.
GOLDEN_SETTINGS = Phase1Settings(
    scale=SMOKE_SCALE,
    seed=1234,
    warm=15.0,
    fault_at=30.0,
    fault_duration=40.0,
    post_recovery=60.0,
    tail=40.0,
    replications=1,
)

GOLDEN_CASES = (
    ("TCP-PRESS", FaultKind.LINK_DOWN),
    ("VIA-PRESS-5", FaultKind.NODE_CRASH),
)


def _measure(version: str, kind: FaultKind) -> SevenStageProfile:
    record, _cluster = run_single_fault(
        ALL_VERSIONS_EXTENDED[version], kind, GOLDEN_SETTINGS
    )
    return extract_profile(
        record, mttr=FAULT_MTTR[kind], env=GOLDEN_SETTINGS.environment
    )


def _fixture_path(version: str, kind: FaultKind) -> Path:
    return GOLDEN_DIR / f"{version}_{kind.value}.json"


@pytest.mark.parametrize("version,kind", GOLDEN_CASES)
def test_profile_matches_golden(version, kind):
    path = _fixture_path(version, kind)
    golden = SevenStageProfile.from_dict(json.loads(path.read_text()))
    measured = _measure(version, kind)

    assert measured.fault == golden.fault
    assert measured.version == golden.version
    assert measured.normal_throughput == pytest.approx(
        golden.normal_throughput, rel=1e-6
    )
    for stage in STAGES:
        assert measured.duration(stage) == pytest.approx(
            golden.duration(stage), rel=1e-6, abs=1e-9
        ), f"{version}/{kind.value} stage {stage.value} duration"
        assert measured.throughput(stage) == pytest.approx(
            golden.throughput(stage), rel=1e-6, abs=1e-9
        ), f"{version}/{kind.value} stage {stage.value} throughput"


@pytest.mark.parametrize("version,kind", GOLDEN_CASES)
def test_golden_fixture_is_nontrivial(version, kind):
    """Guard against a regenerated fixture silently becoming no-impact."""
    golden = SevenStageProfile.from_dict(
        json.loads(_fixture_path(version, kind).read_text())
    )
    assert golden.total_duration > 0


def _regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for version, kind in GOLDEN_CASES:
        path = _fixture_path(version, kind)
        path.write_text(
            json.dumps(_measure(version, kind).to_dict(), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"wrote {path}")


if __name__ == "__main__" and "--regen" in sys.argv:
    _regen()
