"""Unit tests for the detector-vs-ground-truth divergence scorer.

These are synthetic: hand-built timelines and records pin the reference
interval construction, the misclassified-duration sweep, and the report
arithmetic without running any simulation (the end-to-end agreement on
real runs is asserted in ``tests/obs/test_observatory.py``).
"""

import pytest

from repro.core.divergence import (
    divergence_report,
    misclassified_duration,
    reference_intervals,
)
from repro.core.extract import DEFAULT_ENVIRONMENT, ExperimentRecord
from repro.sim.monitor import Timeline


def _timeline(rates, width=1.0):
    return Timeline(
        version="V",
        fault="f",
        bucket_width=width,
        series=[(i * width, float(r)) for i, r in enumerate(rates)],
        normal_throughput=10.0,
    )


def _record(**overrides):
    """A canonical impactful run: Tn=10, inject at 30, repair at 70,
    degraded to 2 in between, instant recovery afterwards, end at 130."""
    rates = [10.0] * 30 + [2.0] * 40 + [10.0] * 60
    defaults = dict(
        version="V",
        fault="f",
        timeline=_timeline(rates),
        normal_throughput=10.0,
        injected_at=30.0,
        cleared_at=70.0,
        end_time=130.0,
        detection_at=30.5,
        recovered_fully=True,
    )
    defaults.update(overrides)
    return ExperimentRecord(**defaults)


# ----------------------------------------------------------------------
# reference_intervals
# ----------------------------------------------------------------------


def _assert_contiguous(spans, end):
    assert spans[0][1] == 0.0
    assert spans[-1][2] == end
    for prev, nxt in zip(spans, spans[1:]):
        assert prev[2] == pytest.approx(nxt[1]), (prev, nxt)


def test_reference_intervals_cover_the_run_in_order():
    spans = reference_intervals(_record())
    _assert_contiguous(spans, 130.0)
    W = DEFAULT_ENVIRONMENT.transient_window
    assert spans == [
        ["normal", 0.0, 30.0],
        ["A", 30.0, 30.5],
        ["B", 30.5, 30.5 + W],
        ["C", 30.5 + W, 70.0],
        ["D", 70.0, 70.0 + W],
        ["normal", 70.0 + W, 130.0],
    ]


def test_detection_after_repair_keeps_a_and_d_disjoint():
    """A heartbeat timeout can fire after the reboot is already underway:
    stage A runs through the late detection and D starts where A ends."""
    spans = reference_intervals(_record(detection_at=75.0))
    _assert_contiguous(spans, 130.0)
    stages = [s for s, _, _ in spans]
    assert stages == ["normal", "A", "D", "normal"]
    a = next(span for span in spans if span[0] == "A")
    d = next(span for span in spans if span[0] == "D")
    assert a[2] == 75.0 and d[1] == 75.0


def test_undetected_run_has_a_until_repair():
    spans = reference_intervals(_record(detection_at=None))
    stages = [s for s, _, _ in spans]
    assert stages == ["normal", "A", "D", "normal"]
    a = next(span for span in spans if span[0] == "A")
    assert (a[1], a[2]) == (30.0, 70.0)


def test_no_impact_run_is_all_normal():
    record = _record(
        timeline=_timeline([10.0] * 130), detection_at=None
    )
    assert reference_intervals(record) == [["normal", 0.0, 130.0]]


def test_operator_reset_produces_e_f_g():
    record = _record(
        timeline=_timeline([10.0] * 30 + [2.0] * 100),
        reset_at=100.0,
        recovered_fully=False,
    )
    spans = reference_intervals(record)
    _assert_contiguous(spans, 130.0)
    W = DEFAULT_ENVIRONMENT.transient_window
    assert [s for s, _, _ in spans] == [
        "normal", "A", "B", "C", "D", "E", "F", "G", "normal",
    ]
    f = next(span for span in spans if span[0] == "F")
    g = next(span for span in spans if span[0] == "G")
    assert f == ["F", 100.0, 100.0 + W]
    assert g == ["G", 100.0 + W, 100.0 + 2 * W]


def test_never_recovered_run_ends_in_e():
    record = _record(
        timeline=_timeline([10.0] * 30 + [2.0] * 100),
        recovered_fully=False,
    )
    spans = reference_intervals(record)
    assert spans[-1][0] == "E"
    assert spans[-1][2] == 130.0


# ----------------------------------------------------------------------
# misclassified_duration
# ----------------------------------------------------------------------


def test_identical_labelings_have_zero_disagreement():
    spans = [["normal", 0.0, 10.0], ["A", 10.0, 20.0]]
    assert misclassified_duration(spans, [list(s) for s in spans]) == 0.0


def test_shifted_boundary_counts_its_offset():
    online = [["normal", 0.0, 12.0], ["A", 12.0, 20.0]]
    reference = [["normal", 0.0, 10.0], ["A", 10.0, 20.0]]
    assert misclassified_duration(online, reference) == pytest.approx(2.0)


def test_uncovered_time_counts_as_disagreement():
    online = [["A", 0.0, 10.0]]
    reference = [["A", 0.0, 10.0], ["B", 10.0, 15.0]]
    assert misclassified_duration(online, reference) == pytest.approx(5.0)


# ----------------------------------------------------------------------
# divergence_report
# ----------------------------------------------------------------------


def _online_from(spans, record):
    return {
        "intervals": [list(s) for s in spans],
        "injected_at": record.injected_at,
        "detected_at": record.detection_at,
        "repaired_at": max(record.cleared_at, record.injected_at),
        "reset_at": record.reset_at,
    }


def test_perfect_online_summary_scores_zero():
    record = _record()
    report = divergence_report(
        _online_from(reference_intervals(record), record), record
    )
    assert report["max_boundary_error"] == 0.0
    assert report["misclassified_s"] == 0.0
    assert report["misclassified_frac"] == 0.0
    assert report["online_missing"] == []
    assert report["online_extra"] == []
    for entry in report["boundaries"].values():
        assert entry["error"] == 0.0


def test_boundary_errors_are_signed_online_minus_reference():
    record = _record()
    spans = reference_intervals(record)
    online = _online_from(spans, record)
    online["detected_at"] = record.detection_at + 0.5
    d = next(span for span in online["intervals"] if span[0] == "D")
    d[2] += 2.0  # the online D ran two seconds long
    report = divergence_report(online, record)
    assert report["boundaries"]["detection"]["error"] == pytest.approx(0.5)
    assert report["boundaries"]["transient_end"]["error"] == pytest.approx(2.0)
    assert report["max_boundary_error"] == pytest.approx(2.0)
    assert report["misclassified_s"] > 0.0


def test_one_sided_boundaries_have_no_error_entry():
    record = _record()
    online = _online_from(reference_intervals(record), record)
    online["detected_at"] = None  # the detector missed it
    report = divergence_report(online, record)
    entry = report["boundaries"]["detection"]
    assert entry["online"] is None
    assert entry["reference"] == record.detection_at
    assert "error" not in entry
    # ...and a boundary neither side observed is absent entirely.
    assert "reset" not in report["boundaries"]


def test_missing_and_extra_stages_are_reported():
    record = _record()
    online = _online_from(
        [
            ["normal", 0.0, 30.0],
            ["A", 30.0, 70.0],
            ["E", 70.0, 130.0],  # never saw B/C/D, invented a plateau
        ],
        record,
    )
    report = divergence_report(online, record)
    assert report["online_missing"] == ["B", "C", "D"]
    assert report["online_extra"] == ["E"]
