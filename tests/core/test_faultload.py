"""Tests for fault loads (Table 3) and their transformations."""

import pytest

from repro.core.faultload import (
    APPLICATION_FAULT_SPLIT,
    DAY,
    HOUR,
    MINUTE,
    MONTH,
    WEEK,
    YEAR,
    ComponentFault,
    FaultLoad,
    packet_drop_component,
    software_bug_component,
    system_bug_component,
)
from repro.faults.spec import FaultKind


def test_application_split_matches_field_study():
    """Chillarege et al.: crash 40%, hang 40%, null 8%, ptr 9%, size 2%."""
    assert APPLICATION_FAULT_SPLIT[FaultKind.APP_CRASH] == 0.40
    assert APPLICATION_FAULT_SPLIT[FaultKind.APP_HANG] == 0.40
    assert APPLICATION_FAULT_SPLIT[FaultKind.BAD_PARAM_NULL] == 0.08
    assert APPLICATION_FAULT_SPLIT[FaultKind.BAD_PARAM_OFFSET] == 0.09
    assert APPLICATION_FAULT_SPLIT[FaultKind.BAD_PARAM_SIZE] == 0.02
    # The paper gives "approximately" these shares; they sum to 99%.
    assert sum(APPLICATION_FAULT_SPLIT.values()) == pytest.approx(0.99)


def test_table3_rows_present_with_paper_rates():
    load = FaultLoad.table3(app_fault_mttf=DAY, n_nodes=4)
    by_kind = {}
    for c in load:
        by_kind.setdefault(c.kind, []).append(c)
    # Cluster-level MTTFs: per-node rates x 4 nodes.
    assert by_kind[FaultKind.NODE_CRASH][0].mttf == pytest.approx(2 * WEEK / 4)
    assert by_kind[FaultKind.LINK_DOWN][0].mttf == pytest.approx(6 * MONTH / 4)
    assert by_kind[FaultKind.SWITCH_DOWN][0].mttf == pytest.approx(YEAR)
    assert by_kind[FaultKind.SWITCH_DOWN][0].mttr == pytest.approx(HOUR)
    assert by_kind[FaultKind.MEMORY_PINNING][0].mttr == pytest.approx(3 * MINUTE)


def test_app_fault_rates_split_by_share():
    load = FaultLoad.table3(app_fault_mttf=DAY, n_nodes=4)
    crash = next(c for c in load if c.kind is FaultKind.APP_CRASH)
    null = next(c for c in load if c.kind is FaultKind.BAD_PARAM_NULL)
    # crash rate / null rate == 0.40 / 0.08
    assert (1 / crash.mttf) / (1 / null.mttf) == pytest.approx(5.0)
    # Combined application rate = n_nodes / app_fault_mttf (x the 99%
    # coverage of the paper's approximate split).
    app_rate = sum(
        1 / c.mttf for c in load if c.kind in APPLICATION_FAULT_SPLIT
    )
    assert app_rate == pytest.approx(0.99 * 4 / DAY)


def test_scaled_divides_mttf():
    load = FaultLoad.table3(app_fault_mttf=DAY)
    doubled = load.scaled(2.0)
    assert doubled.total_rate() == pytest.approx(2 * load.total_rate())


def test_scaled_subset_only_touches_selected_kinds():
    load = FaultLoad.table3(app_fault_mttf=DAY)
    scaled = load.scaled(3.0, kinds=[FaultKind.SWITCH_DOWN])
    orig = {c.name: c.mttf for c in load}
    new = {c.name: c.mttf for c in scaled}
    for name in orig:
        if name == FaultKind.SWITCH_DOWN.value:
            assert new[name] == pytest.approx(orig[name] / 3)
        else:
            assert new[name] == orig[name]


def test_scaled_validation():
    load = FaultLoad.table3()
    with pytest.raises(ValueError):
        load.scaled(0.0)


def test_with_extra_appends():
    load = FaultLoad.table3()
    bigger = load.with_extra(packet_drop_component(WEEK))
    assert len(bigger) == len(load) + 1


def test_packet_drop_reuses_app_crash_profile():
    c = packet_drop_component(WEEK, n_nodes=4)
    assert c.key == FaultKind.APP_CRASH.value
    assert c.name == "packet-drop"
    assert c.mttf == pytest.approx(WEEK / 4)


def test_system_bug_is_a_switch_crash():
    c = system_bug_component(MONTH)
    assert c.key == FaultKind.SWITCH_DOWN.value
    assert c.mttr == pytest.approx(HOUR)


def test_software_bug_behaves_like_app_crash():
    c = software_bug_component(MONTH)
    assert c.key == FaultKind.APP_CRASH.value


def test_component_rate():
    c = ComponentFault(FaultKind.NODE_CRASH, mttf=100.0, mttr=1.0)
    assert c.rate == pytest.approx(0.01)
    assert c.name == "node-crash"
