"""Tests for the seven-stage model data structures."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.stages import STAGES, SevenStageProfile, Stage, StagePoint


def test_all_seven_stages_exist():
    assert [s.value for s in STAGES] == list("ABCDEFG")


def test_missing_stages_default_to_zero():
    p = SevenStageProfile(fault="f", version="v", normal_throughput=100.0)
    for stage in STAGES:
        assert p.duration(stage) == 0.0
        assert p.throughput(stage) == 0.0
    assert p.total_duration == 0.0
    assert p.lost_work == 0.0


def test_with_stage_is_immutable_update():
    p = SevenStageProfile(fault="f", version="v", normal_throughput=100.0)
    q = p.with_stage(Stage.A, 10.0, 50.0)
    assert p.duration(Stage.A) == 0.0
    assert q.duration(Stage.A) == 10.0
    assert q.throughput(Stage.A) == 50.0


def test_lost_work_accumulates_over_stages():
    p = SevenStageProfile.from_pairs(
        "f", "v", 100.0, [(Stage.A, 10.0, 0.0), (Stage.C, 20.0, 50.0)]
    )
    assert p.lost_work == pytest.approx(10 * 100 + 20 * 50)
    assert p.total_duration == 30.0


def test_degradation():
    p = SevenStageProfile.from_pairs("f", "v", 200.0, [(Stage.A, 5.0, 150.0)])
    assert p.degradation(Stage.A) == pytest.approx(0.25)
    assert p.degradation(Stage.B) == pytest.approx(1.0)  # zero throughput


def test_no_impact_profile():
    p = SevenStageProfile.no_impact("f", "v", 100.0)
    assert p.lost_work == 0.0
    assert "no impact" in p.describe()


def test_validation():
    with pytest.raises(ValueError):
        SevenStageProfile(fault="f", version="v", normal_throughput=0.0)
    with pytest.raises(ValueError):
        StagePoint(duration=-1.0, throughput=0.0)
    with pytest.raises(ValueError):
        StagePoint(duration=1.0, throughput=-5.0)


def test_describe_lists_nonzero_stages():
    p = SevenStageProfile.from_pairs(
        "link-down", "TCP", 100.0, [(Stage.A, 12.0, 30.0)]
    )
    text = p.describe()
    assert "A:12.0s@30" in text
    assert "B:" not in text


@given(
    st.lists(
        st.tuples(
            st.sampled_from(list(STAGES)),
            st.floats(min_value=0, max_value=1e4),
            st.floats(min_value=0, max_value=1e4),
        ),
        max_size=7,
        unique_by=lambda x: x[0],
    ),
    st.floats(min_value=1e-3, max_value=1e5),
)
def test_property_lost_work_nonnegative_when_throughput_below_tn(pairs, tn):
    clamped = [(s, d, min(t, tn)) for s, d, t in pairs]
    p = SevenStageProfile.from_pairs("f", "v", tn, clamped)
    assert p.lost_work >= -1e-9
    assert p.total_duration == pytest.approx(sum(d for _s, d, _t in clamped))
