"""Round-trip tests for profile / profile-set serialization.

The campaign result store persists fitted profiles as JSON; parallel
campaign cells return them through pickled dicts.  Both paths must
reproduce the floats bit-for-bit or the "parallel == serial" and
"warm store == cold run" guarantees quietly erode.
"""

import json
import math

import pytest

from repro.core.model import ProfileSet
from repro.core.stages import STAGES, SevenStageProfile, Stage


def _profile(version="TCP-PRESS", fault="link-down", tn=4220.7):
    return SevenStageProfile.from_pairs(
        fault,
        version,
        tn,
        [
            (Stage.A, 180.0, 245.3333333333333),
            (Stage.C, 169.93333333333334, 3829.123456789),
            (Stage.D, 24.0, 1750.0),
        ],
    )


class TestProfileRoundTrip:
    def test_dict_round_trip_is_exact(self):
        p = _profile()
        q = SevenStageProfile.from_dict(p.to_dict())
        assert q == p

    def test_json_round_trip_is_exact(self):
        """Through actual JSON text: repr-based float serialization is
        lossless for doubles."""
        p = _profile(tn=1.0000000000000002e3)
        q = SevenStageProfile.from_dict(json.loads(json.dumps(p.to_dict())))
        for stage in STAGES:
            assert q.duration(stage) == p.duration(stage)
            assert q.throughput(stage) == p.throughput(stage)
        assert q.normal_throughput == p.normal_throughput

    def test_no_impact_profile_round_trips(self):
        p = SevenStageProfile.no_impact("application-crash", "VIA-PRESS-5", 7000.0)
        q = SevenStageProfile.from_dict(json.loads(json.dumps(p.to_dict())))
        assert q == p
        assert q.total_duration == 0.0

    def test_unexhibited_stages_stay_zero(self):
        p = _profile()
        data = p.to_dict()
        # Zero stages are omitted from the wire format entirely.
        assert set(data["stages"]) == {"A", "C", "D"}
        q = SevenStageProfile.from_dict(data)
        assert q.duration(Stage.F) == 0.0 and q.throughput(Stage.F) == 0.0


class TestProfileSetRoundTrip:
    def _profile_set(self):
        ps = ProfileSet("TCP-PRESS", 4220.7)
        ps.add(_profile(fault="link-down"))
        ps.add(SevenStageProfile.no_impact("node-crash", "TCP-PRESS", 4220.7))
        return ps

    def test_round_trip_preserves_everything(self):
        ps = self._profile_set()
        qs = ProfileSet.from_dict(json.loads(json.dumps(ps.to_dict())))
        assert qs.version == ps.version
        assert qs.normal_throughput == ps.normal_throughput
        assert set(qs.keys()) == set(ps.keys())
        for key in ps.keys():
            assert qs.get(key) == ps.get(key)

    def test_isclose_accepts_round_trip(self):
        ps = self._profile_set()
        qs = ProfileSet.from_dict(ps.to_dict())
        assert ps.isclose(qs, rel_tol=0.0)

    def test_isclose_rejects_version_mismatch(self):
        ps = self._profile_set()
        other = ProfileSet("VIA-PRESS-5", ps.normal_throughput)
        assert not ps.isclose(other)

    def test_isclose_rejects_differing_stage(self):
        ps = self._profile_set()
        qs = ProfileSet.from_dict(ps.to_dict())
        qs.add(_profile(fault="link-down", tn=4220.7).with_stage(Stage.A, 999.0, 1.0))
        assert not ps.isclose(qs)

    def test_isclose_tolerance_is_relative(self):
        ps = self._profile_set()
        data = ps.to_dict()
        data["normal_throughput"] *= 1 + 1e-12
        qs = ProfileSet.from_dict(data)
        assert ps.isclose(qs, rel_tol=1e-9)
        assert not ps.isclose(qs, rel_tol=1e-15) or math.isclose(
            ps.normal_throughput, qs.normal_throughput, rel_tol=1e-15
        )
