"""Tests for the performability metric P = Tn * log(A_I)/log(AA)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metric import IDEAL_AVAILABILITY, performability


def test_linear_in_throughput():
    p1 = performability(1000.0, 0.999)
    p2 = performability(2000.0, 0.999)
    assert p2 == pytest.approx(2 * p1)


def test_halving_unavailability_roughly_doubles_p():
    """The paper's design property: log(1-u) ~ -u for small u."""
    p1 = performability(1000.0, 1 - 1e-3)
    p2 = performability(1000.0, 1 - 5e-4)
    assert p2 / p1 == pytest.approx(2.0, rel=0.01)


def test_ideal_availability_gives_tn():
    assert performability(1234.0, IDEAL_AVAILABILITY) == pytest.approx(1234.0)


def test_perfect_availability_is_finite():
    assert math.isfinite(performability(1000.0, 1.0))
    assert performability(1000.0, 1.0) > 0


def test_zero_availability_is_tiny_but_defined():
    assert performability(1000.0, 0.0) >= 0.0


def test_custom_ideal():
    p = performability(100.0, 0.99, ideal=0.99)
    assert p == pytest.approx(100.0)


def test_validation():
    with pytest.raises(ValueError):
        performability(-1.0, 0.9)
    with pytest.raises(ValueError):
        performability(1.0, 1.5)
    with pytest.raises(ValueError):
        performability(1.0, 0.9, ideal=1.0)


@settings(max_examples=80)
@given(
    st.floats(min_value=0.0, max_value=1e6),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_property_nonnegative_and_finite(tn, aa):
    p = performability(tn, aa)
    assert p >= 0.0
    assert math.isfinite(p)


@settings(max_examples=60)
@given(
    st.floats(min_value=1.0, max_value=1e5),
    st.floats(min_value=0.5, max_value=0.9999),
    st.floats(min_value=0.5, max_value=0.9999),
)
def test_property_monotone_in_availability(tn, a1, a2):
    lo, hi = sorted((a1, a2))
    assert performability(tn, hi) >= performability(tn, lo)
