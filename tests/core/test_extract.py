"""Tests for timeline -> seven-stage profile extraction."""

import pytest

from repro.core.extract import (
    DEFAULT_ENVIRONMENT,
    Environment,
    ExperimentRecord,
    extract_profile,
)
from repro.core.stages import Stage
from repro.sim.monitor import Timeline

TN = 1000.0
ENV = Environment(
    operator_response=600.0,
    transient_window=10.0,
    steady_window=20.0,
)


def make_timeline(rates, bucket=1.0):
    """rates: list of (start, end, rate) segments."""
    series = []
    t = 0.0
    end_total = max(end for _s, end, _r in rates)
    while t < end_total:
        rate = 0.0
        for s, e, r in rates:
            if s <= t < e:
                rate = r
                break
        series.append((t, rate))
        t += bucket
    return Timeline(version="V", fault="f", bucket_width=bucket, series=series)


def record(timeline, **kw):
    defaults = dict(
        version="V",
        fault="f",
        timeline=timeline,
        normal_throughput=TN,
        injected_at=50.0,
        cleared_at=100.0,
        end_time=200.0,
    )
    defaults.update(kw)
    return ExperimentRecord(**defaults)


def test_no_impact_detected():
    tl = make_timeline([(0, 200, TN)])
    profile = extract_profile(record(tl), mttr=180.0, env=ENV)
    assert profile.total_duration == 0.0


def test_undetected_fault_spans_full_mttr_in_stage_a():
    """A fault the service never notices degrades it until repair."""
    tl = make_timeline([(0, 50, TN), (50, 100, 100.0), (100, 200, TN)])
    profile = extract_profile(record(tl), mttr=180.0, env=ENV)
    assert profile.duration(Stage.A) == pytest.approx(180.0)
    assert profile.throughput(Stage.A) == pytest.approx(100.0, rel=0.05)
    assert profile.duration(Stage.B) == 0.0
    assert profile.duration(Stage.C) == 0.0


def test_detected_fault_splits_a_b_c():
    tl = make_timeline([(0, 50, TN), (50, 65, 200.0), (65, 100, 700.0), (100, 200, TN)])
    profile = extract_profile(
        record(tl, detection_at=65.0), mttr=180.0, env=ENV
    )
    assert profile.duration(Stage.A) == pytest.approx(15.0)
    assert profile.throughput(Stage.A) == pytest.approx(200.0, rel=0.1)
    assert profile.duration(Stage.B) == pytest.approx(10.0)
    # C fills the rest of the MTTR at the stable degraded level.
    assert profile.duration(Stage.C) == pytest.approx(180.0 - 25.0)
    assert profile.throughput(Stage.C) == pytest.approx(700.0, rel=0.1)


def test_stage_d_covers_post_repair_recovery_lag():
    """TCP's backoff keeps throughput at 0 past the repair instant."""
    tl = make_timeline(
        [(0, 50, TN), (50, 100, 0.0), (100, 130, 0.0), (130, 200, TN)]
    )
    profile = extract_profile(record(tl), mttr=180.0, env=ENV)
    # D spans from clear (100) through sustained recovery (~130) + window.
    assert profile.duration(Stage.D) >= 30.0
    assert profile.throughput(Stage.D) < TN * 0.5


def test_unrecovered_service_gets_stage_e_at_operator_response():
    tl = make_timeline([(0, 50, TN), (50, 200, 750.0)])
    profile = extract_profile(
        record(tl, recovered_fully=False), mttr=180.0, env=ENV
    )
    assert profile.duration(Stage.E) == pytest.approx(600.0)
    assert profile.throughput(Stage.E) == pytest.approx(750.0, rel=0.05)


def test_simulated_reset_measures_f_and_g():
    tl = make_timeline(
        [(0, 50, TN), (50, 100, 800.0), (100, 150, 800.0),
         (150, 160, 300.0), (160, 200, TN)]
    )
    profile = extract_profile(
        record(tl, reset_at=150.0, recovered_fully=True, detection_at=50.5),
        mttr=180.0,
        env=ENV,
    )
    assert profile.duration(Stage.E) == pytest.approx(600.0)
    assert profile.duration(Stage.F) == pytest.approx(10.0)
    assert profile.throughput(Stage.F) == pytest.approx(300.0, rel=0.1)
    assert profile.duration(Stage.G) == pytest.approx(10.0)


def test_throughputs_clamped_at_tn():
    """Bucket noise above Tn must not create negative damage."""
    tl = make_timeline([(0, 50, TN), (50, 100, TN * 1.2), (100, 200, TN)])
    profile = extract_profile(
        record(tl, detection_at=60.0), mttr=180.0, env=ENV
    )
    for stage in Stage:
        assert profile.throughput(stage) <= TN + 1e-9


def test_instant_detection_has_no_stage_a():
    tl = make_timeline([(0, 50, TN), (50, 100, 700.0), (100, 200, TN)])
    profile = extract_profile(
        record(tl, detection_at=50.0), mttr=180.0, env=ENV
    )
    assert profile.duration(Stage.A) == 0.0
    assert profile.duration(Stage.B) > 0.0


def test_profile_carries_identity():
    tl = make_timeline([(0, 200, TN)])
    profile = extract_profile(record(tl), mttr=60.0, env=ENV)
    assert profile.fault == "f"
    assert profile.version == "V"
    assert profile.normal_throughput == TN
