"""Tests for sensitivity sweeps and the crossover solver."""

import pytest

from repro.core.faultload import ComponentFault, FaultLoad
from repro.core.metric import performability_of
from repro.core.model import ProfileSet, evaluate
from repro.core.sensitivity import crossover_multiplier, sweep_app_fault_rate
from repro.core.stages import SevenStageProfile, Stage
from repro.faults.spec import FaultKind


def make_profiles(version, tn, outage_per_crash):
    ps = ProfileSet(version, tn)
    ps.add(
        SevenStageProfile.from_pairs(
            "application-crash", version, tn,
            [(Stage.A, outage_per_crash, 0.0)],
        )
    )
    return ps


def load_at(mttf):
    return FaultLoad(
        components=(
            ComponentFault(
                FaultKind.APP_CRASH,
                mttf=mttf,
                mttr=60.0,
                profile_key="application-crash",
            ),
        )
    )


def test_sweep_shape():
    profiles = {
        "TCP": make_profiles("TCP", 1000.0, 100.0),
        "VIA": make_profiles("VIA", 1400.0, 10.0),
    }
    out = sweep_app_fault_rate(
        profiles, mttfs=[1e5, 1e6], make_load=load_at
    )
    assert set(out) == {"TCP", "VIA"}
    for rows in out.values():
        assert len(rows) == 2
        (m1, a1, p1), (m2, a2, p2) = rows
        assert a2 >= a1  # rarer faults -> higher availability
        assert p2 >= p1


def test_crossover_finds_equalizing_multiplier():
    """VIA is faster but each fault hurts it more: scaling its fault rate
    must eventually hand the win to TCP, and the solver finds where."""
    tcp = make_profiles("TCP", 1000.0, 50.0)
    via = make_profiles("VIA", 1400.0, 50.0)
    base = load_at(mttf=1e5)
    m = crossover_multiplier(
        tcp, via, base, lambda mult: base.scaled(mult), lo=1.0, hi=64.0
    )
    p_tcp = performability_of(evaluate(tcp, base))
    p_via = performability_of(
        evaluate(via, base.scaled(m))
    )
    assert p_via == pytest.approx(p_tcp, rel=0.02)
    assert m > 1.0


def test_crossover_raises_when_via_already_loses():
    tcp = make_profiles("TCP", 1000.0, 10.0)
    via = make_profiles("VIA", 1001.0, 500.0)  # barely faster, very fragile
    base = load_at(mttf=1e4)
    with pytest.raises(ValueError, match="already loses"):
        crossover_multiplier(tcp, via, base, lambda m: base.scaled(m))


def test_crossover_raises_when_no_crossover_in_range():
    tcp = make_profiles("TCP", 1000.0, 50.0)
    via = make_profiles("VIA", 5000.0, 0.001)  # nearly invulnerable
    base = load_at(mttf=1e6)
    with pytest.raises(ValueError, match="still wins"):
        crossover_multiplier(
            tcp, via, base, lambda m: base.scaled(m), hi=4.0
        )
