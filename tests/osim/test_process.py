"""Tests for processes, signals, and the restart daemon."""

import pytest

from repro.osim.process import ProcessState, RestartDaemon, SimProcess
from repro.sim.engine import Engine


def test_start_runs_hooks_and_bumps_incarnation():
    e = Engine()
    p = SimProcess(e, "p")
    starts = []
    p.on_start.append(lambda: starts.append(p.incarnation))
    p.start()
    assert p.running
    assert starts == [1]


def test_double_start_rejected():
    e = Engine()
    p = SimProcess(e, "p")
    p.start()
    with pytest.raises(RuntimeError):
        p.start()


def test_exit_records_reason_and_fires_hooks():
    e = Engine()
    p = SimProcess(e, "p")
    deaths = []
    p.on_death.append(deaths.append)
    p.start()
    p.exit("segfault")
    assert not p.alive
    assert p.death_reason == "segfault"
    assert deaths == ["segfault"]


def test_exit_idempotent():
    e = Engine()
    p = SimProcess(e, "p")
    deaths = []
    p.on_death.append(deaths.append)
    p.start()
    p.exit("a")
    p.exit("b")
    assert deaths == ["a"]
    assert p.death_reason == "a"


def test_sigstop_sigcont_cycle():
    e = Engine()
    p = SimProcess(e, "p")
    events = []
    p.on_stop.append(lambda: events.append("stop"))
    p.on_cont.append(lambda: events.append("cont"))
    p.start()
    p.sigstop()
    assert p.state is ProcessState.STOPPED
    assert p.alive and not p.running
    p.sigcont()
    assert p.running
    assert events == ["stop", "cont"]


def test_signals_on_dead_process_are_noops():
    e = Engine()
    p = SimProcess(e, "p")
    p.sigstop()
    p.sigcont()
    assert p.state is ProcessState.DEAD


def test_sigcont_without_stop_is_noop():
    e = Engine()
    p = SimProcess(e, "p")
    p.start()
    conts = []
    p.on_cont.append(lambda: conts.append(1))
    p.sigcont()
    assert conts == []


def test_daemon_restarts_after_delay():
    e = Engine()
    p = SimProcess(e, "p")
    daemon = RestartDaemon(e, p, restart_delay=5.0)
    p.start()
    e.call_after(10.0, p.sigkill)
    e.run()
    assert p.running
    assert p.incarnation == 2
    assert daemon.restarts == 1


def test_disabled_daemon_does_not_restart():
    e = Engine()
    p = SimProcess(e, "p")
    daemon = RestartDaemon(e, p, restart_delay=5.0)
    p.start()
    daemon.disable()
    e.call_after(1.0, p.sigkill)
    e.run()
    assert not p.alive


def test_enable_restarts_a_dead_process():
    e = Engine()
    p = SimProcess(e, "p")
    daemon = RestartDaemon(e, p, restart_delay=2.0)
    p.start()
    daemon.disable()
    p.sigkill()
    e.run()
    assert not p.alive
    daemon.enable()
    e.run()
    assert p.running


def test_daemon_skips_if_manually_restarted():
    e = Engine()
    p = SimProcess(e, "p")
    daemon = RestartDaemon(e, p, restart_delay=5.0)
    p.start()
    p.sigkill()
    p.start()  # manual restart before the daemon timer fires
    e.run()
    assert daemon.restarts == 0
    assert p.incarnation == 2
