"""Tests for the node: crash/reboot, freeze, disks, process wiring."""

import pytest

from repro.net.fabric import Fabric
from repro.osim.node import Node
from repro.sim.engine import Engine


def make_node(e, reboot_time=30.0, restart_delay=2.0):
    fabric = Fabric(e)
    node = Node(
        e, "n0", fabric.attach("n0"), reboot_time=reboot_time,
        restart_delay=restart_delay,
    )
    return node


def test_crash_kills_process_and_nic():
    e = Engine()
    node = make_node(e)
    node.process.start()
    node.crash()
    assert not node.up
    assert not node.nic.powered
    assert not node.process.alive
    assert not node.cpu.alive


def test_transient_crash_reboots_and_restarts_process():
    e = Engine()
    node = make_node(e, reboot_time=30.0, restart_delay=2.0)
    node.process.start()
    hooks = []
    node.on_reboot_complete.append(lambda: hooks.append(e.now))
    e.call_after(10.0, node.crash)
    e.run()
    assert node.up
    assert node.nic.powered
    assert node.process.running
    assert node.process.incarnation == 2
    assert hooks == [40.0]


def test_permanent_crash_stays_down():
    e = Engine()
    node = make_node(e)
    node.process.start()
    node.crash(transient=False)
    e.run()
    assert not node.up
    assert not node.process.alive


def test_reboot_resets_kernel_memory_faults():
    e = Engine()
    node = make_node(e, reboot_time=5.0)
    node.process.start()
    node.kernel_memory.inject_allocation_fault()
    node.pinnable.inject_pin_fault(0)
    node.crash()
    e.run()
    assert node.kernel_memory.probe(100)
    assert node.pinnable.pin(100)


def test_crash_while_down_is_noop():
    e = Engine()
    node = make_node(e)
    node.process.start()
    node.crash()
    node.crash()
    assert node.crashes == 1


def test_freeze_stops_process_and_cpu():
    e = Engine()
    node = make_node(e)
    node.process.start()
    done = []
    node.cpu.submit(1.0, lambda: done.append(e.now))
    node.freeze()
    assert node.frozen
    assert not node.process.running
    e.call_after(20.0, node.unfreeze)
    e.run()
    assert done and done[0] >= 20.0
    assert node.process.running


def test_freeze_keeps_nic_powered():
    """A hung node's kernel still ACKs — the NIC stays on."""
    e = Engine()
    node = make_node(e)
    node.process.start()
    node.freeze()
    assert node.nic.powered


def test_disk_read_parallelism_bounded():
    e = Engine()
    node = make_node(e)
    node.process.start()
    done = []
    for _ in range(4):
        node.disk_read(1024, lambda: done.append(e.now))
    e.run()
    assert len(done) == 4
    # 2 disk threads: reads complete in two waves.
    assert done[0] == done[1]
    assert done[2] > done[0]


def test_disk_read_dropped_when_process_dead():
    e = Engine()
    node = make_node(e)
    node.process.start()
    done = []
    node.disk_read(1024, lambda: done.append(1))
    node.process.exit("crash")
    e.run()
    assert done == []


def test_operational_flag():
    e = Engine()
    node = make_node(e)
    assert not node.operational  # process not started yet
    node.process.start()
    assert node.operational
    node.freeze()
    assert not node.operational
    node.unfreeze()
    node.crash()
    assert not node.operational
