"""Tests for kernel memory and pinnable-memory accounting."""

import pytest

from repro.osim.memory import KernelMemory, PinnableMemory


class TestKernelMemory:
    def test_alloc_and_free(self):
        km = KernelMemory(total_bytes=100)
        assert km.alloc(60)
        assert km.allocated == 60
        km.free(60)
        assert km.allocated == 0

    def test_alloc_fails_beyond_capacity(self):
        km = KernelMemory(total_bytes=100)
        assert not km.alloc(101)
        assert km.failed_allocations == 1

    def test_fault_fails_all_allocations(self):
        km = KernelMemory()
        km.inject_allocation_fault()
        assert not km.alloc(1)
        assert not km.probe(1)
        assert km.available == 0

    def test_clear_fault_restores(self):
        km = KernelMemory()
        km.inject_allocation_fault()
        km.clear_fault()
        assert km.alloc(1)
        assert km.probe(1)

    def test_probe_does_not_account(self):
        km = KernelMemory(total_bytes=100)
        assert km.probe(90)
        assert km.probe(90)
        assert km.allocated == 0

    def test_probe_respects_capacity(self):
        km = KernelMemory(total_bytes=100)
        km.alloc(80)
        assert not km.probe(30)

    def test_free_more_than_allocated_raises(self):
        km = KernelMemory()
        with pytest.raises(ValueError):
            km.free(1)

    def test_negative_alloc_rejected(self):
        km = KernelMemory()
        with pytest.raises(ValueError):
            km.alloc(-1)


class TestPinnableMemory:
    def test_limit_is_half_of_physical_by_default(self):
        pm = PinnableMemory(physical_bytes=1000)
        assert pm.limit == 500

    def test_pin_within_limit(self):
        pm = PinnableMemory(physical_bytes=1000)
        assert pm.pin(400)
        assert pm.pinned == 400
        assert pm.headroom == 100

    def test_pin_beyond_limit_fails(self):
        pm = PinnableMemory(physical_bytes=1000)
        assert not pm.pin(501)
        assert pm.failed_pins == 1

    def test_unpin(self):
        pm = PinnableMemory(physical_bytes=1000)
        pm.pin(400)
        pm.unpin(150)
        assert pm.pinned == 250

    def test_unpin_more_than_pinned_raises(self):
        pm = PinnableMemory()
        with pytest.raises(ValueError):
            pm.unpin(1)

    def test_pin_fault_lowers_effective_limit(self):
        pm = PinnableMemory(physical_bytes=1000)
        pm.pin(300)
        pm.inject_pin_fault(effective_limit=200)
        assert not pm.pin(1)  # already over the new ceiling
        assert pm.pinned == 300  # existing pins untouched
        assert pm.effective_limit == 200

    def test_pin_fault_harshest_setting(self):
        pm = PinnableMemory(physical_bytes=1000)
        pm.inject_pin_fault(0)
        assert not pm.pin(1)

    def test_clear_pin_fault(self):
        pm = PinnableMemory(physical_bytes=1000)
        pm.inject_pin_fault(0)
        pm.clear_fault()
        assert pm.pin(100)
        assert not pm.fault_active

    def test_effective_limit_never_exceeds_real_limit(self):
        pm = PinnableMemory(physical_bytes=1000)
        pm.inject_pin_fault(effective_limit=10_000)
        assert pm.effective_limit == pm.limit

    def test_limit_fraction_validation(self):
        with pytest.raises(ValueError):
            PinnableMemory(limit_fraction=0.0)
        with pytest.raises(ValueError):
            PinnableMemory(limit_fraction=1.5)
