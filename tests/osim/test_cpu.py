"""Tests for the serial work queue (the PRESS main thread)."""

import pytest

from repro.osim.cpu import WorkQueue
from repro.sim.engine import Engine


def test_items_execute_serially_with_costs():
    e = Engine()
    q = WorkQueue(e)
    done = []
    q.submit(1.0, lambda: done.append(e.now))
    q.submit(2.0, lambda: done.append(e.now))
    e.run()
    assert done == [1.0, 3.0]


def test_submit_front_preempts_queue_order():
    e = Engine()
    q = WorkQueue(e)
    order = []
    # Once running, the first item completes, then front item runs.
    q.submit(1.0, lambda: order.append("first"))
    q.submit(1.0, lambda: order.append("second"))
    q.submit_front(0.5, lambda: order.append("urgent"))
    e.run()
    # 'urgent' was queued at the head before execution started on it.
    assert order.index("urgent") < order.index("second")


def test_charge_consumes_time_before_next_item():
    e = Engine()
    q = WorkQueue(e)
    times = []

    def first():
        q.charge(5.0)

    q.submit(1.0, first)
    q.submit(1.0, lambda: times.append(e.now))
    e.run()
    assert times == [7.0]  # 1 + 5 charge + 1


def test_block_on_stalls_until_event():
    e = Engine()
    q = WorkQueue(e)
    times = []
    gate = e.event()

    def blocker():
        q.block_on(gate)

    q.submit(1.0, blocker)
    q.submit(1.0, lambda: times.append(e.now))
    e.call_after(10.0, gate.succeed)
    e.run()
    assert times == [11.0]


def test_double_block_raises():
    e = Engine()
    q = WorkQueue(e)
    q.block_on(e.event())
    with pytest.raises(RuntimeError):
        q.block_on(e.event())


def test_freeze_holds_work_until_unfreeze():
    e = Engine()
    q = WorkQueue(e)
    times = []
    q.submit(1.0, lambda: times.append(e.now))
    q.freeze()
    q.submit(1.0, lambda: times.append(e.now))
    e.call_after(50.0, q.unfreeze)
    e.run()
    assert all(t >= 50.0 for t in times)
    assert len(times) == 2


def test_freeze_mid_item_requeues_it():
    e = Engine()
    q = WorkQueue(e)
    done = []
    q.submit(10.0, lambda: done.append(e.now))
    e.call_after(5.0, q.freeze)
    e.call_after(20.0, q.unfreeze)
    e.run()
    assert done and done[0] >= 20.0


def test_kill_drops_all_work():
    e = Engine()
    q = WorkQueue(e)
    done = []
    q.submit(1.0, lambda: done.append(1))
    q.submit(1.0, lambda: done.append(2))
    q.kill()
    e.run()
    assert done == []
    assert not q.alive
    q.submit(1.0, lambda: done.append(3))  # ignored
    e.run()
    assert done == []


def test_resurrect_gives_clean_queue():
    e = Engine()
    q = WorkQueue(e)
    q.submit(1.0, lambda: None)
    q.kill()
    q.resurrect()
    done = []
    q.submit(1.0, lambda: done.append(e.now))
    e.run()
    assert len(done) == 1
    assert q.alive


def test_stale_unblock_after_kill_ignored():
    e = Engine()
    q = WorkQueue(e)
    gate = e.event()
    q.block_on(gate)
    q.kill()
    q.resurrect()
    gate.succeed()  # stale: belongs to the dead incarnation
    done = []
    q.submit(1.0, lambda: done.append(1))
    e.run()
    assert done == [1]


def test_items_submitted_from_within_items_run():
    e = Engine()
    q = WorkQueue(e)
    done = []

    def outer():
        q.submit(2.0, lambda: done.append(e.now))

    q.submit(1.0, outer)
    e.run()
    assert done == [3.0]


def test_utilization_accounting():
    e = Engine()
    q = WorkQueue(e)
    q.submit(3.0, lambda: None)
    e.run(until=10.0)
    assert q.utilization(10.0) == pytest.approx(0.3)
    assert q.items_executed == 1


def test_frozen_queue_accepts_submissions():
    e = Engine()
    q = WorkQueue(e)
    q.freeze()
    q.submit(1.0, lambda: None)
    assert q.depth == 1
