"""Unit contract of the wall-clock flight recorder.

The recorder's accounting rules — site identity, layer grouping, named
counters, the engine/LP digest — independent of any campaign.  The
observer-effect and byte-identity contracts live in
``test_profiler_determinism.py``.
"""

import pickle

from repro.obs.profiler import FlightRecorder, layer_of
from repro.sim.engine import Engine
from repro.sim.lp import ShardedEngine


class _Component:
    def __init__(self):
        self.fired = 0

    def tick(self):
        self.fired += 1


def test_bound_methods_share_a_site_across_instances():
    """Sites key on the code object, not the (recycled) bound method."""
    rec = FlightRecorder()
    a, b = _Component(), _Component()
    rec.record(a.tick, 0.5)
    rec.record(b.tick, 0.25)
    sites = rec.sites()
    assert len(sites) == 1
    assert sites[0]["events"] == 2
    assert sites[0]["self_s"] == 0.75
    assert sites[0]["site"].endswith("_Component.tick")


def test_plain_functions_and_closures_share_a_site():
    rec = FlightRecorder()

    def make():
        def cb():
            pass

        return cb

    rec.record(make(), 0.1)
    rec.record(make(), 0.2)  # distinct closure, same code object
    assert len(rec.sites()) == 1
    assert rec.sites()[0]["events"] == 2


def test_counters_accumulate():
    rec = FlightRecorder()
    rec.count("fabric.fast_cached")
    rec.count("fabric.fast_cached")
    rec.count("fabric.fast_train", 7)
    assert rec.counters == {"fabric.fast_cached": 2, "fabric.fast_train": 7}


def test_layer_of_maps_repro_modules_to_their_layer():
    assert layer_of("repro.net.fabric") == "net"
    assert layer_of("repro.sim.engine") == "sim"
    assert layer_of("tests.obs.test_profiler") == "tests"
    assert layer_of("builtins") == "builtins"


def test_layers_group_self_time_by_module():
    rec = FlightRecorder()
    rec.record(_Component().tick, 1.0)
    layers = rec.layers()
    assert list(layers) == ["tests"]
    assert layers["tests"]["events"] == 1
    assert layers["tests"]["self_s"] == 1.0


def test_engine_run_dispatches_to_the_profiled_loop():
    """Attaching a recorder makes every callback show up with self-time."""
    e = Engine()
    e.profiler = rec = FlightRecorder()
    fired = []

    def tick():
        fired.append(e.now)
        if len(fired) < 5:
            e.call_after(1.0, tick)

    e.call_after(1.0, tick)
    e.run()
    assert len(fired) == 5
    digest = rec.digest(e)
    assert digest["events"] == 5
    assert digest["self_s"] >= 0.0
    assert digest["engine"]["events_processed"] == e.events_processed
    # Every scheduled timer is either a fresh allocation or a freelist
    # reuse; the two columns partition the schedule count.
    eng = digest["engine"]
    assert eng["timer_allocs"] + eng["freelist_reuse"] == eng["scheduled"]


def test_sharded_engine_digest_carries_lp_stats():
    e = ShardedEngine(shards=3)
    e.profiler = rec = FlightRecorder()
    fired = []

    def tick(i):
        fired.append(i)
        if len(fired) < 30:
            # Rotate affinity so every LP sees events (and the schedule
            # crosses LP boundaries, exercising the null-message path).
            prev = e.pin(len(fired) % 3)
            e.call_after(0.5, tick, len(fired))
            e.pin(prev)

    e.call_after(0.5, tick, 0)
    e.run()
    digest = rec.digest(e)
    lp = digest["lp"]
    assert lp["shards"] == 3
    assert sum(lp["lp_events"]) == e.events_processed
    assert lp["imbalance"] >= 1.0
    assert lp["eot_advances"] > 0
    # Wall-clock columns only advance under the profiled loop.
    assert lp["merge_idle_s"] >= 0.0
    assert len(lp["lp_exec_s"]) == 3


def test_recorder_never_survives_pickling():
    """Warm checkpoints must not embed host wall-clock state."""
    e = Engine()
    e.profiler = FlightRecorder()
    e.call_after(1.0, lambda: None)
    state = e.__getstate__()
    assert state["profiler"] is None


def test_sharded_engine_zeroes_wall_clock_in_snapshots():
    e = ShardedEngine(shards=2)
    e.profiler = FlightRecorder()
    e.call_after(1.0, lambda: None)
    e.run()
    e._merge_s = 1.25
    e._exec_s = [0.5, 0.75]
    clone = pickle.loads(pickle.dumps(e))
    assert clone.profiler is None
    assert clone._merge_s == 0.0
    assert clone._exec_s == [0.0, 0.0]
    # Deterministic counters DO travel: they are pure functions of the
    # event stream, identical profiled or not.
    assert clone._lp_exec == e._lp_exec
    assert clone._eot_advances == e._eot_advances


def test_digest_is_json_ready():
    import json

    e = Engine()
    e.profiler = rec = FlightRecorder()
    e.call_after(1.0, lambda: None)
    e.run()
    rec.count("fabric.slow", 3)
    json.dumps(rec.digest(e))  # must not raise
