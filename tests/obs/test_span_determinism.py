"""Span collection is pure observation: results and exports are stable.

Two contracts, both load-bearing for the campaign cache:

* **Zero observer effect** — a run with a SpanCollector attached
  produces bit-identical profiles (and golden fixtures) to a plain run:
  span sites only read engine state, they never schedule or mutate.
* **Deterministic export** — running the same span-enabled campaign
  twice writes byte-identical span files: ids rewind per run, sim times
  are exact, and records are serialized with sorted keys.
"""

import json
from pathlib import Path

import pytest

from repro.core.extract import extract_profile
from repro.core.stages import SevenStageProfile
from repro.experiments.phase1 import run_single_fault
from repro.experiments.runner import run_campaign
from repro.experiments.settings import FAULT_MTTR, Phase1Settings
from repro.faults.spec import FaultKind
from repro.obs.spans import SpanCollector
from repro.press.cluster import SMOKE_SCALE
from repro.press.config import ALL_VERSIONS_EXTENDED

GOLDEN_DIR = Path(__file__).parent.parent / "core" / "golden"

#: Must match tests/core/test_golden_profiles.py exactly.
GOLDEN_SETTINGS = Phase1Settings(
    scale=SMOKE_SCALE,
    seed=1234,
    warm=15.0,
    fault_at=30.0,
    fault_duration=40.0,
    post_recovery=60.0,
    tail=40.0,
    replications=1,
)

GOLDEN_CASES = (
    ("TCP-PRESS", FaultKind.LINK_DOWN),
    ("VIA-PRESS-5", FaultKind.NODE_CRASH),
)


def _measure(version: str, kind: FaultKind, spans=None) -> SevenStageProfile:
    record, cluster = run_single_fault(
        ALL_VERSIONS_EXTENDED[version], kind, GOLDEN_SETTINGS, spans=spans
    )
    if spans is not None:
        spans.finish(cluster.engine.now)
    return extract_profile(
        record, mttr=FAULT_MTTR[kind], env=GOLDEN_SETTINGS.environment
    )


@pytest.mark.parametrize("version,kind", GOLDEN_CASES)
def test_span_enabled_run_matches_golden_fixture(version, kind):
    """Collecting every request's spans still reproduces the goldens."""
    path = GOLDEN_DIR / f"{version}_{kind.value}.json"
    golden = SevenStageProfile.from_dict(json.loads(path.read_text()))
    spans = SpanCollector()
    measured = _measure(version, kind, spans=spans)
    assert spans.n_traces > 0, "collector saw no requests — spans are dead"
    assert measured.normal_throughput == pytest.approx(
        golden.normal_throughput, rel=1e-6
    )
    from repro.core.stages import STAGES

    for stage in STAGES:
        assert measured.duration(stage) == pytest.approx(
            golden.duration(stage), rel=1e-6, abs=1e-9
        ), f"{version}/{kind.value} stage {stage.value} duration"
        assert measured.throughput(stage) == pytest.approx(
            golden.throughput(stage), rel=1e-6, abs=1e-9
        ), f"{version}/{kind.value} stage {stage.value} throughput"


@pytest.mark.parametrize("version,kind", GOLDEN_CASES)
def test_span_enabled_and_plain_runs_are_bit_identical(version, kind):
    plain = _measure(version, kind)
    spanned = _measure(version, kind, spans=SpanCollector())
    assert spanned.to_dict() == plain.to_dict()


def _spanned_campaign(spans_dir) -> dict:
    sets, _ = run_campaign(
        GOLDEN_SETTINGS,
        versions=["TCP-PRESS"],
        faults=[FaultKind.LINK_DOWN],
        spans_dir=str(spans_dir),
        trace_format="both",
    )
    return sets


def test_span_campaign_results_match_plain_campaign(tmp_path):
    """--spans forces cells cold, yet every number stays bit-identical."""
    plain, _ = run_campaign(
        GOLDEN_SETTINGS, versions=["TCP-PRESS"], faults=[FaultKind.LINK_DOWN]
    )
    spanned = _spanned_campaign(tmp_path / "spans")
    assert spanned["TCP-PRESS"].to_dict() == plain["TCP-PRESS"].to_dict()
    assert list((tmp_path / "spans").glob("*.spans.jsonl")), (
        "span campaign emitted no files"
    )


def test_span_export_is_byte_identical_across_runs(tmp_path):
    """The spans-smoke CI check: two identical campaigns, same bytes.

    Global id counters rewind at each run's start, so request/span ids —
    and therefore the exported records — are a pure function of
    (version, fault, settings, seed), not of process history.
    """
    _spanned_campaign(tmp_path / "a")
    _spanned_campaign(tmp_path / "b")
    names_a = sorted(p.name for p in (tmp_path / "a").iterdir())
    names_b = sorted(p.name for p in (tmp_path / "b").iterdir())
    assert names_a == names_b and names_a, "runs exported different files"
    for name in names_a:
        assert (tmp_path / "a" / name).read_bytes() == (
            tmp_path / "b" / name
        ).read_bytes(), f"{name} differs between identical runs"


def test_spans_identical_with_and_without_fastpath():
    """The coalesced network fast path changes scheduling, not spans."""
    import dataclasses

    version, kind = GOLDEN_CASES[0]
    records = []
    for fastpath in (True, False):
        settings = dataclasses.replace(GOLDEN_SETTINGS, fastpath=fastpath)
        spans = SpanCollector()
        _rec, cluster = run_single_fault(
            ALL_VERSIONS_EXTENDED[version], kind, settings, spans=spans
        )
        spans.finish(cluster.engine.now)
        records.append([s.to_record() for s in spans.spans])
    assert records[0] == records[1]
