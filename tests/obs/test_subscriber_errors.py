"""Subscriber errors must surface, not vanish.

A subscriber that raises is isolated by the bus (the run continues), but
the failure cannot be silent: the count flows bus → per-cell telemetry →
campaign notice → rendered report, and this file pins each hop.
"""

import pytest

from repro.analysis.report import trace_summary_report
from repro.core.stages import SevenStageProfile
from repro.experiments import runner as runner_mod
from repro.experiments.phase1 import run_baseline
from repro.experiments.settings import Phase1Settings
from repro.experiments.store import MemoryStore
from repro.faults.spec import FaultKind
from repro.obs.exporters import telemetry_summary
from repro.press.cluster import SMOKE_SCALE
from repro.press.config import ALL_VERSIONS_EXTENDED

SHORT = Phase1Settings(
    scale=SMOKE_SCALE, seed=7, warm=5.0, fault_at=10.0, replications=1
)


class _ExplodingObserver:
    """An observer whose callback raises on every cache hit."""

    def attach(self, bus):
        bus.subscribe(self._boom, names=["press.cache.hit"])
        return self

    def _boom(self, event):
        raise RuntimeError("observer bug")


def test_raising_observer_is_isolated_and_counted_in_telemetry():
    tn, cluster = run_baseline(
        ALL_VERSIONS_EXTENDED["TCP-PRESS"], SHORT,
        recorder=_ExplodingObserver(),
    )
    assert tn > 0  # the run itself is unharmed
    assert cluster.bus.subscriber_errors > 0
    summary = telemetry_summary(None, cluster.metrics, bus=cluster.bus)
    assert summary["subscriber_errors"] == cluster.bus.subscriber_errors


def test_telemetry_summary_without_a_bus_omits_the_counter():
    assert "subscriber_errors" not in telemetry_summary(None)


def _fake_cells(subscriber_errors):
    """Worker doubles returning merge-valid payloads with error counts."""
    telemetry = {
        "event_total": 1,
        "events": {"press.cache.hit": 1},
        "metrics": {},
        "subscriber_errors": subscriber_errors,
    }
    profile = SevenStageProfile(
        fault=FaultKind.LINK_DOWN.value,
        version="TCP-PRESS",
        normal_throughput=100.0,
    )

    def baseline(version, settings, seed, trace=None, spans=None, warm=None,
                 profile_wall=False):
        return {
            "kind": "baseline", "tn": 100.0, "elapsed": 0.0,
            "telemetry": dict(telemetry),
        }

    def fault(version, fault_value, settings, seed, trace=None, spans=None,
              warm=None, profile_wall=False):
        return {
            "kind": "profile", "profile": profile.to_dict(), "elapsed": 0.0,
            "telemetry": dict(telemetry),
        }

    return baseline, fault


def _campaign_with_errors(monkeypatch, subscriber_errors):
    baseline, fault = _fake_cells(subscriber_errors)
    monkeypatch.setattr(runner_mod, "_baseline_cell", baseline)
    monkeypatch.setattr(runner_mod, "_fault_cell", fault)
    _sets, report = runner_mod.run_campaign(
        SHORT, versions=["TCP-PRESS"], faults=[FaultKind.LINK_DOWN],
        store=MemoryStore(),
    )
    return report


def test_campaign_surfaces_subscriber_errors_as_a_notice(monkeypatch):
    report = _campaign_with_errors(monkeypatch, subscriber_errors=2)
    (notice,) = [n for n in report.notices if "subscriber error" in n]
    assert notice.startswith("4 bus subscriber error(s) across 2 cell(s)")
    assert "partial event stream" in notice
    # ...and the rendered telemetry report carries it as a note line.
    text = trace_summary_report(report)
    assert "note: 4 bus subscriber error(s)" in text


def test_clean_campaign_has_no_subscriber_error_notice(monkeypatch):
    report = _campaign_with_errors(monkeypatch, subscriber_errors=0)
    assert not [n for n in report.notices if "subscriber error" in n]
