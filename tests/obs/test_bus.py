"""EventBus semantics: ordering, the zero-subscriber fast path, and
subscriber exception isolation."""

import pytest

from repro.obs.bus import EventBus, EventRecorder, SimEvent
from repro.sim.engine import Engine


def _bus():
    engine = Engine()
    return engine, EventBus(engine)


# ----------------------------------------------------------------------
# Ordering
# ----------------------------------------------------------------------
def test_delivery_order_matches_engine_timer_order():
    """Publishes fired from timers arrive in the engine's deterministic
    timer order (time, then schedule sequence), stamped with sim time."""
    engine, bus = _bus()
    rec = EventRecorder().attach(bus)

    # Scheduled out of order on purpose; same-time timers keep FIFO.
    engine.call_at(3.0, lambda: bus.publish("c"))
    engine.call_at(1.0, lambda: bus.publish("a1"))
    engine.call_at(1.0, lambda: bus.publish("a2"))
    engine.call_at(2.0, lambda: bus.publish("b"))
    engine.run(until=10.0)

    assert [e.name for e in rec.events] == ["a1", "a2", "b", "c"]
    assert [e.time for e in rec.events] == [1.0, 1.0, 2.0, 3.0]
    seqs = [e.seq for e in rec.events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_events_are_stamped_with_current_sim_time():
    engine, bus = _bus()
    rec = EventRecorder().attach(bus)
    engine.call_at(4.25, lambda: bus.publish("tick", node="n0", detail="x"))
    engine.run(until=5.0)
    (event,) = rec.events
    assert event.time == 4.25
    assert event.node == "n0"
    assert event.fields == {"detail": "x"}


# ----------------------------------------------------------------------
# Zero-subscriber fast path
# ----------------------------------------------------------------------
def test_publish_without_subscribers_builds_no_event():
    _engine, bus = _bus()
    assert bus.publish("net.frame.drop", node="n0", reason="x") is None
    assert bus.published == 0
    assert not bus.active


def test_publish_with_unrelated_name_subscriber_stays_fast():
    """A per-name subscriber keeps every *other* name on the fast path."""
    _engine, bus = _bus()
    seen = []
    bus.subscribe(seen.append, names=["sim.annotation"])
    assert bus.publish("press.cache.hit", file="f1") is None
    assert bus.published == 0
    event = bus.publish("sim.annotation", label="mark")
    assert isinstance(event, SimEvent)
    assert bus.published == 1
    assert [e.name for e in seen] == ["sim.annotation"]


def test_catch_all_subscriber_receives_everything():
    _engine, bus = _bus()
    rec = EventRecorder().attach(bus)
    bus.publish("a")
    bus.publish("b", node="n1")
    assert rec.counts == {"a": 1, "b": 1}
    assert rec.total == 2
    assert bus.active


def test_unsubscribe_restores_fast_path():
    _engine, bus = _bus()
    seen = []
    fn = bus.subscribe(seen.append, names=["only.this"])
    bus.unsubscribe(fn)
    assert not bus.active
    assert bus.publish("only.this") is None
    assert seen == []


# ----------------------------------------------------------------------
# Exception isolation
# ----------------------------------------------------------------------
def test_subscriber_exception_is_isolated_and_counted():
    _engine, bus = _bus()
    good = []

    def bad(_event):
        raise RuntimeError("subscriber bug")

    bus.subscribe(bad)
    bus.subscribe(good.append)
    event = bus.publish("x")
    assert event is not None
    assert good == [event]
    assert bus.subscriber_errors == 1

    bus.publish("y")
    assert bus.subscriber_errors == 2
    assert len(good) == 2


def test_named_subscriber_exception_is_isolated_too():
    _engine, bus = _bus()
    seen = []

    def bad(_event):
        raise ValueError("boom")

    bus.subscribe(bad, names=["n"])
    bus.subscribe(seen.append, names=["n"])
    bus.publish("n")
    assert bus.subscriber_errors == 1
    assert len(seen) == 1


# ----------------------------------------------------------------------
# SimEvent round-trip
# ----------------------------------------------------------------------
def test_simevent_dict_round_trip():
    e = SimEvent(time=1.5, seq=7, name="press.cache.hit", node="n2",
                 fields={"file": "f9"})
    assert SimEvent.from_dict(e.to_dict()) == e


def test_simevent_dict_omits_empty_node_and_fields():
    e = SimEvent(time=0.0, seq=1, name="a")
    d = e.to_dict()
    assert "node" not in d and "fields" not in d
    assert SimEvent.from_dict(d) == e


def test_recorder_without_event_storage_counts_only():
    _engine, bus = _bus()
    rec = EventRecorder(keep_events=False).attach(bus)
    bus.publish("a")
    bus.publish("a")
    assert rec.counts == {"a": 2}
    assert rec.events == []
    assert rec.total == 2
