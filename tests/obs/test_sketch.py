"""P² quantile sketch vs exact percentiles (repro.obs.sketch).

The sketch feeds p50/p95/p99/p999 request-latency figures into cell
payloads and the campaign report, so the properties that matter are:

* determinism — the same sample sequence produces bit-identical
  estimates (campaign parity depends on it);
* exactness in the regimes where exactness is structural — five or
  fewer samples, constant streams, min/max/mean/count;
* a bounded *rank* error against exact percentiles on synthetic
  distributions — the P² accuracy envelope, checked the robust way
  (where the estimate falls in the sorted sample, not how close its
  value is — value error is unbounded on heavy tails by design).
"""

from __future__ import annotations

import bisect
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sketch import DEFAULT_QUANTILES, P2Quantile, QuantileSketch

# ----------------------------------------------------------------------
# Structural exactness
# ----------------------------------------------------------------------


def test_empty_sketch_reports_nulls():
    sk = QuantileSketch()
    d = sk.to_dict()
    assert d["count"] == 0
    assert d["mean"] is None and d["min"] is None and d["max"] is None
    assert d["p50"] is None and d["p999"] is None


def test_label_style_matches_report_keys():
    sk = QuantileSketch()
    sk.observe(1.0)
    assert set(sk.to_dict()) == {
        "count", "mean", "min", "max", "p50", "p95", "p99", "p999",
    }


def test_untracked_quantile_raises():
    with pytest.raises(KeyError):
        QuantileSketch().quantile(0.42)


@pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
def test_quantile_outside_open_interval_rejected(bad):
    with pytest.raises(ValueError):
        P2Quantile(bad)


@given(st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=5))
def test_five_or_fewer_samples_are_exact_order_statistics(data):
    sk = QuantileSketch()
    for x in data:
        sk.observe(x)
    s = sorted(data)
    for p in DEFAULT_QUANTILES:
        idx = max(0, min(len(s) - 1, round(p * (len(s) - 1))))
        assert sk.quantile(p) == s[idx]
    assert sk.min == s[0] and sk.max == s[-1] and sk.count == len(data)


@given(
    st.floats(-1e6, 1e6, allow_nan=False),
    st.integers(min_value=1, max_value=200),
)
def test_constant_stream_estimates_the_constant(value, n):
    sk = QuantileSketch()
    for _ in range(n):
        sk.observe(value)
    for p in DEFAULT_QUANTILES:
        assert sk.quantile(p) == value


@given(st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=400))
def test_estimates_stay_inside_the_sample_range(data):
    sk = QuantileSketch()
    for x in data:
        sk.observe(x)
    for p in DEFAULT_QUANTILES:
        assert min(data) <= sk.quantile(p) <= max(data)
    assert sk.count == len(data)
    assert sk.mean == pytest.approx(sum(data) / len(data), rel=1e-9, abs=1e-6)


@given(st.lists(st.floats(-1e9, 1e9), min_size=6, max_size=120))
def test_same_sequence_same_estimates(data):
    a, b = QuantileSketch(), QuantileSketch()
    for x in data:
        a.observe(x)
        b.observe(x)
    assert a.to_dict() == b.to_dict()


# ----------------------------------------------------------------------
# Accuracy envelope vs exact percentiles on synthetic distributions
# ----------------------------------------------------------------------

_DISTRIBUTIONS = {
    "uniform": lambda rng: rng.random(),
    "exponential": lambda rng: rng.expovariate(1.0),
    "gauss": lambda rng: rng.gauss(10.0, 3.0),
    # Pareto(alpha=2): a heavy tail, the sketch's worst published regime.
    "pareto": lambda rng: rng.random() ** -0.5,
}


def _rank_error(data, value, p):
    """How many ranks the estimate misses the exact percentile by."""
    s = sorted(data)
    lo = bisect.bisect_left(s, value)
    hi = bisect.bisect_right(s, value)
    target = p * len(s)
    return max(0.0, lo - target, target - hi)


@settings(max_examples=30, deadline=None)
@given(
    st.sampled_from(sorted(_DISTRIBUTIONS)),
    st.integers(min_value=0, max_value=2**31),
    st.integers(min_value=1000, max_value=4000),
)
def test_rank_error_bounded_on_synthetic_distributions(dist, seed, n):
    rng = random.Random(seed)
    draw = _DISTRIBUTIONS[dist]
    data = [draw(rng) for _ in range(n)]
    sk = QuantileSketch()
    for x in data:
        sk.observe(x)
    # Empirically the worst rank error over these distributions is
    # ~0.7% of n; 2% (with an absolute floor for small n) never trips
    # on correct code but catches marker-update mistakes immediately.
    slack = max(25.0, 0.02 * n)
    for p in DEFAULT_QUANTILES:
        err = _rank_error(data, sk.quantile(p), p)
        assert err <= slack, (
            f"{dist} n={n} p={p}: estimate {sk.quantile(p)} misses the "
            f"exact percentile by {err:.0f} ranks (> {slack:.0f})"
        )


def test_tail_ordering_on_a_smooth_distribution():
    """On a well-behaved stream the tracked tail is monotone."""
    rng = random.Random(1234)
    sk = QuantileSketch()
    for _ in range(5000):
        sk.observe(rng.expovariate(0.5))
    assert (
        sk.min
        <= sk.quantile(0.5)
        <= sk.quantile(0.95)
        <= sk.quantile(0.99)
        <= sk.quantile(0.999)
        <= sk.max
    )
