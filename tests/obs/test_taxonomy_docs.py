"""OBSERVABILITY.md's taxonomy table must mirror events.TAXONOMY."""

import re
from pathlib import Path

from repro.obs.events import TAXONOMY, layer_of

DOC = Path(__file__).parent.parent.parent / "OBSERVABILITY.md"


def _documented_events():
    # Only the "## Event taxonomy" section mirrors events.TAXONOMY; the
    # doc's other tables (span names, attribution mechanisms) use the
    # same layout but list different vocabularies.
    text = DOC.read_text().split("## Event taxonomy", 1)[1].split("\n## ", 1)[0]
    rows = re.findall(r"^\| `([a-z_.]+)` \| (.+) \|$", text, re.M)
    return {name: desc for name, desc in rows}


def test_every_published_event_is_documented():
    documented = _documented_events()
    assert set(documented) == set(TAXONOMY)
    for name, desc in TAXONOMY.items():
        assert documented[name] == desc, name


def test_taxonomy_names_follow_layer_component_detail():
    # ``sim.annotation`` is the one two-part name: the annotation *is*
    # the component.
    for name in TAXONOMY:
        parts = name.split(".")
        assert len(parts) in (2, 3), name
        assert layer_of(name) == parts[0]
