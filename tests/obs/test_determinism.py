"""The observer effect is zero: tracing must not change any result.

Publishing events and recording metrics never schedules engine timers or
touches RNG streams, so a traced run must produce bit-identical profiles
to an untraced one — including against the pinned golden fixtures.
"""

import json
from pathlib import Path

import pytest

from repro.core.extract import extract_profile
from repro.core.stages import STAGES, SevenStageProfile
from repro.experiments.phase1 import run_single_fault
from repro.experiments.runner import run_campaign
from repro.experiments.settings import FAULT_MTTR, Phase1Settings
from repro.faults.spec import FaultKind
from repro.obs.bus import EventRecorder
from repro.press.cluster import SMOKE_SCALE
from repro.press.config import ALL_VERSIONS_EXTENDED

GOLDEN_DIR = Path(__file__).parent.parent / "core" / "golden"

#: Must match tests/core/test_golden_profiles.py exactly.
GOLDEN_SETTINGS = Phase1Settings(
    scale=SMOKE_SCALE,
    seed=1234,
    warm=15.0,
    fault_at=30.0,
    fault_duration=40.0,
    post_recovery=60.0,
    tail=40.0,
    replications=1,
)

GOLDEN_CASES = (
    ("TCP-PRESS", FaultKind.LINK_DOWN),
    ("VIA-PRESS-5", FaultKind.NODE_CRASH),
)


def _measure(version: str, kind: FaultKind, recorder=None) -> SevenStageProfile:
    record, _cluster = run_single_fault(
        ALL_VERSIONS_EXTENDED[version], kind, GOLDEN_SETTINGS,
        recorder=recorder,
    )
    return extract_profile(
        record, mttr=FAULT_MTTR[kind], env=GOLDEN_SETTINGS.environment
    )


@pytest.mark.parametrize("version,kind", GOLDEN_CASES)
def test_traced_run_matches_golden_fixture(version, kind):
    """A run with a recorder attached still reproduces the goldens."""
    path = GOLDEN_DIR / f"{version}_{kind.value}.json"
    golden = SevenStageProfile.from_dict(json.loads(path.read_text()))
    recorder = EventRecorder(keep_events=True)
    measured = _measure(version, kind, recorder=recorder)
    assert recorder.total > 0, "recorder saw no events — tracing is dead"
    assert measured.version == golden.version
    assert measured.fault == golden.fault
    assert measured.normal_throughput == pytest.approx(
        golden.normal_throughput, rel=1e-6
    )
    for stage in STAGES:
        assert measured.duration(stage) == pytest.approx(
            golden.duration(stage), rel=1e-6, abs=1e-9
        ), f"{version}/{kind.value} stage {stage.value} duration"
        assert measured.throughput(stage) == pytest.approx(
            golden.throughput(stage), rel=1e-6, abs=1e-9
        ), f"{version}/{kind.value} stage {stage.value} throughput"


@pytest.mark.parametrize("version,kind", GOLDEN_CASES)
def test_traced_and_untraced_runs_are_bit_identical(version, kind):
    untraced = _measure(version, kind)
    traced = _measure(version, kind, recorder=EventRecorder())
    assert traced.to_dict() == untraced.to_dict()


def test_traced_campaign_profiles_match_untraced(tmp_path):
    """run_campaign with --trace-dir yields bit-identical ProfileSets."""
    settings = GOLDEN_SETTINGS
    plain, _ = run_campaign(
        settings, versions=["TCP-PRESS"], faults=[FaultKind.LINK_DOWN]
    )
    traced, _ = run_campaign(
        settings, versions=["TCP-PRESS"], faults=[FaultKind.LINK_DOWN],
        trace_dir=str(tmp_path), trace_format="jsonl",
    )
    assert traced["TCP-PRESS"].to_dict() == plain["TCP-PRESS"].to_dict()
    assert list(tmp_path.glob("*.jsonl")), "tracing emitted no files"
