"""MetricsRegistry: get-or-create identity, rendering, summaries, and the
bound_counter bridge components use."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bound_counter,
)
from repro.sim.engine import Engine


def test_counter_get_or_create_is_identity_per_name_and_labels():
    reg = MetricsRegistry()
    a = reg.counter("press.cache.hits", node="n0")
    b = reg.counter("press.cache.hits", node="n0")
    c = reg.counter("press.cache.hits", node="n1")
    assert a is b
    assert a is not c
    a.inc(3)
    assert reg.counter("press.cache.hits", node="n0").value == 3


def test_label_order_does_not_matter():
    reg = MetricsRegistry()
    a = reg.counter("m", node="n0", peer="n1")
    b = reg.counter("m", peer="n1", node="n0")
    assert a is b


def test_summary_renders_labels_and_omits_zeros():
    reg = MetricsRegistry()
    reg.counter("net.nic.frames_sent", node="n0").inc(5)
    reg.counter("net.nic.frames_sent", node="n1")  # stays zero
    reg.gauge("press.membership.members").set(4)
    reg.histogram("workload.client.latency", client="c0").observe(0.02)
    s = reg.summary()
    assert s["counters"] == {"net.nic.frames_sent{node=n0}": 5}
    assert s["gauges"] == {"press.membership.members": 4}
    assert list(s["histograms"]) == ["workload.client.latency{client=c0}"]
    full = reg.summary(include_zero=True)
    assert "net.nic.frames_sent{node=n1}" in full["counters"]


def test_gauge_moves_both_ways():
    g = Gauge("depth")
    g.inc()
    g.inc(2)
    g.dec()
    assert g.value == 2
    g.set(9.5)
    assert g.value == 9.5


def test_histogram_buckets_and_stats():
    h = Histogram("lat", bounds=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        h.observe(v)
    assert h.count == 4
    assert h.buckets == [1, 1, 1, 1]  # one overflow
    assert h.sum == pytest.approx(5.555)
    assert h.mean == pytest.approx(5.555 / 4)
    assert h.min == 0.005 and h.max == 5.0
    d = h.to_dict()
    assert d["count"] == 4 and d["buckets"] == [1, 1, 1, 1]


def test_bound_counter_uses_engine_registry_when_attached():
    engine = Engine()
    engine.metrics = MetricsRegistry()
    c = bound_counter(engine, "osim.node.crashes", node="n0")
    c.inc()
    assert engine.metrics.counter("osim.node.crashes", node="n0").value == 1


def test_bound_counter_stands_alone_without_registry():
    engine = Engine()  # engine.metrics is None by default
    c = bound_counter(engine, "osim.node.crashes", node="n0")
    c.inc(2)
    assert isinstance(c, Counter)
    assert c.value == 2


def test_bound_counter_tolerates_no_engine():
    c = bound_counter(None, "standalone.count")
    c.inc()
    assert c.value == 1


def test_counter_supports_index_protocol():
    c = Counter("n")
    c.inc(7)
    assert int(c) == 7
    assert list(range(10))[c] == 7
