"""Request-scoped causal tracing (repro.obs.spans).

Three layers under test: the collector mechanics (parenting, keyed
close, sampling, drop-on-finish), the invariant checker the
``trace-validate`` CLI runs over exported span files, and the
critical-path extractor.  The end-to-end tests attach a collector to a
real cluster run and assert the resulting span set is invariant-clean
for both transports, with and without a fault.
"""

from __future__ import annotations

import pytest

from repro.experiments.phase1 import run_baseline, run_single_fault
from repro.experiments.settings import Phase1Settings
from repro.faults.spec import FaultKind
from repro.obs.spans import (
    STATUS_DROPPED,
    SpanCollector,
    check_span_invariants,
    critical_path,
)
from repro.press.cluster import SMOKE_SCALE
from repro.press.config import ALL_VERSIONS_EXTENDED

# ----------------------------------------------------------------------
# Collector mechanics
# ----------------------------------------------------------------------


def test_root_then_nested_children():
    c = SpanCollector()
    root = c.start(1, "request", 0.0, node="client0")
    child = c.start(1, "serve", 1.0, node="n0")
    grand = c.start(1, "disk", 2.0, node="n0")
    assert root.parent is None and child.parent == root.sid
    assert grand.parent == child.sid
    c.end(grand, 3.0)
    sibling = c.start(1, "net", 4.0)
    assert sibling.parent == child.sid  # innermost *open* span
    c.end(sibling, 5.0)
    c.end(child, 6.0)
    c.end(root, 7.0, "ok")
    assert [s.status for s in c.spans] == ["ok"] * 4
    assert check_span_invariants(s.to_record() for s in c.spans) == []


def test_keyed_close_from_another_component():
    c = SpanCollector()
    c.start(7, "request", 0.0, key=("req", 7))
    c.start(7, "msg", 1.0, key=("msg", 42))
    c.end_key(("msg", 42), 2.0)
    c.end_key(("req", 7), 3.0, "ok")
    assert c.find(("msg", 42)) is None  # key released on close
    assert check_span_invariants(s.to_record() for s in c.spans) == []


def test_end_is_idempotent_and_none_safe():
    c = SpanCollector()
    span = c.start(1, "request", 0.0)
    c.end(span, 1.0, "ok")
    c.end(span, 9.0, "timeout")  # second close ignored
    assert span.end == 1.0 and span.status == "ok"
    c.end(None, 5.0)  # unsampled sites pass None freely
    c.end_key(("msg", 999), 5.0)  # unknown key is a no-op


def test_late_children_after_root_closed():
    """A broadcast update lands after its tipping request finished."""
    c = SpanCollector()
    root = c.start(3, "request", 0.0, key=("req", 3))
    c.end_key(("req", 3), 2.0, "ok")
    late = c.start(3, "cache-update", 5.0)
    assert late.parent == root.sid and late.late
    c.end(late, 6.0)
    assert check_span_invariants(s.to_record() for s in c.spans) == []


def test_sampling_keeps_every_nth_trace():
    c = SpanCollector(sample_every=10)
    kept = [t for t in range(1, 101) if c.wants(t)]
    assert kept == list(range(10, 101, 10))
    assert c.start(11, "request", 0.0) is None
    assert c.start(20, "request", 0.0) is not None


def test_sample_every_must_be_positive():
    with pytest.raises(ValueError):
        SpanCollector(sample_every=0)


def test_finish_drops_open_spans():
    c = SpanCollector()
    c.start(1, "request", 0.0, key=("req", 1))
    c.start(1, "msg", 1.0, key=("msg", 5))
    c.finish(10.0)
    assert all(s.status == STATUS_DROPPED for s in c.spans)
    assert all(s.end == 10.0 for s in c.spans)
    assert c.find(("msg", 5)) is None
    assert check_span_invariants(s.to_record() for s in c.spans) == []


def test_summary_counts_by_status():
    c = SpanCollector()
    a = c.start(1, "request", 0.0)
    c.end(a, 1.0, "ok")
    b = c.start(2, "request", 0.0)
    c.end(b, 1.0, "timeout")
    c.start(3, "request", 0.0)
    c.finish(2.0)
    s = c.summary()
    assert s["spans"] == 3 and s["traces"] == 3
    assert s["by_status"] == {"dropped": 1, "ok": 1, "timeout": 1}


# ----------------------------------------------------------------------
# The invariant checker
# ----------------------------------------------------------------------


def _rec(sid, trace, parent, name, start, end, status="ok", **extra):
    r = {
        "sid": sid,
        "trace": trace,
        "parent": parent,
        "name": name,
        "node": None,
        "start": start,
        "end": end,
        "status": status,
    }
    r.update(extra)
    return r


def test_checker_accepts_clean_records():
    records = [
        _rec(1, 1, None, "request", 0.0, 5.0),
        _rec(2, 1, 1, "serve", 1.0, 4.0),
    ]
    assert check_span_invariants(records) == []


def test_checker_flags_never_closed():
    bad = check_span_invariants([_rec(1, 1, None, "request", 0.0, None, "open")])
    assert any("never closed" in p for p in bad)


def test_checker_flags_child_outside_parent():
    records = [
        _rec(1, 1, None, "request", 0.0, 5.0),
        _rec(2, 1, 1, "serve", 6.0, 7.0),  # starts after parent ended
    ]
    assert any("after parent" in p for p in check_span_invariants(records))
    records[1]["late"] = True  # explicitly marked late -> allowed
    assert check_span_invariants(records) == []


def test_checker_flags_orphans_and_duplicate_roots():
    bad = check_span_invariants(
        [
            _rec(1, 1, None, "request", 0.0, 5.0),
            _rec(2, 1, None, "request", 1.0, 2.0),  # second root
            _rec(3, 2, 99, "serve", 0.0, 1.0),  # missing parent
            _rec(4, 3, 1, "serve", 0.0, 1.0),  # parent in other trace
        ]
    )
    assert any("second root" in p for p in bad)
    assert any("does not exist" in p for p in bad)
    assert any("belongs to trace" in p for p in bad)
    assert any("no root" in p for p in bad)


# ----------------------------------------------------------------------
# The critical-path extractor
# ----------------------------------------------------------------------


def test_critical_path_decomposes_self_time():
    c = SpanCollector()
    root = c.start(1, "request", 0.0)
    serve = c.start(1, "serve", 2.0)
    disk = c.start(1, "disk", 3.0)
    c.end(disk, 7.0)
    c.end(serve, 8.0)
    c.end(root, 10.0, "ok")
    cp = critical_path(c.spans)
    assert cp["traces"] == 1
    assert cp["total_latency"] == 10.0
    hops = cp["hops"]
    # Root owns what no child covers: [0,2) + [8,10) = 4.
    assert hops["request"]["self_time"] == 4.0
    assert hops["serve"]["self_time"] == 2.0  # [2,3) + [7,8)
    assert hops["disk"]["self_time"] == 4.0
    total_self = sum(h["self_time"] for h in hops.values())
    assert total_self == pytest.approx(cp["total_latency"])


def test_critical_path_merges_overlapping_children():
    c = SpanCollector()
    root = c.start(1, "request", 0.0)
    a = c.start(1, "serve", 1.0)
    c.end(a, 4.0)
    b = c.start(1, "net", 3.0)  # overlaps [3,4) with serve
    c.end(b, 6.0)
    c.end(root, 8.0, "ok")
    hops = critical_path(c.spans)["hops"]
    # Root self time excludes the union [1,6), not the sum of children.
    assert hops["request"]["self_time"] == 3.0


# ----------------------------------------------------------------------
# End to end: real cluster runs are invariant-clean
# ----------------------------------------------------------------------

_SETTINGS = Phase1Settings(
    scale=SMOKE_SCALE,
    seed=11,
    warm=10.0,
    fault_at=20.0,
    fault_duration=25.0,
    post_recovery=30.0,
    tail=20.0,
    replications=1,
)


def _run_with_spans(version, fault=None):
    spans = SpanCollector()
    config = ALL_VERSIONS_EXTENDED[version]
    if fault is None:
        _tn, cluster = run_baseline(config, _SETTINGS, spans=spans)
    else:
        _rec, cluster = run_single_fault(
            config, fault, _SETTINGS, spans=spans
        )
    spans.finish(cluster.engine.now)
    return spans, cluster


@pytest.mark.parametrize("version", ["TCP-PRESS", "VIA-PRESS-5"])
def test_baseline_run_spans_are_invariant_clean(version):
    spans, _cluster = _run_with_spans(version)
    assert spans.n_traces > 50  # the run really was traced
    problems = check_span_invariants(s.to_record() for s in spans.spans)
    assert problems == []
    names = {s.name for s in spans.spans}
    # The whole request path shows up: client, server, fabric, transport.
    assert "request" in names and "http.serve" in names
    assert "net.frame" in names
    # Fault-free smoke runs never time a request out; the only losses
    # are backlog rejects under bursty load and end-of-run truncation.
    roots = [s for s in spans.spans if s.parent is None]
    assert all(r.status in ("ok", "reject", "dropped") for r in roots)
    assert sum(r.status == "ok" for r in roots) > 0.9 * len(roots)


@pytest.mark.parametrize(
    "version,fault",
    [
        ("TCP-PRESS", FaultKind.LINK_DOWN),
        ("VIA-PRESS-5", FaultKind.APP_CRASH),
    ],
)
def test_faulted_run_spans_are_invariant_clean(version, fault):
    spans, _cluster = _run_with_spans(version, fault)
    problems = check_span_invariants(s.to_record() for s in spans.spans)
    assert problems == []
    roots = [s for s in spans.spans if s.parent is None]
    outcomes = {r.status for r in roots}
    # The fault actually lost or refused something client-visible.
    assert outcomes & {"timeout", "reject"}
    cp = critical_path(spans.spans)
    # After finish() every root has an end, so every trace contributes.
    assert cp["traces"] == len(roots)
    assert cp["total_latency"] > 0


def test_sampled_run_subsets_the_trace_population():
    spans, _cluster = _run_with_spans("TCP-PRESS")
    sampled = SpanCollector(sample_every=7)
    config = ALL_VERSIONS_EXTENDED["TCP-PRESS"]
    _tn, cluster = run_baseline(config, _SETTINGS, spans=sampled)
    sampled.finish(cluster.engine.now)
    assert check_span_invariants(s.to_record() for s in sampled.spans) == []
    full_traces = {s.trace for s in spans.spans}
    sampled_traces = {s.trace for s in sampled.spans}
    assert sampled_traces < full_traces
    assert all(t % 7 == 0 for t in sampled_traces)


def test_span_collection_requires_a_cold_run():
    config = ALL_VERSIONS_EXTENDED["TCP-PRESS"]
    cluster = object()
    with pytest.raises(ValueError, match="cold run"):
        run_baseline(
            config, _SETTINGS, warm_cluster=cluster, spans=SpanCollector()
        )
