"""The online observatory: stage detector + health watchdog.

The synthetic tests drive a :class:`StageDetector`/:class:`HealthWatchdog`
through hand-built event sequences on a fake clock, so every transition
rule is pinned independently of the simulation.  The golden-case tests
then run the real smoke simulations and assert the acceptance contract:
every event-driven stage boundary the detector can observe lands within
one monitor bucket of the ground-truth fit, and attaching an observatory
does not change the run (bit-for-bit passivity).
"""

import dataclasses
import json

import pytest

from repro.core.divergence import divergence_report
from repro.core.extract import DEFAULT_ENVIRONMENT, extract_profile
from repro.experiments.phase1 import run_single_fault
from repro.experiments.settings import FAULT_MTTR
from repro.obs.bus import EventBus
from repro.obs.events import (
    ANNOTATION,
    FAULT_CLEARED,
    FAULT_INJECTED,
    MEMBERSHIP_EXCLUDE,
    MEMBERSHIP_JOINED,
    OBS_HEALTH_DEGRADED,
    OBS_HEALTH_RESTORED,
    OBS_STAGE_TRANSITION,
    PROCESS_EXIT,
    PROCESS_RESTART,
)
from repro.obs.observatory import (
    HealthWatchdog,
    Observatory,
    SLOConfig,
    StageDetector,
)
from repro.press.config import ALL_VERSIONS_EXTENDED

from .test_determinism import GOLDEN_CASES, GOLDEN_DIR, GOLDEN_SETTINGS

#: Small windows keep the synthetic scenarios short: transients settle in
#: 4 s, plateaus in 8 s, with 1 s monitor buckets throughout.
ENV = dataclasses.replace(
    DEFAULT_ENVIRONMENT, transient_window=4.0, steady_window=8.0
)


class _Clock:
    """Just enough engine for an EventBus: a settable ``now``."""

    def __init__(self):
        self.now = 0.0


class _Harness:
    def __init__(self, env=ENV):
        self.clock = _Clock()
        self.bus = EventBus(self.clock)
        self.detector = StageDetector(env=env).attach(self.bus)

    def at(self, time, name, **fields):
        self.clock.now = time
        self.bus.publish(name, **fields)

    def bucket(self, start, rate, failed=0.0, width=1.0):
        """One closed monitor bucket; the clock sits at its end."""
        self.clock.now = start + width
        self.bus.publish(
            "sim.monitor.bucket",
            start=start,
            ok=rate * width,
            failed=failed,
            width=width,
        )

    def buckets(self, start, end, rate, **kw):
        t = start
        while t < end:
            self.bucket(t, rate, **kw)
            t += 1.0

    def warm(self, rate=10.0, until=10.0):
        """Calibrate a normal-throughput estimate, then inject at ``until``."""
        self.buckets(0.0, until, rate)
        self.at(until, FAULT_INJECTED, kind="link-down")
        return self

    def stages(self):
        return [t.stage for t in self.detector.transitions]


# ----------------------------------------------------------------------
# StageDetector: transition rules
# ----------------------------------------------------------------------


def test_normal_run_never_transitions():
    h = _Harness()
    h.buckets(0.0, 20.0, 10.0)
    h.detector.finalize(20.0)
    assert h.detector.stage == "normal"
    assert h.detector.transitions == []
    assert h.detector.tn_estimate == pytest.approx(10.0)
    assert h.detector.intervals() == [["normal", 0.0, 20.0]]


def test_injection_opens_stage_a_and_freezes_tn():
    h = _Harness().warm()
    assert h.detector.stage == "A"
    assert h.detector.injected_at == 10.0
    tn = h.detector.tn_estimate
    h.buckets(10.0, 14.0, 2.0)  # degraded traffic must not move Tn
    assert h.detector.tn_estimate == tn
    assert h.detector.impact_observed


def test_membership_exclude_is_detection():
    h = _Harness().warm()
    h.at(10.5, MEMBERSHIP_EXCLUDE, peer="n1")
    assert h.detector.stage == "B"
    assert h.detector.detected_at == 10.5


def test_fail_fast_exit_is_detection_but_plain_exit_is_not():
    h = _Harness().warm()
    h.at(10.4, PROCESS_EXIT, reason="crash")
    assert h.detector.stage == "A"  # a crash the service hasn't seen yet
    h.at(10.8, PROCESS_EXIT, reason="fail-fast:null-pointer")
    assert h.detector.stage == "B"
    assert h.detector.detected_at == 10.8


def test_transient_window_advances_b_to_c():
    h = _Harness().warm()
    h.at(10.5, MEMBERSHIP_EXCLUDE, peer="n1")
    h.buckets(11.0, 16.0, 2.0)
    assert h.detector.stage == "C"
    # The boundary is clock-driven: exactly detection + W, not the event
    # that happened to advance the clock past it.
    c_entry = [t for t in h.detector.transitions if t.stage == "C"][0]
    assert c_entry.time == pytest.approx(10.5 + ENV.transient_window)


def test_repair_opens_stage_d():
    h = _Harness().warm()
    h.at(10.5, MEMBERSHIP_EXCLUDE, peer="n1")
    h.at(20.0, FAULT_CLEARED, kind="link-down")
    assert h.detector.stage == "D"
    assert h.detector.repaired_at == 20.0


def test_repair_signals_at_or_before_injection_are_ignored():
    h = _Harness()
    h.buckets(0.0, 10.0, 10.0)
    h.at(5.0, FAULT_CLEARED, kind="link-down")  # no fault yet
    assert h.detector.stage == "normal"
    h.at(10.0, FAULT_INJECTED, kind="link-down")
    h.at(10.0, FAULT_CLEARED, kind="link-down")  # same instant: not a repair
    assert h.detector.stage == "A"


def test_sustained_recovery_returns_to_normal():
    h = _Harness().warm()
    h.at(10.5, MEMBERSHIP_EXCLUDE, peer="n1")
    h.buckets(11.0, 20.0, 2.0)
    h.at(20.0, FAULT_CLEARED, kind="link-down")
    h.buckets(20.0, 26.0, 10.0)
    assert h.detector.stage == "normal"
    last = h.detector.transitions[-1]
    assert last.trigger == "sustained-recovery"
    assert last.time == pytest.approx(20.0 + ENV.transient_window)


def test_rejoin_extends_the_post_repair_transient():
    h = _Harness().warm()
    h.at(10.5, MEMBERSHIP_EXCLUDE, peer="n1")
    h.at(20.0, FAULT_CLEARED, kind="link-down")
    h.at(21.0, MEMBERSHIP_JOINED, peer="n1")
    h.buckets(20.0, 30.0, 10.0)
    last = h.detector.transitions[-1]
    assert last.stage == "normal"
    assert last.time >= 21.0 + ENV.transient_window


def test_post_repair_death_reverts_to_b_until_the_next_repair():
    """Bad-param shape: the fault 'clears' before the fail-fast it causes."""
    h = _Harness().warm()
    h.at(10.1, FAULT_CLEARED, kind="bad-param")  # interposer fired: D
    assert h.detector.stage == "D"
    h.at(10.3, PROCESS_EXIT, reason="fail-fast:null-pointer")
    assert h.detector.stage == "B"
    assert h.detector.detected_at == 10.3
    h.at(12.0, PROCESS_RESTART, proc="server-n1")
    assert h.detector.stage == "D"
    assert h.detector.repaired_at == 12.0
    h.buckets(12.0, 18.0, 10.0)
    assert h.detector.stage == "normal"


def test_stable_subnormal_plateau_enters_e_then_escapes():
    h = _Harness().warm()
    h.at(10.5, MEMBERSHIP_EXCLUDE, peer="n1")
    h.at(20.0, FAULT_CLEARED, kind="link-down")
    h.buckets(20.0, 28.0, 5.0)  # half throughput, dead flat
    assert h.detector.stage == "E"
    e_entry = [t for t in h.detector.transitions if t.stage == "E"][0]
    assert e_entry.trigger == "stable-subnormal"
    h.buckets(28.0, 32.0, 10.0)  # the service heals after all
    assert h.detector.stage == "normal"


def test_slow_ramp_stays_in_d():
    """A recovering ramp is a transient, not a stage-E plateau."""
    h = _Harness().warm()
    h.at(10.5, MEMBERSHIP_EXCLUDE, peer="n1")
    h.at(20.0, FAULT_CLEARED, kind="link-down")
    rate = 3.0
    for t in range(20, 28):
        h.bucket(float(t), rate)
        rate += 0.7  # halves of the steady window disagree
    assert h.detector.stage == "D"


def test_operator_reset_walks_f_g_normal():
    h = _Harness().warm()
    h.at(10.5, MEMBERSHIP_EXCLUDE, peer="n1")
    h.at(20.0, FAULT_CLEARED, kind="link-down")
    h.buckets(20.0, 28.0, 5.0)
    assert h.detector.stage == "E"
    h.at(30.0, ANNOTATION, label="operator-reset")
    assert h.detector.stage == "F"
    assert h.detector.reset_at == 30.0
    h.detector.finalize(60.0)
    assert h.detector.stage == "normal"
    times = {t.stage: t.time for t in h.detector.transitions}
    assert times["G"] == pytest.approx(30.0 + ENV.transient_window)


def test_transitions_are_published_on_the_bus():
    h = _Harness()
    seen = []
    h.bus.subscribe(seen.append, names=[OBS_STAGE_TRANSITION])
    h.warm()
    h.at(10.5, MEMBERSHIP_EXCLUDE, peer="n1")
    assert [e.fields["stage"] for e in seen] == ["A", "B"]
    assert seen[-1].fields["prev"] == "A"
    assert seen[-1].fields["trigger"] == MEMBERSHIP_EXCLUDE


def test_intervals_are_contiguous_and_summary_is_json_ready():
    h = _Harness().warm()
    h.at(10.5, MEMBERSHIP_EXCLUDE, peer="n1")
    h.buckets(11.0, 20.0, 2.0)
    h.at(20.0, FAULT_CLEARED, kind="link-down")
    h.buckets(20.0, 26.0, 10.0)
    h.detector.finalize(30.0)
    spans = h.detector.intervals()
    assert spans[0][1] == 0.0 and spans[-1][2] == 30.0
    for prev, nxt in zip(spans, spans[1:]):
        assert prev[2] == nxt[1]  # no gaps, no overlaps
    assert [s for s, _, _ in spans] == ["normal", "A", "B", "C", "D", "normal"]
    json.dumps(h.detector.summary())  # must round-trip to the store


def test_a_second_fault_restarts_the_classification():
    h = _Harness().warm()
    h.at(10.5, MEMBERSHIP_EXCLUDE, peer="n1")
    h.at(20.0, FAULT_CLEARED, kind="link-down")
    h.buckets(20.0, 26.0, 10.0)
    assert h.detector.stage == "normal"
    h.at(40.0, FAULT_INJECTED, kind="node-crash")
    assert h.detector.stage == "A"
    assert h.detector.injected_at == 40.0
    assert h.detector.detected_at is None
    assert h.detector.repaired_at is None


# ----------------------------------------------------------------------
# HealthWatchdog
# ----------------------------------------------------------------------

SLO = SLOConfig(
    throughput_floor=0.8, availability_floor=0.95, window=4.0, calibration=4.0
)


class _WatchdogHarness:
    def __init__(self, slo=SLO):
        self.clock = _Clock()
        self.bus = EventBus(self.clock)
        self.watchdog = HealthWatchdog(slo=slo).attach(self.bus)
        self.health_events = []
        self.bus.subscribe(
            self.health_events.append,
            names=[OBS_HEALTH_DEGRADED, OBS_HEALTH_RESTORED],
        )

    def bucket(self, start, rate, failed=0.0, width=1.0):
        self.clock.now = start + width
        self.bus.publish(
            "sim.monitor.bucket",
            start=start,
            ok=rate * width,
            failed=failed,
            width=width,
        )

    def buckets(self, start, end, rate, **kw):
        t = start
        while t < end:
            self.bucket(t, rate, **kw)
            t += 1.0


def test_watchdog_calibrates_tn_from_leading_traffic():
    h = _WatchdogHarness()
    h.buckets(0.0, 4.0, 10.0)
    assert h.watchdog.tn == pytest.approx(10.0)
    assert h.watchdog.episodes == []


def test_throughput_violation_publishes_degraded_then_restored():
    h = _WatchdogHarness()
    h.buckets(0.0, 5.0, 10.0)
    h.buckets(5.0, 7.0, 0.0)  # rolling mean dips under the floor
    assert [e.name for e in h.health_events] == [OBS_HEALTH_DEGRADED]
    assert "throughput" in h.health_events[0].fields["reason"]
    h.buckets(7.0, 11.0, 10.0)  # a clean rolling window again
    assert [e.name for e in h.health_events] == [
        OBS_HEALTH_DEGRADED,
        OBS_HEALTH_RESTORED,
    ]
    (episode,) = h.watchdog.episodes
    assert not episode["open"]
    assert episode["duration"] == pytest.approx(
        h.health_events[1].fields["violated_for"]
    )
    assert h.watchdog.time_in_violation == episode["duration"]
    # Worst rolling window: one 10-rate bucket against two dead ones.
    assert h.watchdog.min_throughput == pytest.approx(10.0 / 3.0)


def test_availability_violation_is_flagged_even_at_full_rate():
    h = _WatchdogHarness()
    h.buckets(0.0, 4.0, 10.0)
    h.bucket(4.0, 10.0, failed=10.0)  # half the requests fail
    assert len(h.watchdog.episodes) == 0  # still open
    assert h.watchdog._violating_since is not None
    assert "availability" in h.watchdog._violation_reason
    assert h.watchdog.min_availability == pytest.approx(0.5)


def test_open_violation_is_closed_at_finalize():
    h = _WatchdogHarness()
    h.buckets(0.0, 4.0, 10.0)
    h.buckets(4.0, 8.0, 0.0)
    h.watchdog.finalize(8.0)
    (episode,) = h.watchdog.episodes
    assert episode["open"]
    assert episode["end"] == 8.0
    summary = h.watchdog.summary()
    assert summary["violations"] == 1
    assert summary["time_in_violation"] == pytest.approx(episode["duration"])
    json.dumps(summary)


# ----------------------------------------------------------------------
# The golden smoke runs: acceptance + passivity
# ----------------------------------------------------------------------


def _observed_run(version, kind):
    obs = Observatory(env=GOLDEN_SETTINGS.environment)
    record, cluster = run_single_fault(
        ALL_VERSIONS_EXTENDED[version], kind, GOLDEN_SETTINGS, recorder=obs
    )
    obs.finish(cluster)
    return obs, record


@pytest.mark.parametrize("version,kind", GOLDEN_CASES)
def test_online_boundaries_within_one_bucket_of_ground_truth(version, kind):
    """The acceptance bar: live classification tracks the hindsight fit."""
    obs, record = _observed_run(version, kind)
    report = divergence_report(
        obs.detector.summary(), record, GOLDEN_SETTINGS.environment
    )
    bucket = record.timeline.bucket_width
    boundaries = report["boundaries"]
    for label in ("injection", "detection", "repair", "reset"):
        entry = boundaries.get(label)
        if entry is None:
            continue  # neither side observed it (e.g. TCP never excludes)
        assert "error" in entry, (
            f"{version}/{kind.value}: boundary {label} observed by only "
            f"one side: {entry}"
        )
        assert abs(entry["error"]) <= bucket + 1e-9, (
            f"{version}/{kind.value}: boundary {label} off by "
            f"{entry['error']:+.2f}s (> one {bucket:.1f}s bucket)"
        )
    assert "injection" in boundaries and "repair" in boundaries
    # The residual disagreement is dominated by the hindsight-only
    # stage-D end (the fit may key it to the run horizon, which no live
    # observer can know); everything else is within a bucket.
    assert report["misclassified_frac"] < 0.35


def test_tcp_link_down_transient_end_matches_within_one_bucket():
    """For the self-recovering golden case even the window-driven stage-D
    end (hindsight-free here) agrees to one bucket."""
    from repro.faults.spec import FaultKind

    obs, record = _observed_run("TCP-PRESS", FaultKind.LINK_DOWN)
    report = divergence_report(
        obs.detector.summary(), record, GOLDEN_SETTINGS.environment
    )
    entry = report["boundaries"]["transient_end"]
    assert abs(entry["error"]) <= record.timeline.bucket_width + 1e-9
    assert report["online_missing"] == []


@pytest.mark.parametrize("version,kind", GOLDEN_CASES)
def test_observed_run_matches_golden_fixture_bit_for_bit(version, kind):
    """Full passivity: a run with the whole observatory attached (detector
    + watchdog + recorder) reproduces the pinned golden profile exactly —
    the fixtures are literal ``to_dict()`` dumps, so ``==`` is bit-for-bit.
    """
    from repro.obs.bus import EventRecorder

    obs = Observatory(
        recorder=EventRecorder(keep_events=False),
        env=GOLDEN_SETTINGS.environment,
    )
    record, cluster = run_single_fault(
        ALL_VERSIONS_EXTENDED[version], kind, GOLDEN_SETTINGS, recorder=obs
    )
    obs.finish(cluster)
    measured = extract_profile(
        record, mttr=FAULT_MTTR[kind], env=GOLDEN_SETTINGS.environment
    )
    path = GOLDEN_DIR / f"{version}_{kind.value}.json"
    assert measured.to_dict() == json.loads(path.read_text())
    assert obs.detector.transitions, "detector saw no stage transitions"
    assert obs.recorder.total > 0, "recorder saw no events"
