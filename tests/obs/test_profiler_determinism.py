"""The flight recorder is pure observation: profiled == unprofiled.

The load-bearing contract of ``--profile``: attaching a FlightRecorder
reads wall-clock and increments counters but never schedules events,
mutates component state, or perturbs iteration order, so every
simulation output is byte-identical with and without it — across the
fabric fast path, LP shard counts, and the campaign cache.  The perf
records themselves land in the store's volatile ``perf/`` namespace,
which ``store-diff`` and payload fingerprints ignore.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.core.extract import extract_profile
from repro.core.stages import STAGES, SevenStageProfile
from repro.experiments.phase1 import run_single_fault
from repro.experiments.runner import run_campaign
from repro.experiments.settings import FAULT_MTTR, Phase1Settings
from repro.experiments.store import DiskStore, payload_fingerprint
from repro.faults.spec import FaultKind
from repro.obs.profiler import FlightRecorder
from repro.press.cluster import SMOKE_SCALE
from repro.press.config import ALL_VERSIONS_EXTENDED

GOLDEN_DIR = Path(__file__).parent.parent / "core" / "golden"

#: Must match tests/core/test_golden_profiles.py exactly.
GOLDEN_SETTINGS = Phase1Settings(
    scale=SMOKE_SCALE,
    seed=1234,
    warm=15.0,
    fault_at=30.0,
    fault_duration=40.0,
    post_recovery=60.0,
    tail=40.0,
    replications=1,
)

GOLDEN_CASES = (
    ("TCP-PRESS", FaultKind.LINK_DOWN),
    ("VIA-PRESS-5", FaultKind.NODE_CRASH),
)


def _measure(version, kind, settings=GOLDEN_SETTINGS, profiler=None):
    record, cluster = run_single_fault(
        ALL_VERSIONS_EXTENDED[version], kind, settings, profiler=profiler
    )
    return extract_profile(
        record, mttr=FAULT_MTTR[kind], env=settings.environment
    )


@pytest.mark.parametrize("version,kind", GOLDEN_CASES)
def test_profiled_run_matches_golden_fixture(version, kind):
    """Profiling every event still reproduces the golden profiles."""
    path = GOLDEN_DIR / f"{version}_{kind.value}.json"
    golden = SevenStageProfile.from_dict(json.loads(path.read_text()))
    rec = FlightRecorder()
    measured = _measure(version, kind, profiler=rec)
    assert rec.digest()["events"] > 0, "recorder saw no events — it's dead"
    assert measured.normal_throughput == pytest.approx(
        golden.normal_throughput, rel=1e-6
    )
    for stage in STAGES:
        assert measured.duration(stage) == pytest.approx(
            golden.duration(stage), rel=1e-6, abs=1e-9
        ), f"{version}/{kind.value} stage {stage.value} duration"
        assert measured.throughput(stage) == pytest.approx(
            golden.throughput(stage), rel=1e-6, abs=1e-9
        ), f"{version}/{kind.value} stage {stage.value} throughput"


@pytest.mark.parametrize("version,kind", GOLDEN_CASES)
def test_profiled_and_plain_runs_are_bit_identical(version, kind):
    plain = _measure(version, kind)
    profiled = _measure(version, kind, profiler=FlightRecorder())
    assert profiled.to_dict() == plain.to_dict()


@pytest.mark.parametrize("fastpath", [True, False], ids=["fast", "slow"])
def test_profiled_matches_plain_in_both_fabric_modes(fastpath):
    """The profiler's fastpath counters observe, never steer."""
    version, kind = GOLDEN_CASES[0]
    settings = dataclasses.replace(GOLDEN_SETTINGS, fastpath=fastpath)
    plain = _measure(version, kind, settings)
    rec = FlightRecorder()
    profiled = _measure(version, kind, settings, profiler=rec)
    assert profiled.to_dict() == plain.to_dict()
    counters = rec.counters
    if fastpath:
        assert counters.get("fabric.fast_cached", 0) > 0
    else:
        assert counters.get("fabric.fast_cached", 0) == 0
        assert counters.get("fabric.fast_checked", 0) == 0


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_profiled_runs_identical_across_shard_counts(shards):
    """LP burst/EOT accounting never changes the merge order."""
    version, kind = GOLDEN_CASES[0]
    settings = dataclasses.replace(GOLDEN_SETTINGS, shards=shards)
    plain = _measure(version, kind, settings)
    rec = FlightRecorder()
    profiled = _measure(version, kind, settings, profiler=rec)
    assert profiled.to_dict() == plain.to_dict()
    digest = rec.digest()
    assert digest["events"] > 0


def test_event_stream_is_shard_invariant_under_profiling():
    """The recorder sees the *same* event totals for every shard count."""
    version, kind = GOLDEN_CASES[0]
    totals = []
    for shards in (1, 4):
        settings = dataclasses.replace(GOLDEN_SETTINGS, shards=shards)
        rec = FlightRecorder()
        _measure(version, kind, settings, profiler=rec)
        digest = rec.digest()
        totals.append(
            (
                digest["events"],
                {k: v["events"] for k, v in digest["layers"].items()},
            )
        )
    assert totals[0] == totals[1]


def _campaign(tmp, profile):
    return run_campaign(
        GOLDEN_SETTINGS,
        versions=["TCP-PRESS"],
        faults=[FaultKind.LINK_DOWN],
        store=DiskStore(tmp),
        profile=profile,
    )


def test_profiled_campaign_payloads_match_plain(tmp_path):
    """Cell-for-cell, a --profile store fingerprints like a plain one."""
    _sets_a, _rep_a = _campaign(tmp_path / "plain", False)
    _sets_b, rep_b = _campaign(tmp_path / "profiled", True)
    assert rep_b.perf, "profiled campaign recorded no perf records"
    plain = {
        (k["version"], k["fault"], k["seed"]): payload_fingerprint(p)
        for k, p in DiskStore(tmp_path / "plain").iter_cells()
    }
    profiled = {
        (k["version"], k["fault"], k["seed"]): payload_fingerprint(p)
        for k, p in DiskStore(tmp_path / "profiled").iter_cells()
    }
    assert plain and plain == profiled


def test_perf_namespace_never_reaches_cell_payloads(tmp_path):
    """Perf records live in perf/, not in the deterministic payloads."""
    _campaign(tmp_path, True)
    store = DiskStore(tmp_path)
    assert (tmp_path / "perf").is_dir()
    assert list(store.iter_perf()), "no perf records persisted"
    for _key, payload in store.iter_cells():
        assert "perf" not in payload


def test_store_diff_calls_profiled_and_plain_stores_identical(tmp_path):
    """The CI perf-smoke check, in-process: store-diff exits clean."""
    from repro.__main__ import main

    _campaign(tmp_path / "a", False)
    _campaign(tmp_path / "b", True)
    # store-diff sys.exit()s non-zero on any payload mismatch; reaching
    # the return is the assertion.
    main(
        [
            "store-diff",
            str(tmp_path / "a"),
            str(tmp_path / "b"),
        ]
    )
