"""Exporters: JSONL round-trip on a real fault run, Chrome trace shape,
and the validators backing the CI trace-smoke job."""

import json

import pytest

from repro.faults.spec import FaultKind
from repro.obs.bus import EventRecorder, SimEvent
from repro.obs.events import FAULT_CLEARED, FAULT_INJECTED
from repro.obs.exporters import (
    chrome_trace,
    export_run,
    read_events_jsonl,
    telemetry_summary,
    validate_chrome_trace,
    validate_events_jsonl,
    validate_trace_dir,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.experiments.phase1 import run_single_fault
from repro.experiments.settings import Phase1Settings
from repro.press.cluster import SMOKE_SCALE
from repro.press.config import ALL_VERSIONS_EXTENDED

FAST = Phase1Settings(
    scale=SMOKE_SCALE,
    seed=1234,
    warm=15.0,
    fault_at=30.0,
    fault_duration=40.0,
    post_recovery=60.0,
    tail=40.0,
    replications=1,
)


@pytest.fixture(scope="module")
def fault_run_events():
    """One small traced link-down run, shared across this module."""
    recorder = EventRecorder(keep_events=True)
    run_single_fault(
        ALL_VERSIONS_EXTENDED["TCP-PRESS"], FaultKind.LINK_DOWN, FAST,
        recorder=recorder,
    )
    assert recorder.events, "traced run produced no events"
    return recorder


def test_jsonl_round_trips_a_fault_run(fault_run_events, tmp_path):
    events = fault_run_events.events
    path = write_events_jsonl(events, tmp_path / "run.jsonl",
                              meta={"seed": 1234})
    back = read_events_jsonl(path)
    assert back == events
    assert validate_events_jsonl(path) == len(events)


def test_fault_run_publishes_inject_and_clear(fault_run_events):
    names = fault_run_events.counts
    assert names.get(FAULT_INJECTED) == 1
    assert names.get(FAULT_CLEARED) == 1
    assert names.get("net.frame.drop", 0) > 0


def test_chrome_trace_from_fault_run_validates(fault_run_events, tmp_path):
    path = write_chrome_trace(
        fault_run_events.events, tmp_path / "run.trace.json", label="t"
    )
    assert validate_chrome_trace(path) > 0
    doc = json.loads(path.read_text())
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert phases <= {"M", "i", "X"}
    # The injected/cleared pair collapses into one duration span.
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(spans) == 1
    assert spans[0]["dur"] == pytest.approx(40.0 * 1e6)


def test_chrome_trace_tracks_per_node_and_layer():
    events = [
        SimEvent(time=1.0, seq=1, name="press.cache.hit", node="n0"),
        SimEvent(time=2.0, seq=2, name="osim.node.crash", node="n0"),
        SimEvent(time=3.0, seq=3, name="press.cache.hit", node="n1"),
        SimEvent(time=4.0, seq=4, name="net.frame.drop"),  # node-less
    ]
    doc = chrome_trace(events, label="unit")
    procs = {
        e["args"]["name"]: e["pid"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert set(procs) == {"n0", "n1", "cluster"}
    threads = [
        e for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    # n0 carries two layers (press + osim); n1 and cluster one each.
    by_pid = {}
    for t in threads:
        by_pid.setdefault(t["pid"], set()).add(t["args"]["name"])
    assert by_pid[procs["n0"]] == {"press", "osim"}
    assert by_pid[procs["n1"]] == {"press"}
    assert by_pid[procs["cluster"]] == {"net"}
    # Sim seconds -> microseconds.
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert instants[0]["ts"] == pytest.approx(1.0 * 1e6)


def test_unclosed_fault_falls_back_to_instant():
    events = [
        SimEvent(time=5.0, seq=1, name=FAULT_INJECTED, node="n0",
                 fields={"fault": "node-crash@n0"}),
    ]
    doc = chrome_trace(events)
    kinds = [(e["ph"], e.get("name")) for e in doc["traceEvents"] if e["ph"] != "M"]
    assert kinds == [("i", FAULT_INJECTED)]


def test_validate_events_jsonl_rejects_bad_files(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"time": 1.0, "seq": 1}\n')  # missing name
    with pytest.raises(ValueError, match="missing 'name'"):
        validate_events_jsonl(bad)
    nonmono = tmp_path / "nonmono.jsonl"
    nonmono.write_text(
        '{"time": 1.0, "seq": 2, "name": "a"}\n'
        '{"time": 2.0, "seq": 1, "name": "b"}\n'
    )
    with pytest.raises(ValueError, match="not increasing"):
        validate_events_jsonl(nonmono)


def test_validate_chrome_trace_rejects_bad_files(tmp_path):
    p = tmp_path / "t.trace.json"
    p.write_text(json.dumps({"traceEvents": [{"ph": "i", "name": "x"}]}))
    with pytest.raises(ValueError, match="missing"):
        validate_chrome_trace(p)
    p.write_text(json.dumps({"nope": 1}))
    with pytest.raises(ValueError, match="traceEvents"):
        validate_chrome_trace(p)


def test_export_run_and_validate_trace_dir(fault_run_events, tmp_path):
    paths = export_run(
        fault_run_events.events, tmp_path, "TCP-PRESS__link-down", fmt="both",
        meta={"version": "TCP-PRESS"},
    )
    assert [p.name for p in paths] == [
        "TCP-PRESS__link-down.jsonl",
        "TCP-PRESS__link-down.trace.json",
    ]
    counts = validate_trace_dir(tmp_path)
    assert set(counts) == {p.name for p in paths}
    assert all(n > 0 for n in counts.values())


def test_export_run_rejects_unknown_format(tmp_path):
    with pytest.raises(ValueError, match="unknown trace format"):
        export_run([], tmp_path, "x", fmt="yaml")


def test_validate_trace_dir_empty_raises(tmp_path):
    with pytest.raises(ValueError, match="no trace files"):
        validate_trace_dir(tmp_path)


def test_telemetry_summary_shape(fault_run_events):
    s = telemetry_summary(fault_run_events)
    assert s["event_total"] == fault_run_events.total
    assert s["events"][FAULT_INJECTED] == 1
    assert list(s["events"]) == sorted(s["events"])
    assert json.loads(json.dumps(s)) == s  # JSON-safe
