"""Tests for the synthetic trace / file population."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.trace import FileSet


def test_uniform_file_size():
    fs = FileSet(n_files=100, file_bytes=2048)
    assert fs.size("f000000") == 2048
    assert fs.size("anything") == 2048
    assert fs.total_bytes == 100 * 2048


def test_sample_returns_valid_names():
    fs = FileSet(n_files=50)
    rng = random.Random(1)
    for _ in range(200):
        name = fs.sample(rng)
        index = int(name[1:])
        assert 0 <= index < 50


def test_zipf_skew_prefers_popular_files():
    fs = FileSet(n_files=1000, zipf_s=0.8)
    rng = random.Random(2)
    samples = fs.sample_many(rng, 5000)
    top_decile = sum(1 for s in samples if int(s[1:]) < 100)
    assert top_decile / 5000 > 0.3  # far above the uniform 10%


def test_sampling_deterministic_under_seed():
    fs = FileSet(n_files=100)
    a = fs.sample_many(random.Random(7), 50)
    b = fs.sample_many(random.Random(7), 50)
    assert a == b


def test_coverage_hit_ratio_monotone():
    fs = FileSet(n_files=1000)
    ratios = [fs.coverage_hit_ratio(n) for n in (0, 10, 100, 500, 1000)]
    assert ratios == sorted(ratios)
    assert ratios[0] == 0.0
    assert ratios[-1] == pytest.approx(1.0)


def test_coverage_clamps_out_of_range():
    fs = FileSet(n_files=10)
    assert fs.coverage_hit_ratio(-5) == 0.0
    assert fs.coverage_hit_ratio(99) == pytest.approx(1.0)


def test_expected_hit_files():
    fs = FileSet(n_files=100, file_bytes=100)
    assert fs.expected_hit_files(550) == 5
    assert fs.expected_hit_files(10**9) == 100


def test_validation():
    with pytest.raises(ValueError):
        FileSet(n_files=0)
    with pytest.raises(ValueError):
        FileSet(file_bytes=0)


@settings(max_examples=30)
@given(
    st.integers(min_value=1, max_value=5000),
    st.floats(min_value=0.0, max_value=2.0),
    st.integers(min_value=0, max_value=2**31),
)
def test_property_samples_always_in_population(n_files, zipf_s, seed):
    fs = FileSet(n_files=n_files, zipf_s=zipf_s)
    rng = random.Random(seed)
    for _ in range(20):
        assert 0 <= int(fs.sample(rng)[1:]) < n_files


@settings(max_examples=20)
@given(st.integers(min_value=2, max_value=2000))
def test_property_coverage_is_a_cdf(n_files):
    fs = FileSet(n_files=n_files)
    prev = 0.0
    for n in range(0, n_files + 1, max(1, n_files // 10)):
        cur = fs.coverage_hit_ratio(n)
        assert 0.0 <= cur <= 1.0
        assert cur >= prev
        prev = cur
