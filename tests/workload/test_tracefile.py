"""Tests for trace files and replay."""

import io
import random

import pytest

from repro.net.fabric import Fabric
from repro.net.packet import Frame
from repro.sim.engine import Engine
from repro.sim.monitor import ThroughputMonitor
from repro.workload.trace import FileSet
from repro.workload.tracefile import (
    TraceEntry,
    TraceReplayer,
    load_trace,
    save_trace,
    synthesize_trace,
)


def test_synthesize_respects_count_and_order():
    fs = FileSet(n_files=100)
    entries = synthesize_trace(fs, 50, rate=10.0, rng=random.Random(1))
    assert len(entries) == 50
    offsets = [e.offset for e in entries]
    assert offsets == sorted(offsets)
    assert all(0 <= int(e.file_id[1:]) < 100 for e in entries)


def test_synthesize_rate_validation():
    with pytest.raises(ValueError):
        synthesize_trace(FileSet(n_files=10), 5, rate=0.0, rng=random.Random(1))


def test_save_load_roundtrip():
    entries = [TraceEntry(0.5, "f000001"), TraceEntry(1.25, "f000002")]
    buf = io.StringIO()
    assert save_trace(entries, buf) == 2
    buf.seek(0)
    assert load_trace(buf) == entries


def test_load_skips_comments_and_blanks():
    buf = io.StringIO("# header\n\n0.1 f000001\n# mid\n0.2 f000002\n")
    assert len(load_trace(buf)) == 2


def test_load_rejects_malformed_line():
    with pytest.raises(ValueError, match="line 1"):
        load_trace(io.StringIO("garbage\n"))


def test_load_rejects_unsorted_offsets():
    with pytest.raises(ValueError, match="sorted"):
        load_trace(io.StringIO("1.0 f1\n0.5 f2\n"))


class EchoServer:
    def __init__(self, engine, fabric, name):
        self.nic = fabric.attach(name)
        self.name = name
        self.seen = []
        self.nic.register("http-req", self._on)

    def _on(self, frame):
        req = frame.payload
        self.seen.append(req.file_id)
        self.nic.send(
            Frame(src=self.name, dst=req.client_id, size=64,
                  kind="http-resp", payload=req.req_id)
        )


def _replay_setup(entries, **kw):
    e = Engine()
    fabric = Fabric(e)
    server = EchoServer(e, fabric, "s0")
    monitor = ThroughputMonitor(e)
    replayer = TraceReplayer(
        e, fabric, "c0", ["s0"], entries, monitor, **kw
    )
    return e, server, monitor, replayer


def test_replay_preserves_order_and_files():
    entries = [TraceEntry(0.1 * i, f"f{i:06d}") for i in range(1, 6)]
    e, server, monitor, replayer = _replay_setup(entries)
    replayer.start()
    e.run(until=10.0)
    assert server.seen == [f"f{i:06d}" for i in range(1, 6)]
    assert monitor.total_ok == 5


def test_replay_rescales_to_requested_rate():
    fs = FileSet(n_files=50)
    entries = synthesize_trace(fs, 200, rate=5.0, rng=random.Random(2))
    e, server, monitor, replayer = _replay_setup(entries, rate=50.0)
    replayer.start()
    e.run(until=10.0)
    # 200 requests at 50/s -> done in ~4s; all should have fired.
    assert replayer.replayed == 200
    assert entries[-1].offset * replayer.time_scale == pytest.approx(
        200 / 50.0, rel=0.3
    )


def test_replay_loop_repeats():
    entries = [TraceEntry(0.1, "f000001"), TraceEntry(0.2, "f000002")]
    e, server, monitor, replayer = _replay_setup(entries, loop=True)
    replayer.start()
    e.run(until=2.0)
    replayer.stop()
    assert replayer.replayed > 4


def test_empty_trace_rejected():
    e = Engine()
    fabric = Fabric(e)
    with pytest.raises(ValueError):
        TraceReplayer(e, fabric, "c0", ["s0"], [], ThroughputMonitor(e))
