"""Tests for client machines: arrivals, timeouts, outcome accounting."""

import random

import pytest

from repro.net.fabric import Fabric
from repro.net.packet import Frame
from repro.sim.engine import Engine
from repro.sim.monitor import ThroughputMonitor
from repro.workload.client import ClientMachine, Workload
from repro.workload.trace import FileSet


class EchoServer:
    """Instant responder attached to the fabric (or silent if told)."""

    def __init__(self, engine, fabric, name, respond=True, reject=False):
        self.engine = engine
        self.fabric = fabric
        self.nic = fabric.attach(name)
        self.name = name
        self.respond = respond
        self.reject = reject
        self.seen = 0
        self.nic.register("http-req", self._on_req)

    def _on_req(self, frame):
        self.seen += 1
        req = frame.payload
        kind = None
        if self.reject:
            kind, payload = "http-reject", req.req_id
        elif self.respond:
            kind, payload = "http-resp", req.req_id
        if kind:
            self.nic.send(
                Frame(src=self.name, dst=req.client_id, size=64, kind=kind,
                      payload=payload)
            )


def build(respond=True, reject=False, rate=50.0, timeout=6.0):
    e = Engine()
    fabric = Fabric(e)
    server = EchoServer(e, fabric, "s0", respond=respond, reject=reject)
    monitor = ThroughputMonitor(e)
    client = ClientMachine(
        e, fabric, "c0", ["s0"], FileSet(n_files=100), monitor,
        random.Random(1), rate, request_timeout=timeout,
    )
    return e, server, monitor, client


def test_poisson_arrival_rate_approximately_honored():
    e, server, monitor, client = build(rate=100.0)
    client.start()
    e.run(until=20.0)
    assert server.seen == pytest.approx(2000, rel=0.15)


def test_responses_counted_as_success():
    e, _server, monitor, client = build()
    client.start()
    e.run(until=10.0)
    assert monitor.total_ok > 0
    assert monitor.total_failed == 0
    assert client.outstanding <= 1


def test_silent_server_times_out_requests():
    e, _server, monitor, client = build(respond=False, timeout=2.0)
    client.start()
    e.run(until=10.0)
    assert monitor.total_ok == 0
    assert monitor.total_failed > 0


def test_reject_fails_fast():
    e, _server, monitor, client = build(reject=True, timeout=6.0)
    client.start()
    e.run(until=1.0)
    assert monitor.total_failed > 0  # long before the 6s timeout


def test_late_response_ignored_after_timeout():
    e = Engine()
    fabric = Fabric(e)

    class SlowServer(EchoServer):
        def _on_req(self, frame):
            req = frame.payload
            self.engine.call_after(
                5.0,
                lambda: self.nic.send(
                    Frame(src=self.name, dst=req.client_id, size=64,
                          kind="http-resp", payload=req.req_id)
                ),
            )

    SlowServer(e, fabric, "s0")
    monitor = ThroughputMonitor(e)
    client = ClientMachine(
        e, fabric, "c0", ["s0"], FileSet(n_files=10), monitor,
        random.Random(1), rate=10.0, request_timeout=1.0,
    )
    client.start()
    e.run(until=20.0)
    assert monitor.total_ok == 0
    assert monitor.total_failed > 0


def test_stop_halts_arrivals():
    e, server, _monitor, client = build(rate=100.0)
    client.start()
    e.run(until=5.0)
    seen = server.seen
    client.stop()
    e.run(until=10.0)
    assert server.seen == seen


def test_round_robin_spreads_over_servers():
    e = Engine()
    fabric = Fabric(e)
    servers = [EchoServer(e, fabric, f"s{i}") for i in range(4)]
    monitor = ThroughputMonitor(e)
    client = ClientMachine(
        e, fabric, "c0", [s.name for s in servers], FileSet(n_files=10),
        monitor, random.Random(1), rate=40.0,
    )
    client.start()
    e.run(until=10.0)
    counts = [s.seen for s in servers]
    assert max(counts) - min(counts) <= 1


def test_workload_splits_rate_across_clients():
    e = Engine()
    fabric = Fabric(e)
    server = EchoServer(e, fabric, "s0")
    monitor = ThroughputMonitor(e)
    w = Workload(
        e, fabric, ["s0"], FileSet(n_files=10), monitor,
        random.Random(3), total_rate=100.0, n_clients=4,
    )
    assert [c.rate for c in w.clients] == [25.0] * 4
    w.start()
    e.run(until=10.0)
    assert server.seen == pytest.approx(1000, rel=0.2)
    w.set_total_rate(40.0)
    assert [c.rate for c in w.clients] == [10.0] * 4


def test_latency_accounting():
    e, _server, monitor, client = build()
    client.start()
    e.run(until=5.0)
    assert client.completed > 0
