"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net.fabric import Fabric
from repro.osim.node import Node
from repro.sim.engine import Engine


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def fabric(engine: Engine) -> Fabric:
    return Fabric(engine)


@pytest.fixture
def two_nodes(engine: Engine, fabric: Fabric):
    """Two booted nodes attached to one fabric."""
    nodes = []
    for name in ("n0", "n1"):
        node = Node(engine, name, fabric.attach(name))
        node.process.start()
        nodes.append(node)
    return nodes


@pytest.fixture
def three_nodes(engine: Engine, fabric: Fabric):
    nodes = []
    for name in ("n0", "n1", "n2"):
        node = Node(engine, name, fabric.attach(name))
        node.process.start()
        nodes.append(node)
    return nodes
